//! Integration tests for declarative campaign specs: property-based TOML
//! round trips (hand-built strategies plus the chaos spec fuzzer) and
//! golden pins of the committed example specs — the paper's 108-config
//! measurement grid and the 972-config congestion-control grid are
//! frozen by expansion length and digest, so any change to expansion
//! semantics or spec serialization fails loudly here.

use hsm::prelude::{
    expansion_digest, load_spec, CampaignSpec, ScenarioBase, ScenarioGrid, SweepAxis,
};
use hsm::scenario::prelude::{Motion, Provider};
use hsm::tcp::cc::Algorithm;
use hsm::tcp::recovery::Recovery;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn spec_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(name)
}

fn arb_base() -> impl Strategy<Value = ScenarioBase> {
    (
        prop_oneof![
            Just(Provider::ChinaMobile),
            Just(Provider::ChinaUnicom),
            Just(Provider::ChinaTelecom),
        ],
        prop_oneof![Just(Motion::HighSpeed), Just(Motion::Stationary)],
        2u64..30,
        4u32..64,
        1u32..4,
        0u64..1_000_000,
        1u32..4,
        (
            prop_oneof![
                Just(Algorithm::Reno),
                Just(Algorithm::Bbr),
                Just(Algorithm::Veno { beta: 2.5 }),
            ],
            prop_oneof![
                Just(Recovery::None),
                Just(Recovery::RedundantRto),
                Just(Recovery::Frto),
                Just(Recovery::AckRobust),
            ],
        ),
    )
        .prop_map(
            |(provider, motion, duration_s, w_m, b, seed_start, seeds, (cc, recovery))| {
                ScenarioBase {
                    provider,
                    motion,
                    duration_s,
                    w_m,
                    b,
                    cc,
                    recovery,
                    seed_start,
                    seeds,
                    scale: 1.0,
                }
            },
        )
}

/// A one-grid spec with an arbitrary base and an arbitrary subset of the
/// integer sweep axes (each with 1–3 values).
fn arb_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        arb_base(),
        prop::collection::vec(2u64..30, 1..4),
        prop::collection::vec(4u32..64, 1..4),
        prop::collection::vec(1u32..4, 1..4),
        0u32..8,
    )
        .prop_map(|(base, durations, windows, delacks, mask)| {
            let mut grid = ScenarioGrid::named("grid-0");
            grid.base = base.clone();
            if mask & 1 != 0 {
                grid.sweep.push(SweepAxis::DurationSecs(durations));
            }
            if mask & 2 != 0 {
                grid.sweep.push(SweepAxis::Window(windows));
            }
            if mask & 4 != 0 {
                grid.sweep.push(SweepAxis::DelayedAck(delacks));
            }
            CampaignSpec {
                name: "prop".to_owned(),
                defaults: base,
                scenarios: vec![grid],
            }
        })
}

proptest! {
    #[test]
    fn any_grid_spec_survives_toml_round_trip(spec in arb_spec()) {
        spec.validate().expect("generated spec is valid");
        let text = spec.to_toml();
        let back = CampaignSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("round trip failed: {e}\n{text}"));
        prop_assert_eq!(&back, &spec);
        let a = spec.expand().expect("expand");
        let b = back.expand().expect("re-expand");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(expansion_digest(&a), expansion_digest(&b));
    }

    #[test]
    fn fuzzed_specs_survive_toml_round_trip(master in 0u64..1_000_000, case in 0u64..1_000) {
        // The chaos fuzzer roams a wider surface: multiple grids, every
        // axis kind (providers, motion, cc), table1 scenarios.
        let spec = hsm::chaos::spec_for_case(master, case);
        let back = CampaignSpec::from_toml(&spec.to_toml()).expect("parse back");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.digest().expect("digest"), spec.digest().expect("digest"));
    }
}

/// The committed paper grid is frozen: 108 configurations (3 providers x
/// 2 motions x 2 durations x 3 windows x 3 delayed-ACK factors) with a
/// pinned expansion digest. A digest change means spec expansion
/// semantics (or the file) changed — bump deliberately or fix the
/// regression.
#[test]
fn paper_grid_expansion_is_pinned() {
    let spec = load_spec(&spec_path("paper_grid.toml")).expect("paper grid loads");
    let configs = spec.expand().expect("expands");
    assert_eq!(configs.len(), 108, "paper grid must stay 108 configs");
    assert!(configs.iter().all(|c| c.cc == Algorithm::Reno));
    assert_eq!(
        expansion_digest(&configs),
        PAPER_GRID_DIGEST,
        "paper grid expansion digest drifted"
    );
}

/// The congestion-control grid: the same 108-point grid crossed with a
/// nine-member controller axis (972 configs), digest-pinned.
#[test]
fn cc_grid_expansion_is_pinned() {
    let spec = load_spec(&spec_path("cc_grid.toml")).expect("cc grid loads");
    let configs = spec.expand().expect("expands");
    assert_eq!(configs.len(), 972, "cc grid must stay 108 x 9 configs");
    let distinct: std::collections::BTreeSet<String> =
        configs.iter().map(|c| format!("{:?}", c.cc)).collect();
    assert_eq!(distinct.len(), 9, "cc axis must keep 9 distinct members");
    assert_eq!(
        expansion_digest(&configs),
        CC_GRID_DIGEST,
        "cc grid expansion digest drifted"
    );
}

const PAPER_GRID_DIGEST: u64 = 0x428e_0156_9bb1_23e6;
const CC_GRID_DIGEST: u64 = 0x65a5_1fba_a323_6e21;

/// Every committed spec parses, round-trips exactly, and expands
/// deterministically.
#[test]
fn committed_specs_round_trip() {
    for (file, expected_flows) in [
        ("smoke.toml", Some(6)),
        ("paper_grid.toml", Some(108)),
        ("cc_grid.toml", Some(972)),
        ("trace_lab.toml", None),
    ] {
        let spec = load_spec(&spec_path(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        let back = CampaignSpec::from_toml(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{file}: round trip: {e}"));
        assert_eq!(back, spec, "{file}: TOML round trip changed the spec");
        let configs = spec.expand().unwrap_or_else(|e| panic!("{file}: {e}"));
        if let Some(n) = expected_flows {
            assert_eq!(configs.len(), n, "{file}");
        } else {
            assert!(!configs.is_empty(), "{file}: empty expansion");
        }
    }
}
