//! Stress-shape determinism: the campaign engine must produce a
//! byte-identical summary stream for every worker count × cache state
//! combination, on the many-short-flows load where scheduling, sharded
//! cache and slot collection — not per-flow simulation — dominate.
//!
//! The flow count here is smoke-sized (CI runs this on every push); the
//! full ≥2,000-flow Stress matrix lives in `repro bench` /
//! `BENCH_campaign.json`.

use hsm::prelude::*;
use hsm::scenario::dataset::{plan_dataset, DatasetConfig};
use hsm::simnet::time::SimDuration;

/// The Stress dataset shape (2 s flows, every provider × campaign mix)
/// scaled down to ~25 flows so the suite stays fast.
fn stress_configs() -> Vec<ScenarioConfig> {
    let cfg = DatasetConfig {
        scale: 0.1,
        flow_duration: SimDuration::from_secs(2),
        ..Default::default()
    };
    let plan: Vec<ScenarioConfig> = plan_dataset(&cfg).into_iter().map(|(_, c)| c).collect();
    assert!(plan.len() >= 12, "plan too small: {}", plan.len());
    plan
}

fn summary_bytes(output: &CampaignOutput) -> Vec<String> {
    output
        .summaries()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect()
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hsm_stress_{tag}_{}", std::process::id()))
}

#[test]
fn stress_streams_identical_across_workers_and_cache_states() -> Result<(), hsm::Error> {
    let configs = stress_configs();
    let disk_dir = unique_dir("matrix");
    let _ = std::fs::remove_dir_all(&disk_dir);

    let campaign_for = |workers: usize| -> Result<Campaign, hsm::Error> {
        Ok(Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()?)
    };

    // Reference stream: cold, single worker.
    let reference = summary_bytes(&campaign_for(1)?.run()?);
    assert_eq!(reference.len(), configs.len());

    for workers in [1usize, 2, 8] {
        let campaign = campaign_for(workers)?;

        // Cold: private, empty memory cache.
        let cold = campaign.run()?;
        assert_eq!(cold.report.cache_hits, 0, "workers {workers}: cold run");
        assert_eq!(summary_bytes(&cold), reference, "cold × {workers} workers");

        // Warm memory: second pass against one shared in-memory cache.
        let mem = FlowCache::new(CacheConfig::memory_only());
        campaign.run_with_cache(&mem)?;
        let warm_mem = campaign.run_with_cache(&mem)?;
        assert_eq!(
            warm_mem.report.cache_hits,
            configs.len(),
            "workers {workers}: warm-memory run must not re-simulate"
        );
        assert_eq!(
            summary_bytes(&warm_mem),
            reference,
            "warm-memory × {workers} workers"
        );

        // Warm disk: fresh memory tier, shared persistent disk tier. The
        // first worker count populates it; later ones are served from it.
        let disk = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(disk_dir.clone()),
            shards: 0,
        });
        let from_disk = campaign.run_with_cache(&disk)?;
        assert_eq!(
            summary_bytes(&from_disk),
            reference,
            "warm-disk × {workers} workers"
        );
        if workers > 1 {
            assert_eq!(
                from_disk.report.cache_hits,
                configs.len(),
                "workers {workers}: disk tier populated by the first pass"
            );
            assert!(from_disk.report.disk_hits > 0);
        }
    }

    // Bit-flip one persisted entry: the integrity hash must reject it, the
    // flow must be re-simulated (never served corrupt), and the campaign
    // must surface exactly that one rejection in its telemetry.
    let victim = hsm::runtime::cache::CacheKey::of(&configs[2]);
    assert!(
        hsm::runtime::cache::chaos_corrupt_disk_entry(&disk_dir, victim)
            .expect("corruption helper reaches the disk tier"),
        "victim entry must exist on disk before corruption"
    );
    let poisoned = FlowCache::new(CacheConfig {
        memory_entries: 0,
        disk_dir: Some(disk_dir.clone()),
        shards: 0,
    });
    let after_corruption = campaign_for(2)?.run_with_cache(&poisoned)?;
    assert_eq!(
        after_corruption.report.corrupt_entries, 1,
        "exactly the flipped entry is rejected"
    );
    assert_eq!(
        summary_bytes(&after_corruption),
        reference,
        "corrupted entry re-simulated, stream still byte-identical"
    );

    let _ = std::fs::remove_dir_all(&disk_dir);
    Ok(())
}

#[test]
fn stress_worker_telemetry_accounts_for_every_flow() -> Result<(), hsm::Error> {
    let configs = stress_configs();
    let n = configs.len();
    let campaign = Campaign::builder().configs(configs).workers(4).build()?;
    let out = campaign.run()?;
    assert_eq!(out.report.flows, n);
    assert_eq!(out.report.workers, 4);
    assert_eq!(out.report.worker_flows.len(), 4);
    assert_eq!(out.report.worker_flows.iter().sum::<usize>(), n);
    assert!(out.report.worker_utilization() > 0.0);
    // Slot collection must preserve campaign order: flow ids in the runs
    // match the plan order exactly.
    for (run, config) in out.runs.iter().zip(campaign.configs()) {
        assert_eq!(&run.config, config);
    }
    Ok(())
}
