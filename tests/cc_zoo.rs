//! Congestion-control zoo: golden throughput fixtures and per-CC
//! determinism across worker counts and cache tiers.
//!
//! The golden fixtures pin each controller's measured throughput on the
//! Veno test's pure-random-loss path to 1e-12 relative. The Reno-family
//! values predate the `CongestionControl` trait refactor — they prove
//! the trait dispatch is byte-identical to the old enum dispatch. To
//! regenerate after an intentional behavior change, print the values
//! with `{:.17e}` from `random_loss_throughput` and paste them here.
// The goldens deliberately carry 18 significant digits so a 1e-12
// relative drift is detectable; the extra digits are the point.
#![allow(clippy::excessive_precision)]

use hsm::scenario::runner::{Motion, ScenarioConfig};
use hsm::simnet::time::{SimDuration, SimTime};
use hsm::tcp::cc::Algorithm;
use hsm::tcp::connection::{run_connection, ConnectionConfig, LossSpec, PathSpec};
use hsm::tcp::reno::SenderConfig;
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::Campaign;
use hsm_trace::summary::analyze_flow;

/// Runs one flow on the Veno test's pure-random-loss path and returns its
/// measured throughput (segments/s).
fn random_loss_throughput(algorithm: Algorithm, newreno: bool, seed: u64) -> f64 {
    let cfg = ConnectionConfig {
        sender: SenderConfig {
            algorithm,
            newreno,
            stop_after: Some(SimDuration::from_secs(40)),
            ..Default::default()
        },
        deadline: SimTime::from_secs(50),
        ..Default::default()
    };
    let path = PathSpec {
        down_loss: LossSpec::Bernoulli(0.005),
        ..Default::default()
    };
    let out = run_connection(seed, &path, None, &cfg);
    analyze_flow(&out.trace, &Default::default())
        .summary
        .throughput_sps
}

/// Golden throughputs at seed 60: the Reno family pins byte-identity
/// through the trait refactor, the new zoo members pin their own
/// dynamics. BBR's model-driven window ignores most random loss (highest
/// throughput); Veno's random-loss discrimination beats Reno's blind
/// halving; CUBIC sits between; Compound's delay window adds a little
/// over Reno on this uncongested path.
#[test]
fn golden_throughput_fixtures_on_the_random_loss_path() {
    for (name, algo, newreno, expected) in [
        ("Reno", Algorithm::Reno, false, 218.601808929968911),
        ("NewReno", Algorithm::Reno, true, 212.262688002175338),
        ("Veno", Algorithm::veno(), false, 353.050732580270051),
        ("Cubic", Algorithm::cubic(), false, 336.001411205927070),
        ("Bbr", Algorithm::Bbr, false, 695.082723749670322),
        (
            "Compound",
            Algorithm::compound(),
            false,
            223.388330698634434,
        ),
    ] {
        let tp = random_loss_throughput(algo, newreno, 60);
        let rel = ((tp - expected) / expected).abs();
        assert!(
            rel < 1e-12,
            "{name} drifted from its golden fixture: measured {tp:.17e}, \
             expected {expected:.17e} (relative error {rel:.3e})"
        );
    }
}

fn zoo_configs(cc: Algorithm) -> Vec<ScenarioConfig> {
    (0..6u32)
        .map(|i| {
            ScenarioConfig::builder()
                .motion(Motion::Stationary)
                .seed(900 + u64::from(i))
                .duration(SimDuration::from_secs(5))
                .flow(i)
                .cc(cc)
                .build()
                .expect("valid zoo config")
        })
        .collect()
}

fn summarize(campaign: &Campaign, cache: &FlowCache) -> (Vec<String>, usize) {
    let out = campaign.run_with_cache(cache).expect("campaign runs");
    let summaries = out
        .summaries()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect();
    (summaries, out.report.cache_hits)
}

/// Every zoo member must produce a bit-identical summary stream for any
/// worker count and any cache tier: serial cold is the reference; 2- and
/// 8-worker cold runs and 2- and 8-worker warm-disk replays must match
/// it byte for byte (summaries compared on their serialized JSON, so
/// even a sign-of-zero difference would fail).
#[test]
fn every_controller_is_deterministic_across_workers_and_cache_tiers() {
    let disk_root = std::env::temp_dir().join(format!("hsm_cc_zoo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_root);
    for cc in Algorithm::zoo() {
        let configs = zoo_configs(cc);
        let n = configs.len();
        let disk_dir = disk_root.join(cc.label());
        let build = |workers: usize| {
            Campaign::builder()
                .configs(configs.clone())
                .workers(workers)
                .build()
                .expect("campaign builds")
        };

        // Serial cold run, populating the disk tier.
        let disk_cache = FlowCache::new(CacheConfig::with_disk(&disk_dir));
        let (reference, hits) = summarize(&build(1), &disk_cache);
        assert_eq!(hits, 0, "{}: reference run must be cold", cc.label());
        assert_eq!(reference.len(), n);

        for workers in [2usize, 8] {
            // Cold: fresh memory-only cache, nothing to hit.
            let (cold, hits) =
                summarize(&build(workers), &FlowCache::new(CacheConfig::memory_only()));
            assert_eq!(hits, 0, "{} w{workers}: cold run hit a cache", cc.label());
            assert_eq!(
                cold,
                reference,
                "{} diverged cold at {workers} workers",
                cc.label()
            );

            // Warm-disk: a fresh process-like cache over the same disk
            // tier must serve every flow without simulating.
            let warm_cache = FlowCache::new(CacheConfig::with_disk(&disk_dir));
            let (warm, hits) = summarize(&build(workers), &warm_cache);
            assert_eq!(
                hits,
                n,
                "{} w{workers}: warm-disk replay re-simulated",
                cc.label()
            );
            assert_eq!(
                warm,
                reference,
                "{} diverged warm-disk at {workers} workers",
                cc.label()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&disk_root);
}

/// The cc choice must actually reach the sender through the full
/// scenario stack: different controllers on the same seed must not all
/// collapse to Reno's stream.
#[test]
fn zoo_members_differ_end_to_end() {
    let reference = zoo_configs(Algorithm::Reno);
    let reno = hsm::scenario::runner::run_scenario(&reference[0])
        .summary()
        .throughput_sps;
    let mut distinct = 0;
    for cc in [Algorithm::cubic(), Algorithm::Bbr, Algorithm::compound()] {
        let tp = hsm::scenario::runner::run_scenario(&zoo_configs(cc)[0])
            .summary()
            .throughput_sps;
        if (tp - reno).abs() > 1e-9 {
            distinct += 1;
        }
    }
    assert!(
        distinct > 0,
        "no zoo member's end-to-end stream differs from Reno's"
    );
}
