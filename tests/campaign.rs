//! Cross-layer tests of the campaign engine through the `hsm` facade:
//! bit-identical results for any worker count and cache state, memoized
//! warm reruns, disk-tier integrity checking, and builder validation
//! surfacing through the unified [`hsm::Error`].

use hsm::prelude::*;
use hsm::simnet::time::SimDuration;

/// A small but non-trivial campaign: both motions, two providers, a few
/// seeds — 6 flows of 10 s each.
fn campaign_configs() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for (provider, motion) in [
        (Provider::ChinaMobile, Motion::HighSpeed),
        (Provider::ChinaUnicom, Motion::HighSpeed),
        (Provider::ChinaMobile, Motion::Stationary),
    ] {
        for seed in [11u64, 12] {
            configs.push(
                ScenarioConfig::builder()
                    .provider(provider)
                    .motion(motion)
                    .seed(seed)
                    .duration(SimDuration::from_secs(10))
                    .build()
                    .expect("valid config"),
            );
        }
    }
    configs
}

/// Serializes the deterministic result stream for byte comparison.
fn summary_bytes(output: &CampaignOutput) -> Vec<String> {
    output
        .summaries()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect()
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hsm_campaign_{tag}_{}", std::process::id()))
}

#[test]
fn results_are_bit_identical_across_workers_and_cache_states() -> Result<(), hsm::Error> {
    let configs = campaign_configs();
    let cache = FlowCache::new(CacheConfig::memory_only());

    let mut streams = Vec::new();
    for workers in [1usize, 2, 8] {
        let campaign = Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()?;
        // First pass at this worker count may be cold or warm depending on
        // the shared cache's state — the stream must not care.
        streams.push(summary_bytes(&campaign.run_with_cache(&cache)?));
        // And a fully cold run against a private cache.
        streams.push(summary_bytes(&campaign.run()?));
    }
    let reference = &streams[0];
    assert_eq!(reference.len(), configs.len());
    for stream in &streams[1..] {
        assert_eq!(stream, reference, "summary stream must be bit-identical");
    }
    Ok(())
}

#[test]
fn queue_swap_keeps_per_flow_event_streams_identical_across_workers() -> Result<(), hsm::Error> {
    // Regression guard for the slab-indexed event queue: it must break
    // same-instant ties by insertion sequence exactly like the old
    // (heap + hash-map) queue did, no matter how flows are sharded over
    // workers. If tie-breaking ever drifted, the per-flow simulator event
    // counts — not just the summaries — would diverge between a serial
    // and a parallel campaign.
    let configs = campaign_configs();
    let run = |workers: usize| -> Result<(Vec<u64>, Vec<String>), hsm::Error> {
        let campaign = Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()?;
        let output = campaign.run()?;
        let events: Vec<u64> = output.runs.iter().map(|r| r.events).collect();
        Ok((events, summary_bytes(&output)))
    };
    let (events_1, summaries_1) = run(1)?;
    let (events_8, summaries_8) = run(8)?;
    assert_eq!(
        events_1, events_8,
        "per-flow event counts diverged across worker counts"
    );
    assert_eq!(
        summaries_1, summaries_8,
        "serialized summaries diverged across worker counts"
    );
    assert!(
        events_1.iter().all(|&e| e > 0),
        "every flow must process events"
    );
    Ok(())
}

#[test]
fn warm_rerun_is_served_entirely_from_the_cache() -> Result<(), hsm::Error> {
    let campaign = Campaign::builder()
        .configs(campaign_configs())
        .workers(2)
        .build()?;
    let cache = FlowCache::new(CacheConfig::memory_only());

    let cold = campaign.run_with_cache(&cache)?;
    assert_eq!(cold.report.cache_hits, 0);
    assert_eq!(cold.report.cache_misses, cold.report.flows);
    assert!(cold.report.events_processed > 0);

    let warm = campaign.run_with_cache(&cache)?;
    assert_eq!(
        warm.report.cache_hits, warm.report.flows,
        "zero re-simulations"
    );
    assert_eq!(warm.report.cache_misses, 0);
    assert_eq!(warm.report.events_processed, 0);
    assert_eq!(summary_bytes(&cold), summary_bytes(&warm));
    Ok(())
}

#[test]
fn corrupt_disk_entries_are_detected_and_resimulated() -> Result<(), hsm::Error> {
    let dir = unique_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let configs = campaign_configs();
    let campaign = Campaign::builder().configs(configs).workers(2).build()?;

    // Populate the disk tier.
    let disk = CacheConfig {
        memory_entries: 0,
        disk_dir: Some(dir.clone()),
        shards: 0,
    };
    let cold = campaign.run_with_cache(&FlowCache::new(disk.clone()))?;

    // Corrupt one entry while keeping its JSON perfectly valid — only the
    // payload hash can expose the tampering.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("disk tier exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cold.report.flows);
    let victim = &entries[0];
    let text = std::fs::read_to_string(victim).expect("entry readable");
    let pos = text
        .find("\"data_sent\":")
        .expect("disk entry carries data_sent")
        + "\"data_sent\":".len();
    let old = &text[pos..=pos];
    let new = if old == "9" { "1" } else { "9" };
    let tampered = format!("{}{}{}", &text[..pos], new, &text[pos + 1..]);
    assert_ne!(tampered, text);
    std::fs::write(victim, tampered).expect("entry writable");

    // A fresh process (fresh memory tier, same disk tier) must detect the
    // corruption, re-simulate that flow, and still produce identical bytes.
    let rerun = campaign.run_with_cache(&FlowCache::new(disk))?;
    assert_eq!(rerun.report.corrupt_entries, 1);
    assert_eq!(rerun.report.cache_hits, rerun.report.flows - 1);
    assert_eq!(rerun.report.cache_misses, 1);
    assert_eq!(summary_bytes(&cold), summary_bytes(&rerun));

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

#[test]
fn builder_failures_surface_through_the_unified_error() {
    let zero_window = ScenarioConfig::builder().w_m(0).build();
    let err: hsm::Error = zero_window.expect_err("w_m = 0 must be rejected").into();
    assert!(matches!(
        err,
        hsm::Error::Scenario(ScenarioError::ZeroWindow)
    ));

    let bad = ScenarioConfig {
        b: 0,
        ..Default::default()
    };
    let campaign = Campaign::builder()
        .config(ScenarioConfig::default())
        .config(bad)
        .build();
    let err: hsm::Error = campaign
        .expect_err("invalid member must be rejected")
        .into();
    match err {
        hsm::Error::Engine(EngineError::InvalidConfig { index, source }) => {
            assert_eq!(index, 1);
            assert_eq!(source, ScenarioError::ZeroDelayedAck);
        }
        other => panic!("unexpected error: {other}"),
    }

    let err: hsm::Error = Campaign::builder()
        .config(ScenarioConfig::default())
        .workers(0)
        .build()
        .expect_err("zero workers must be rejected")
        .into();
    assert!(matches!(err, hsm::Error::Engine(EngineError::ZeroWorkers)));
}
