//! Cross-layer tests of the campaign engine through the `hsm` facade:
//! bit-identical results for any worker count and cache state, memoized
//! warm reruns, disk-tier integrity checking, and builder validation
//! surfacing through the unified [`hsm::Error`].

use hsm::prelude::*;
use hsm::simnet::time::SimDuration;

/// A small but non-trivial campaign: both motions, two providers, a few
/// seeds — 6 flows of 10 s each.
fn campaign_configs() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for (provider, motion) in [
        (Provider::ChinaMobile, Motion::HighSpeed),
        (Provider::ChinaUnicom, Motion::HighSpeed),
        (Provider::ChinaMobile, Motion::Stationary),
    ] {
        for seed in [11u64, 12] {
            configs.push(
                ScenarioConfig::builder()
                    .provider(provider)
                    .motion(motion)
                    .seed(seed)
                    .duration(SimDuration::from_secs(10))
                    .build()
                    .expect("valid config"),
            );
        }
    }
    configs
}

/// Serializes the deterministic result stream for byte comparison.
fn summary_bytes(output: &CampaignOutput) -> Vec<String> {
    output
        .summaries()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect()
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hsm_campaign_{tag}_{}", std::process::id()))
}

#[test]
fn results_are_bit_identical_across_workers_and_cache_states() -> Result<(), hsm::Error> {
    let configs = campaign_configs();
    let cache = FlowCache::new(CacheConfig::memory_only());

    let mut streams = Vec::new();
    for workers in [1usize, 2, 8] {
        let campaign = Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()?;
        // First pass at this worker count may be cold or warm depending on
        // the shared cache's state — the stream must not care.
        streams.push(summary_bytes(&campaign.run_with_cache(&cache)?));
        // And a fully cold run against a private cache.
        streams.push(summary_bytes(&campaign.run()?));
    }
    let reference = &streams[0];
    assert_eq!(reference.len(), configs.len());
    for stream in &streams[1..] {
        assert_eq!(stream, reference, "summary stream must be bit-identical");
    }
    Ok(())
}

#[test]
fn queue_swap_keeps_per_flow_event_streams_identical_across_workers() -> Result<(), hsm::Error> {
    // Regression guard for the slab-indexed event queue: it must break
    // same-instant ties by insertion sequence exactly like the old
    // (heap + hash-map) queue did, no matter how flows are sharded over
    // workers. If tie-breaking ever drifted, the per-flow simulator event
    // counts — not just the summaries — would diverge between a serial
    // and a parallel campaign.
    let configs = campaign_configs();
    let run = |workers: usize| -> Result<(Vec<u64>, Vec<String>), hsm::Error> {
        let campaign = Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()?;
        let output = campaign.run()?;
        let events: Vec<u64> = output.runs.iter().map(|r| r.events).collect();
        Ok((events, summary_bytes(&output)))
    };
    let (events_1, summaries_1) = run(1)?;
    let (events_8, summaries_8) = run(8)?;
    assert_eq!(
        events_1, events_8,
        "per-flow event counts diverged across worker counts"
    );
    assert_eq!(
        summaries_1, summaries_8,
        "serialized summaries diverged across worker counts"
    );
    assert!(
        events_1.iter().all(|&e| e > 0),
        "every flow must process events"
    );
    Ok(())
}

#[test]
fn warm_rerun_is_served_entirely_from_the_cache() -> Result<(), hsm::Error> {
    let campaign = Campaign::builder()
        .configs(campaign_configs())
        .workers(2)
        .build()?;
    let cache = FlowCache::new(CacheConfig::memory_only());

    let cold = campaign.run_with_cache(&cache)?;
    assert_eq!(cold.report.cache_hits, 0);
    assert_eq!(cold.report.cache_misses, cold.report.flows);
    assert!(cold.report.events_processed > 0);

    let warm = campaign.run_with_cache(&cache)?;
    assert_eq!(
        warm.report.cache_hits, warm.report.flows,
        "zero re-simulations"
    );
    assert_eq!(warm.report.cache_misses, 0);
    assert_eq!(warm.report.events_processed, 0);
    assert_eq!(summary_bytes(&cold), summary_bytes(&warm));
    Ok(())
}

#[test]
fn corrupt_disk_entries_are_detected_and_resimulated() -> Result<(), hsm::Error> {
    let dir = unique_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let configs = campaign_configs();
    let campaign = Campaign::builder().configs(configs).workers(2).build()?;

    // Populate the disk tier.
    let disk = CacheConfig {
        memory_entries: 0,
        disk_dir: Some(dir.clone()),
        shards: 0,
    };
    let cold = campaign.run_with_cache(&FlowCache::new(disk.clone()))?;

    // Corrupt two binary entries two different ways: a single flipped bit
    // in the middle of one (only the CRC can expose it) and a truncation
    // of another (the length prefix exposes it).
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("disk tier exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cold.report.flows);
    let mut flipped = std::fs::read(&entries[0]).expect("entry readable");
    assert!(hsm::runtime::codec::is_binary_entry(&flipped));
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&entries[0], flipped).expect("entry writable");
    let truncated = std::fs::read(&entries[1]).expect("entry readable");
    std::fs::write(&entries[1], &truncated[..truncated.len() - 7]).expect("entry writable");

    // A fresh process (fresh memory tier, same disk tier) must detect the
    // corruption, re-simulate those flows, and still produce identical
    // bytes.
    let rerun = campaign.run_with_cache(&FlowCache::new(disk))?;
    assert_eq!(rerun.report.corrupt_entries, 2);
    assert_eq!(rerun.report.cache_hits, rerun.report.flows - 2);
    assert_eq!(rerun.report.cache_misses, 2);
    assert_eq!(summary_bytes(&cold), summary_bytes(&rerun));

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

#[test]
fn mixed_format_disk_tier_is_bit_identical_and_migrates_in_place() -> Result<(), hsm::Error> {
    let dir = unique_dir("mixed");
    let _ = std::fs::remove_dir_all(&dir);
    let configs = campaign_configs();
    let campaign = Campaign::builder().configs(configs).workers(2).build()?;

    let disk = CacheConfig {
        memory_entries: 0,
        disk_dir: Some(dir.clone()),
        shards: 0,
    };
    let cold = campaign.run_with_cache(&FlowCache::new(disk.clone()))?;

    // Rewrite half the tier as legacy JSON entries — the pre-binary
    // on-disk encoding — leaving the rest binary.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("disk tier exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    let legacy_count = entries.len() / 2;
    for path in &entries[..legacy_count] {
        let bytes = std::fs::read(path).expect("entry readable");
        let (key, summary) = hsm::runtime::codec::decode_entry(&bytes).expect("cold entry decodes");
        hsm::runtime::cache::write_legacy_json_entry(
            &dir,
            hsm::runtime::cache::CacheKey(key),
            &summary,
        )
        .expect("legacy rewrite");
    }

    // The mixed tier must serve every flow — both formats — with zero
    // re-simulation and a bit-identical summary stream.
    let mixed_cache = FlowCache::new(disk.clone());
    let mixed = campaign.run_with_cache(&mixed_cache)?;
    assert_eq!(mixed.report.cache_hits, mixed.report.flows);
    assert_eq!(mixed.report.corrupt_entries, 0);
    assert_eq!(summary_bytes(&cold), summary_bytes(&mixed));
    assert_eq!(
        mixed_cache.stats().legacy_json_hits,
        legacy_count as u64,
        "every legacy entry must be counted"
    );

    // `repro cache migrate` rewrites the legacy half in place...
    let stats = hsm::runtime::cache::migrate_disk_tier(&dir).expect("migration runs");
    assert_eq!(stats.migrated, legacy_count as u64);
    assert_eq!(stats.already_binary, (entries.len() - legacy_count) as u64);
    assert_eq!(stats.corrupt, 0);

    // ...after which the tier is all-binary and still bit-identical.
    let migrated_cache = FlowCache::new(disk);
    let migrated = campaign.run_with_cache(&migrated_cache)?;
    assert_eq!(migrated.report.cache_hits, migrated.report.flows);
    assert_eq!(summary_bytes(&cold), summary_bytes(&migrated));
    assert_eq!(migrated_cache.stats().legacy_json_hits, 0);

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

#[test]
fn builder_failures_surface_through_the_unified_error() {
    let zero_window = ScenarioConfig::builder().w_m(0).build();
    let err: hsm::Error = zero_window.expect_err("w_m = 0 must be rejected").into();
    assert!(matches!(
        err,
        hsm::Error::Scenario(ScenarioError::ZeroWindow)
    ));

    let bad = ScenarioConfig {
        b: 0,
        ..Default::default()
    };
    let campaign = Campaign::builder()
        .config(ScenarioConfig::default())
        .config(bad)
        .build();
    let err: hsm::Error = campaign
        .expect_err("invalid member must be rejected")
        .into();
    match err {
        hsm::Error::Engine(EngineError::InvalidConfig { index, source }) => {
            assert_eq!(index, 1);
            assert_eq!(source, ScenarioError::ZeroDelayedAck);
        }
        other => panic!("unexpected error: {other}"),
    }

    let err: hsm::Error = Campaign::builder()
        .config(ScenarioConfig::default())
        .workers(0)
        .build()
        .expect_err("zero workers must be rejected")
        .into();
    assert!(matches!(err, hsm::Error::Engine(EngineError::ZeroWorkers)));
}

/// Acceptance measurement for the binary disk tier: a Stress-scale warm
/// replay served entirely from binary entries must be at least 3x faster
/// than the same replay served from the legacy JSON encoding.
///
/// Ignored by default — it cold-runs the ~2,040-flow Stress dataset and
/// is wall-clock sensitive, so it belongs in a release-mode one-off
/// (`cargo test --release -q --test campaign -- --ignored warm_disk`)
/// rather than the tier-1 gate, where `tools/bench_gate.sh` tracks the
/// absolute warm-disk wall-clock against the committed baseline instead.
#[test]
#[ignore = "release-mode acceptance measurement, not a tier-1 invariant"]
fn warm_disk_binary_replay_is_3x_faster_than_legacy_json() -> Result<(), hsm::Error> {
    use hsm::scenario::dataset::DatasetConfig;

    let bin_dir = unique_dir("warm3x_bin");
    let json_dir = unique_dir("warm3x_json");
    for d in [&bin_dir, &json_dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    // The Stress dataset: ~2,040 two-second flows, where per-flow cache
    // decode cost dominates a warm replay (same load `repro bench` uses
    // for BENCH_campaign.json).
    let dataset = DatasetConfig {
        scale: 8.0,
        flow_duration: SimDuration::from_secs(2),
        ..Default::default()
    };
    let campaign = Campaign::builder().dataset(&dataset).workers(1).build()?;

    let disk_only = |dir: &std::path::Path| CacheConfig {
        memory_entries: 0,
        disk_dir: Some(dir.to_path_buf()),
        shards: 0,
    };

    // Populate the binary tier cold, then clone it entry-for-entry into
    // the legacy JSON encoding.
    let cold = campaign.run_with_cache(&FlowCache::new(disk_only(&bin_dir)))?;
    for entry in std::fs::read_dir(&bin_dir).expect("binary tier exists") {
        let bytes = std::fs::read(entry.expect("dir entry").path()).expect("entry readable");
        let (key, summary) = hsm::runtime::codec::decode_entry(&bytes).expect("cold entry decodes");
        hsm::runtime::cache::write_legacy_json_entry(
            &json_dir,
            hsm::runtime::cache::CacheKey(key),
            &summary,
        )
        .expect("legacy clone");
    }

    // Warm both tiers once (page cache, lazy init), then measure the
    // best of three fully disk-served replays per format.
    let replay = |dir: &std::path::Path| -> Result<f64, hsm::Error> {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let cache = FlowCache::new(disk_only(dir));
            let out = campaign.run_with_cache(&cache)?;
            assert_eq!(out.report.disk_hits, out.report.flows as u64);
            assert_eq!(summary_bytes(&cold), summary_bytes(&out));
            best = best.min(out.report.wall_clock_s);
        }
        Ok(best)
    };
    let _ = replay(&bin_dir)?;
    let _ = replay(&json_dir)?;
    let binary_s = replay(&bin_dir)?;
    let json_s = replay(&json_dir)?;

    for d in [&bin_dir, &json_dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    let speedup = json_s / binary_s;
    println!("warm-disk replay: binary {binary_s:.4}s, legacy JSON {json_s:.4}s ({speedup:.2}x)");
    assert!(
        speedup >= 3.0,
        "binary warm replay must be >= 3x faster than JSON ({binary_s:.4}s vs {json_s:.4}s, {speedup:.2}x)"
    );
    Ok(())
}
