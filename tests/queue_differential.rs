//! Differential proptest: the timing-wheel `EventQueue` against the
//! retired binary-heap `HeapEventQueue` (compiled back in via the
//! `heap-reference` feature).
//!
//! The wheel's `(firing time, insertion sequence)` total FIFO order is a
//! contract every bit-identical-replay suite in the workspace leans on,
//! and its proof (DESIGN.md §15) rests on invariants that are easy to
//! break silently — cascade tie-breaks, seq-sorted slot lists, lazy
//! cancellation. The heap's ordering, by contrast, is one comparator.
//! So: feed randomized schedule/cancel/pop interleavings to both queues
//! and assert they agree on **everything observable** — pop order, event
//! payloads, issued and popped `EventId`s, cancel return values, peeked
//! times and live counts. Any divergence is a wheel bug by definition.

use hsm_simnet::agent::AgentId;
use hsm_simnet::event::{Event, EventId, EventKind, EventQueue};
use hsm_simnet::event_heap::HeapEventQueue;
use hsm_simnet::time::SimTime;
use proptest::prelude::*;

/// One scripted queue operation. Times are deltas so the generator can
/// never violate the monotonicity invariant (schedules land at or after
/// the last fired instant in both queues alike).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `last_fired + dt` (dt spans all wheel levels).
    Schedule { dt: u64 },
    /// Cancel the k-th currently-live id (no-op when none are live) —
    /// and, every other time, re-cancel an already-dead id to check the
    /// `false` path agrees too.
    Cancel { k: usize, dead: bool },
    /// Pop one event from both queues and compare everything.
    Pop,
    /// Pop with a deadline `last_fired + dt` (exercises the "leave it
    /// queued" path at wheel-slot boundaries).
    PopBefore { dt: u64 },
    /// Compare `peek_time` (both queues do deferred maintenance here).
    Peek,
}

/// Time deltas spanning all wheel levels: level 0 (< 64 µs), the mid
/// wheels, and far-future instants that must cascade several levels down.
fn arb_dt() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..4096,
        0u64..262_144,
        0u64..1_000_000_000,
        1_000_000_000_000u64..2_000_000_000_000,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_dt().prop_map(|dt| Op::Schedule { dt }),
        arb_dt().prop_map(|dt| Op::Schedule { dt }),
        arb_dt().prop_map(|dt| Op::Schedule { dt }),
        (0usize..64, 0u64..2).prop_map(|(k, d)| Op::Cancel { k, dead: d == 1 }),
        Just(Op::Pop),
        Just(Op::Pop),
        arb_dt().prop_map(|dt| Op::PopBefore { dt }),
        Just(Op::Peek),
    ]
}

fn ev(at_us: u64, tag: u64) -> Event {
    Event {
        at: SimTime::from_micros(at_us),
        dst: AgentId::from_raw(0),
        kind: EventKind::Timer { tag },
    }
}

fn tag_of(e: &Event) -> u64 {
    match e.kind {
        EventKind::Timer { tag } => tag,
        _ => unreachable!("script schedules only timers"),
    }
}

/// Drives both queues through one op script, asserting observable
/// equivalence after every step. Returns the popped `(time, seq-tag)`
/// stream for final whole-run comparison.
fn run_script(ops: &[Op]) {
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    // Live ids as issued (identical between queues, also asserted).
    let mut live: Vec<EventId> = Vec::new();
    let mut dead: Vec<EventId> = Vec::new();
    let mut last_fired: u64 = 0;
    let mut next_tag: u64 = 0;
    let mut popped: Vec<(u64, u64)> = Vec::new();

    let check_pop = |live: &mut Vec<EventId>,
                     dead: &mut Vec<EventId>,
                     last_fired: &mut u64,
                     popped: &mut Vec<(u64, u64)>,
                     w: Option<(EventId, Event)>,
                     h: Option<(EventId, Event)>| {
        match (w, h) {
            (None, None) => {}
            (Some((wid, we)), Some((hid, he))) => {
                assert_eq!(wid, hid, "popped EventIds diverged");
                assert_eq!(we.at, he.at, "popped times diverged");
                assert_eq!(tag_of(&we), tag_of(&he), "popped payloads diverged");
                *last_fired = we.at.as_micros();
                popped.push((we.at.as_micros(), tag_of(&we)));
                live.retain(|id| *id != wid);
                dead.push(wid);
            }
            (w, h) => panic!("one queue popped, the other did not: {w:?} vs {h:?}"),
        }
    };

    for op in ops {
        match *op {
            Op::Schedule { dt } => {
                let at = last_fired.saturating_add(dt);
                let e = ev(at, next_tag);
                next_tag += 1;
                let wid = wheel.schedule(e);
                let hid = heap.schedule(e);
                assert_eq!(wid, hid, "issued EventIds diverged");
                live.push(wid);
            }
            Op::Cancel { k, dead: use_dead } => {
                if use_dead && !dead.is_empty() {
                    let id = dead[k % dead.len()];
                    assert!(!wheel.cancel(id), "wheel revived a dead id");
                    assert!(!heap.cancel(id), "heap revived a dead id");
                } else if !live.is_empty() {
                    let id = live.remove(k % live.len());
                    assert!(wheel.cancel(id), "wheel lost a live id");
                    assert!(heap.cancel(id), "heap lost a live id");
                    dead.push(id);
                }
            }
            Op::Pop => {
                let w = wheel.pop();
                let h = heap.pop();
                check_pop(&mut live, &mut dead, &mut last_fired, &mut popped, w, h);
            }
            Op::PopBefore { dt } => {
                let deadline = SimTime::from_micros(last_fired.saturating_add(dt));
                let w = wheel.pop_before(deadline);
                let h = heap.pop_before(deadline);
                check_pop(&mut live, &mut dead, &mut last_fired, &mut popped, w, h);
            }
            Op::Peek => {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
                assert_eq!(
                    wheel.next_fire_time(),
                    heap.peek_time(),
                    "non-mutating peek diverged"
                );
            }
        }
        assert_eq!(wheel.len(), heap.len(), "live counts diverged");
        for id in &live {
            assert!(wheel.is_pending(*id) && heap.is_pending(*id));
        }
    }
    // Drain to empty: the tail order must agree too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        let done = w.is_none();
        check_pop(&mut live, &mut dead, &mut last_fired, &mut popped, w, h);
        if done {
            break;
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
    // The popped stream must be sorted by (time, schedule order): tags
    // are issued in schedule order, so within one instant they ascend.
    for pair in popped.windows(2) {
        assert!(
            pair[0].0 < pair[1].0 || (pair[0].0 == pair[1].0 && pair[0].1 < pair[1].1),
            "pop stream violates (time, seq) order: {pair:?}"
        );
    }
}

proptest! {
    #[test]
    fn wheel_and_heap_pop_identically(ops in proptest::collection::vec(arb_op(), 1..300)) {
        run_script(&ops);
    }
}

/// The regression the cascade tie-break exists for, as a fixed script:
/// same-instant events split between a coarse wheel level (scheduled far
/// ahead) and level 0 (scheduled close) must interleave by seq.
#[test]
fn cross_level_same_instant_script() {
    let ops = [
        Op::Schedule { dt: 0 },   // t=0, tag 0
        Op::Schedule { dt: 100 }, // t=100 → level 1, tag 1
        Op::Pop,                  // fires tag 0, cursor at 0
        Op::Schedule { dt: 60 },  // t=60, tag 2
        Op::Pop,                  // fires tag 2, cursor at 60
        Op::Schedule { dt: 40 },  // t=100 → now level 0, tag 3
        Op::Schedule { dt: 40 },  // t=100, tag 4
        Op::Peek,
        Op::Pop,
        Op::Pop,
        Op::Pop,
    ];
    run_script(&ops);
}

/// Schedule-then-cancel churn (the RTO pattern) mixed with pops, across
/// level boundaries.
#[test]
fn rto_churn_script() {
    let mut ops = Vec::new();
    for i in 0..200 {
        ops.push(Op::Schedule { dt: 200_000 + i });
        ops.push(Op::Cancel { k: 0, dead: false });
        ops.push(Op::Schedule { dt: 63 });
        if i % 3 == 0 {
            ops.push(Op::Pop);
        }
    }
    run_script(&ops);
}
