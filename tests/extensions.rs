//! Integration tests for the extension features: Veno, adaptive delayed
//! ACKs, spurious-RTO undo, shared-radio MPTCP, trace persistence,
//! timeline analysis and global model fitting.

// The deprecated generate_dataset* helpers stay covered until removal.
#![allow(deprecated)]

use hsm::model::prelude::*;
use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;
use hsm::tcp::prelude::*;
use hsm::trace::prelude::*;

fn hsr_scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        duration: SimDuration::from_secs(40),
        ..Default::default()
    }
}

fn run_with(
    sc: &ScenarioConfig,
    mutate: impl FnOnce(&mut ConnectionConfig),
) -> (ConnectionOutcome, FlowSummary) {
    let mut conn = sc.connection();
    mutate(&mut conn);
    let out = run_connection(sc.seed, &sc.path(), sc.mobility().as_ref(), &conn);
    let summary = analyze_flow(&out.trace, &TimeoutConfig::default()).summary;
    (out, summary)
}

#[test]
fn veno_runs_the_full_hsr_pipeline() {
    let sc = hsr_scenario(91);
    let (_, reno) = run_with(&sc, |_| {});
    let (_, veno) = run_with(&sc, |c| c.sender.algorithm = Algorithm::veno());
    assert!(veno.throughput_sps > 0.0);
    // Same channel, same seed: both complete; Veno should be in the same
    // ballpark or better (its cuts are never deeper than Reno's).
    assert!(
        veno.throughput_sps > reno.throughput_sps * 0.5,
        "veno {} vs reno {}",
        veno.throughput_sps,
        reno.throughput_sps
    );
}

#[test]
fn adaptive_delack_stays_safe_on_the_train() {
    // The conservative default (b_max = 2) must stay competitive with the
    // fixed b = 2 receiver on the same ride.
    let sc = hsr_scenario(92);
    let (_, fixed) = run_with(&sc, |_| {});
    let (_, adaptive) = run_with(&sc, |c| {
        c.receiver.adaptive = Some(AdaptiveDelAck::default())
    });
    assert!(adaptive.throughput_sps > 0.0);
    assert!(
        adaptive.throughput_sps > fixed.throughput_sps * 0.6,
        "adaptive {} vs fixed {}",
        adaptive.throughput_sps,
        fixed.throughput_sps
    );
}

#[test]
fn spurious_rto_undo_is_a_net_positive_under_ack_outages() {
    // A channel whose only impairment is periodic pure-ACK blackouts —
    // every timeout is spurious and data keeps flowing, so the Eifel
    // timing heuristic can catch them.
    let path = PathSpec {
        up_loss: LossSpec::PeriodicOutage {
            period_s: 6.0,
            outage_s: 0.8,
            offset_s: 3.0,
            loss: 1.0,
        },
        jitter_sd: SimDuration::ZERO,
        ..Default::default()
    };
    let mut with = 0.0;
    let mut without = 0.0;
    let mut total_undone = 0;
    for seed in 0..3 {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(40)),
                ..Default::default()
            },
            deadline: hsm::simnet::time::SimTime::from_secs(60),
            ..Default::default()
        };
        let base = run_connection(930 + seed, &path, None, &cfg);
        let mut undo_cfg = cfg.clone();
        undo_cfg.sender.spurious_rto_undo = true;
        let undo = run_connection(930 + seed, &path, None, &undo_cfg);
        with += analyze_flow(&undo.trace, &TimeoutConfig::default())
            .summary
            .throughput_sps;
        without += analyze_flow(&base.trace, &TimeoutConfig::default())
            .summary
            .throughput_sps;
        total_undone += undo.sender.spurious_rto_undone;
    }
    assert!(
        total_undone > 0,
        "periodic ACK blackouts must trigger undos"
    );
    assert!(
        with > without * 0.95,
        "undo should not cost throughput: {with} vs {without}"
    );
}

#[test]
fn shared_radio_mptcp_fills_dead_time_without_doubling_capacity() {
    // On the bandwidth-limited Telecom channel, a single flow idles during
    // timeout ladders; a second flow on the SAME radio fills those gaps —
    // but the aggregate stays within the pipe.
    let mut single_sum = 0.0;
    let mut shared_sum = 0.0;
    for seed in 0..3 {
        let sc = ScenarioConfig {
            provider: Provider::ChinaTelecom,
            seed: 940 + seed,
            duration: SimDuration::from_secs(40),
            ..Default::default()
        };
        single_sum += run_scenario(&sc).summary().throughput_sps;
        let shared = run_mptcp_shared_radio(
            sc.seed,
            &sc.path(),
            sc.mobility().as_ref(),
            &sc.connection(),
        );
        shared_sum += shared.aggregate_throughput_sps();
    }
    assert!(
        shared_sum > single_sum,
        "shared-radio MPTCP must recover dead time: {shared_sum} vs {single_sum}"
    );
}

#[test]
fn dataset_persistence_round_trips_through_disk() {
    let cfg = DatasetConfig {
        scale: 0.02,
        flow_duration: SimDuration::from_secs(10),
        ..Default::default()
    };
    let flows = generate_dataset(&cfg);
    let path = std::env::temp_dir().join("hsm_ext_roundtrip.jsonl");
    let traces: Vec<&FlowTrace> = flows.iter().map(|f| &f.outcome.outcome.trace).collect();
    save_traces(&path, traces.iter().copied()).expect("save");
    let reloaded = load_traces(&path).expect("load");
    assert_eq!(reloaded.len(), flows.len());
    for (orig, back) in traces.iter().zip(&reloaded) {
        assert_eq!(*orig, back);
        // Reloaded traces analyze identically.
        let a = analyze_flow(orig, &TimeoutConfig::default()).summary;
        let b = analyze_flow(back, &TimeoutConfig::default()).summary;
        assert_eq!(a, b);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn timeline_dead_time_tracks_timeouts() {
    let out = run_scenario(&hsr_scenario(95));
    let trace = &out.outcome.trace;
    let dead = stall_time_fraction(trace, SimDuration::from_secs(1));
    let stalls = detect_stalls(trace, SimDuration::from_secs(1));
    if out.summary().timeout_sequences > 0 {
        assert!(
            !stalls.is_empty(),
            "timeout sequences must appear as stalls"
        );
        assert!(dead > 0.0);
    }
    // The timeline's total deliveries match the throughput analysis.
    let bins = throughput_timeline(trace, SimDuration::from_secs(5));
    let timeline_total: u64 = bins.iter().map(|b| b.delivered).sum();
    let direct = throughput(trace);
    assert_eq!(timeline_total, direct.segments_delivered);
}

#[test]
fn global_fit_runs_on_simulated_data() {
    let cfg = DatasetConfig {
        scale: 0.03,
        flow_duration: SimDuration::from_secs(40),
        ..Default::default()
    };
    let summaries: Vec<FlowSummary> = generate_dataset(&cfg)
        .into_iter()
        .map(|f| f.outcome.analysis.summary)
        .collect();
    let fit = fit_global(&summaries, &FitConfig::default()).expect("fit succeeds");
    assert!(fit.flows >= 4);
    assert!((0.05..=0.6).contains(&fit.q));
    assert!(fit.mean_d.is_finite());
    // The fitted global q must score no worse than an arbitrary extreme.
    let (d_extreme, _) = fit_score(&summaries, 0.9, 1.0).unwrap_or((f64::INFINITY, 0));
    assert!(fit.mean_d <= d_extreme + 1e-9);
}
