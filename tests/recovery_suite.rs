//! Loss-recovery zoo: golden fixtures and per-(recovery × cc)
//! determinism across worker counts and cache tiers.
//!
//! The `recovery = None` goldens reuse the cc-zoo's exact pre-recovery
//! pinned throughputs: an explicit `Recovery::None` sender must be
//! byte-identical to a sender that predates the strategy layer. The
//! per-variant storm goldens pin each countermeasure's dynamics under a
//! delayed-but-not-lost ACK flap storm. To regenerate after an
//! intentional behavior change, print the values with `{:.17e}`.
// The goldens deliberately carry 18 significant digits so a 1e-12
// relative drift is detectable; the extra digits are the point.
#![allow(clippy::excessive_precision)]

use hsm::scenario::runner::{try_run_storm_scenario, Motion, ScenarioConfig};
use hsm::simnet::chaos::{StormEpisode, StormKind, StormPlan};
use hsm::simnet::time::{SimDuration, SimTime};
use hsm::tcp::cc::Algorithm;
use hsm::tcp::connection::{run_connection, ConnectionConfig, LossSpec, PathSpec};
use hsm::tcp::recovery::Recovery;
use hsm::tcp::reno::SenderConfig;
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::Campaign;
use hsm_trace::summary::analyze_flow;

/// Runs one flow on the cc-zoo's pure-random-loss path with an explicit
/// recovery strategy and returns its measured throughput (segments/s).
fn random_loss_throughput(
    algorithm: Algorithm,
    newreno: bool,
    recovery: Recovery,
    seed: u64,
) -> f64 {
    let cfg = ConnectionConfig {
        sender: SenderConfig {
            algorithm,
            newreno,
            recovery,
            stop_after: Some(SimDuration::from_secs(40)),
            ..Default::default()
        },
        deadline: SimTime::from_secs(50),
        ..Default::default()
    };
    let path = PathSpec {
        down_loss: LossSpec::Bernoulli(0.005),
        ..Default::default()
    };
    let out = run_connection(seed, &path, None, &cfg);
    analyze_flow(&out.trace, &Default::default())
        .summary
        .throughput_sps
}

/// An explicit `Recovery::None` must reproduce the cc-zoo's pre-recovery
/// goldens bit for bit — the strategy layer's default path adds nothing
/// to the sender's event stream.
#[test]
fn explicit_none_matches_the_pre_recovery_goldens() {
    for (name, algo, newreno, expected) in [
        ("Reno", Algorithm::Reno, false, 218.601808929968911),
        ("NewReno", Algorithm::Reno, true, 212.262688002175338),
        ("Veno", Algorithm::veno(), false, 353.050732580270051),
        ("Cubic", Algorithm::cubic(), false, 336.001411205927070),
        ("Bbr", Algorithm::Bbr, false, 695.082723749670322),
        (
            "Compound",
            Algorithm::compound(),
            false,
            223.388330698634434,
        ),
    ] {
        let tp = random_loss_throughput(algo, newreno, Recovery::None, 60);
        let rel = ((tp - expected) / expected).abs();
        assert!(
            rel < 1e-12,
            "{name}+None drifted from the pre-recovery golden: measured {tp:.17e}, \
             expected {expected:.17e} (relative error {rel:.3e})"
        );
    }
}

/// The recovery-study's ACK-flap storm, inlined: 500 ms delay flaps
/// every 2.5 s from t = 600 ms (past the first RTO, short of the second
/// backoff rung).
fn flap_storm(duration: SimDuration) -> StormPlan {
    let flap = SimDuration::from_millis(500);
    let period = SimDuration::from_millis(2500);
    let mut episodes = Vec::new();
    let mut at = SimTime::ZERO + SimDuration::from_millis(600);
    while at + period < SimTime::ZERO + duration {
        episodes.push(StormEpisode {
            at,
            duration: flap,
            kind: StormKind::Flap(flap),
        });
        at += period;
    }
    StormPlan { episodes }
}

fn storm_config(recovery: Recovery) -> ScenarioConfig {
    ScenarioConfig::builder()
        .motion(Motion::Stationary)
        .seed(77)
        .duration(SimDuration::from_secs(12))
        .recovery(recovery)
        .build()
        .expect("valid storm config")
}

/// Each countermeasure must actually change the sender's dynamics under
/// the flap storm — and in its own characteristic way.
#[test]
fn every_countermeasure_leaves_its_signature_under_the_storm() {
    let plan = flap_storm(SimDuration::from_secs(12));
    let run = |recovery| {
        try_run_storm_scenario(&storm_config(recovery), &plan).expect("storm scenario runs")
    };

    let none = run(Recovery::None);
    assert!(
        !none.outcome.sender.timeouts.is_empty(),
        "the storm never drove the baseline into a timeout"
    );
    assert_eq!(none.outcome.sender.spurious_rto_undone, 0);
    assert_eq!(none.outcome.sender.frto_probes, 0);
    assert_eq!(none.outcome.sender.backoff_skipped, 0);

    let redundant = run(Recovery::RedundantRto);
    assert!(
        redundant.outcome.sender.retransmissions > none.outcome.sender.retransmissions,
        "redundant retransmit-on-RTO sent no extra retransmissions"
    );

    let frto = run(Recovery::Frto);
    assert!(
        frto.outcome.sender.frto_probes > 0,
        "F-RTO never probed under a pure delay storm"
    );
    assert!(
        frto.outcome.sender.spurious_rto_undone > 0,
        "F-RTO never undid a spurious timeout"
    );
    assert!(
        frto.summary().throughput_sps > none.summary().throughput_sps,
        "undoing spurious timeouts must out-deliver plain recovery: {} vs {}",
        frto.summary().throughput_sps,
        none.summary().throughput_sps
    );

    let ack_robust = run(Recovery::AckRobust);
    assert!(
        ack_robust.outcome.sender.backoff_skipped > 0,
        "the ACK-loss-robust strategy never withheld a backoff"
    );
}

fn suite_configs() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    let mut flow = 0u32;
    for cc in Algorithm::zoo() {
        for recovery in Recovery::ALL {
            for seed in 0..2u64 {
                configs.push(
                    ScenarioConfig::builder()
                        .motion(Motion::Stationary)
                        .seed(1_700 + seed)
                        .duration(SimDuration::from_secs(4))
                        .flow(flow)
                        .cc(cc)
                        .recovery(recovery)
                        .build()
                        .expect("valid suite config"),
                );
                flow += 1;
            }
        }
    }
    configs
}

fn summarize(campaign: &Campaign, cache: &FlowCache) -> (Vec<String>, usize) {
    let out = campaign.run_with_cache(cache).expect("campaign runs");
    let summaries = out
        .summaries()
        .map(|s| serde_json::to_string(s).expect("summary serializes"))
        .collect();
    (summaries, out.report.cache_hits)
}

/// One campaign spanning the full (cc × recovery) grid must produce a
/// bit-identical summary stream for any worker count and any cache tier:
/// serial cold is the reference; 2- and 8-worker cold runs and 2- and
/// 8-worker warm-disk replays must match it byte for byte.
#[test]
fn the_recovery_grid_is_deterministic_across_workers_and_cache_tiers() {
    let disk_dir = std::env::temp_dir().join(format!("hsm_recovery_suite_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let configs = suite_configs();
    let n = configs.len();
    assert_eq!(n, Algorithm::zoo().len() * Recovery::ALL.len() * 2);
    let build = |workers: usize| {
        Campaign::builder()
            .configs(configs.clone())
            .workers(workers)
            .build()
            .expect("campaign builds")
    };

    // Serial cold run, populating the disk tier.
    let disk_cache = FlowCache::new(CacheConfig::with_disk(&disk_dir));
    let (reference, hits) = summarize(&build(1), &disk_cache);
    assert_eq!(hits, 0, "reference run must be cold");
    assert_eq!(reference.len(), n);

    for workers in [2usize, 8] {
        // Cold: fresh memory-only cache, nothing to hit.
        let (cold, hits) = summarize(&build(workers), &FlowCache::new(CacheConfig::memory_only()));
        assert_eq!(hits, 0, "w{workers}: cold run hit a cache");
        assert_eq!(cold, reference, "grid diverged cold at {workers} workers");

        // Warm-disk: a fresh process-like cache over the same disk tier
        // must serve every flow without simulating.
        let warm_cache = FlowCache::new(CacheConfig::with_disk(&disk_dir));
        let (warm, hits) = summarize(&build(workers), &warm_cache);
        assert_eq!(hits, n, "w{workers}: warm-disk replay re-simulated");
        assert_eq!(
            warm, reference,
            "grid diverged warm-disk at {workers} workers"
        );
    }
    let _ = std::fs::remove_dir_all(&disk_dir);
}

/// The `recovery` axis must reach the sender *through the campaign
/// engine*, not only through the direct runner: on the same seed, cached
/// slices of different variants must stay distinct.
#[test]
fn recovery_variants_stay_distinct_through_the_campaign_cache() {
    let cache = FlowCache::new(CacheConfig::memory_only());
    let run = |recovery| {
        let configs = vec![ScenarioConfig::builder()
            .motion(Motion::Stationary)
            .seed(2_400)
            .duration(SimDuration::from_secs(5))
            .recovery(recovery)
            .build()
            .expect("valid config")];
        let campaign = Campaign::builder()
            .configs(configs)
            .build()
            .expect("campaign builds");
        campaign
            .run_with_cache(&cache)
            .expect("campaign runs")
            .report
            .cache_hits
    };
    // Same seed, same path — only the recovery field differs. A hit on
    // any later run would mean the cache key ignored the axis and served
    // one variant from another's entry; a hit on the replay proves the
    // keys are stable, not merely distinct.
    for recovery in Recovery::ALL {
        assert_eq!(
            run(recovery),
            0,
            "{} hit another variant's entry",
            recovery.label()
        );
    }
    assert_eq!(run(Recovery::Frto), 1, "identical rerun missed the cache");
}
