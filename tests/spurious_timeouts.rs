//! The spurious-timeout chain, end to end: ACK burst loss → timeout with
//! no data loss → duplicate payload at the receiver → classified spurious
//! by the trace analyzer.

use hsm::simnet::loss::Outage;
use hsm::simnet::prelude::*;
use hsm::tcp::prelude::*;
use hsm::trace::prelude::*;

/// Builds a lossless flow whose uplink suffers one scripted blackout.
fn run_with_uplink_blackout(window_ms: (u64, u64)) -> (FlowTrace, SenderMetrics, ReceiverMetrics) {
    let mut eng = Engine::new(17);
    let placeholder = LinkId::from_raw(u32::MAX);
    let scfg = SenderConfig {
        max_segments: Some(1_500),
        ..Default::default()
    };
    let tx = eng.add_agent(Box::new(RenoSender::new(FlowId(0), placeholder, scfg)));
    let rx = eng.add_agent(Box::new(Receiver::new(
        FlowId(0),
        placeholder,
        ReceiverConfig::default(),
    )));
    let down = eng.add_link(
        LinkSpec::new(rx, "downlink")
            .bandwidth_bps(40_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    let up = eng.add_link(
        LinkSpec::new(tx, "uplink")
            .bandwidth_bps(15_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    eng.agent_mut::<RenoSender>(tx).unwrap().data_link = down;
    eng.agent_mut::<Receiver>(rx).unwrap().uplink = up;
    eng.link_mut(up).loss.set_outage(Some(Outage::new(
        SimTime::from_millis(window_ms.0),
        SimTime::from_millis(window_ms.1),
        1.0,
    )));
    let rec = VecRecorder::new();
    eng.add_recorder(rec.clone());
    eng.run_until(SimTime::from_secs(120));
    let trace = single_flow_trace(&rec.events(), 0, FlowMeta::default()).expect("trace");
    let sender = eng.agent_mut::<RenoSender>(tx).unwrap().metrics.clone();
    let receiver = eng.agent_mut::<Receiver>(rx).unwrap().metrics;
    (trace, sender, receiver)
}

#[test]
fn ack_blackout_produces_classified_spurious_timeouts() {
    let (trace, sender, receiver) = run_with_uplink_blackout((800, 2_200));

    // Ground truth: the sender timed out, the receiver saw duplicates.
    assert!(!sender.timeouts.is_empty(), "sender must time out");
    assert!(
        receiver.duplicate_payloads > 0,
        "receiver must see duplicate payloads"
    );

    // No data was lost (only ACKs died).
    let data_lost = trace.data().filter(|r| r.lost()).count();
    assert_eq!(data_lost, 0, "the blackout hits only the uplink");

    // The trace analyzer reaches the same verdict.
    let analysis = analyze_timeouts(&trace, &TimeoutConfig::default());
    assert!(analysis.total_timeouts() > 0);
    assert_eq!(
        analysis.spurious_timeouts(),
        analysis.total_timeouts(),
        "with zero data loss every timeout is spurious"
    );

    // The ACK-round analysis sees the burst loss.
    let rtt = estimate_rtt(&trace).expect("both directions present");
    let bursts = ack_burst_stats(&trace, SimDuration::from_secs_f64(rtt.as_secs_f64() / 2.0));
    assert!(
        bursts.burst_lost_rounds > 0,
        "burst-lost rounds must be observed"
    );
}

#[test]
fn flow_finishes_after_the_blackout() {
    let (trace, _, receiver) = run_with_uplink_blackout((800, 1_400));
    assert_eq!(
        receiver.next_expected, 1_500,
        "all segments eventually delivered"
    );
    // Duplicate transmissions exist in the trace (spurious retransmissions).
    assert!(trace.data().any(|r| r.retransmit));
}

#[test]
fn spurious_classification_agrees_with_receiver_duplicates() {
    let (trace, _, receiver) = run_with_uplink_blackout((800, 2_200));
    let analysis = analyze_timeouts(&trace, &TimeoutConfig::default());
    // Every spurious timeout produced at least one duplicate payload;
    // go-back-N can add more duplicates, so the receiver count dominates.
    assert!(
        receiver.duplicate_payloads >= u64::from(analysis.spurious_timeouts()),
        "receiver {} vs analyzer {}",
        receiver.duplicate_payloads,
        analysis.spurious_timeouts()
    );
}
