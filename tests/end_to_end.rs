//! End-to-end pipeline: scenario → simulation → capture → analysis →
//! parameter estimation → model evaluation, across both motions.

use hsm::model::prelude::*;
use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;

fn run(motion: Motion, seed: u64) -> ScenarioOutcome {
    run_scenario(&ScenarioConfig {
        provider: Provider::ChinaMobile,
        motion,
        seed,
        duration: SimDuration::from_secs(40),
        ..Default::default()
    })
}

#[test]
fn pipeline_produces_consistent_quantities() {
    let out = run(Motion::HighSpeed, 11);
    let s = out.summary();

    // Trace-level consistency.
    assert!(s.data_sent > 0);
    assert!(s.throughput_sps > 0.0);
    assert!(s.goodput_sps <= s.throughput_sps + 1e-9);
    assert!(s.p_d >= 0.0 && s.p_d < 0.2);
    assert!(s.rtt_s > 0.03 && s.rtt_s < 0.3, "rtt {}", s.rtt_s);
    assert!(s.spurious_timeouts <= s.timeouts);
    assert!(s.timeout_sequences <= s.timeouts);

    // Parameter estimation stays in the model domain.
    let params = estimate_params(s, &EstimateConfig::default());
    params
        .validate()
        .expect("estimated parameters must validate");

    // Both models evaluate to finite positive throughputs.
    let enhanced = EnhancedModel::as_published().throughput(&params).unwrap();
    let padhye = padhye_full(&params).unwrap();
    assert!(enhanced.is_finite() && enhanced > 0.0);
    assert!(padhye.is_finite() && padhye > 0.0);
    // The enhanced model adds impairments Padhye ignores, so it never
    // predicts more.
    assert!(
        enhanced <= padhye * 1.01,
        "enhanced {enhanced} vs padhye {padhye}"
    );
}

#[test]
fn high_speed_is_strictly_harsher_than_stationary() {
    let hs = run(Motion::HighSpeed, 21);
    let st = run(Motion::Stationary, 21);
    let (h, s) = (hs.summary(), st.summary());
    assert!(
        h.throughput_sps < s.throughput_sps,
        "hs {} st {}",
        h.throughput_sps,
        s.throughput_sps
    );
    assert!(h.timeouts >= s.timeouts);
    assert!(h.p_a >= s.p_a);
    assert!(hs.outcome.channel.is_some());
    assert!(st.outcome.channel.is_none());
}

#[test]
fn internal_ground_truth_matches_trace_inference() {
    let out = run(Motion::HighSpeed, 31);
    let truth = out.outcome.sender.timeouts.len() as i64;
    let inferred = i64::from(out.summary().timeouts);
    // The silence-threshold heuristic may miss or add a couple of events,
    // but must track the ground truth closely.
    assert!(
        (truth - inferred).abs() <= (truth / 3).max(3),
        "ground truth {truth} vs inferred {inferred}"
    );
    // Spurious timeouts imply duplicate payloads at the receiver.
    if out.summary().spurious_timeouts > 0 {
        assert!(out.outcome.receiver.duplicate_payloads > 0);
    }
}

#[test]
fn every_provider_runs_the_full_pipeline() {
    for (i, provider) in Provider::ALL.iter().enumerate() {
        let out = run_scenario(&ScenarioConfig {
            provider: *provider,
            seed: 40 + i as u64,
            duration: SimDuration::from_secs(20),
            ..Default::default()
        });
        assert_eq!(out.summary().provider, provider.name());
        assert!(
            out.summary().throughput_sps > 0.0,
            "{provider:?} produced no throughput"
        );
    }
}
