//! Model-vs-measurement integration: on a small synthetic dataset, both
//! models produce sane predictions and the enhanced model's extra
//! penalties point the right way.

// The deprecated generate_dataset* helpers stay covered until removal.
#![allow(deprecated)]

use hsm::model::prelude::*;
use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;

fn small_dataset() -> Vec<hsm::trace::summary::FlowSummary> {
    let cfg = DatasetConfig {
        scale: 0.03,
        flow_duration: SimDuration::from_secs(60),
        ..Default::default()
    };
    generate_dataset(&cfg)
        .into_iter()
        .map(|f| f.outcome.analysis.summary)
        .collect()
}

#[test]
fn both_models_evaluate_on_every_flow() {
    let summaries = small_dataset();
    assert!(summaries.len() >= 4);
    let (evals, report) = evaluate_dataset(&summaries, &EstimateConfig::default());
    assert_eq!(evals.len(), summaries.len());
    assert!(report.flows >= 4);
    for e in &evals {
        assert!(e.enhanced_sps.is_finite() && e.enhanced_sps > 0.0, "{e:?}");
        assert!(e.padhye_sps.is_finite() && e.padhye_sps > 0.0, "{e:?}");
        // Enhanced never predicts above Padhye: it only adds impairments.
        assert!(e.enhanced_sps <= e.padhye_sps * 1.01, "{e:?}");
        // Predictions land within an order of magnitude of measurements.
        assert!(
            e.enhanced_sps > e.measured_sps * 0.1 && e.enhanced_sps < e.measured_sps * 10.0,
            "{e:?}"
        );
    }
}

#[test]
fn estimator_ablation_is_well_behaved() {
    use hsm::model::estimate::{PdSource, QSource};
    let summaries = small_dataset();
    for pd in [
        PdSource::Lifetime,
        PdSource::LossEvents,
        PdSource::LossIndications,
    ] {
        for q in [
            QSource::MeasuredOrDefault,
            QSource::RecommendedDefault,
            QSource::SequenceLength,
            QSource::RecoveryDuration,
        ] {
            let cfg = EstimateConfig {
                pd_source: pd,
                q_source: q,
                ..Default::default()
            };
            let (evals, report) = evaluate_dataset(&summaries, &cfg);
            assert!(!evals.is_empty());
            assert!(report.mean_d_enhanced.is_finite());
            assert!(report.mean_d_padhye.is_finite());
            for e in &evals {
                e.params
                    .validate()
                    .expect("every estimator yields valid params");
            }
        }
    }
}

#[test]
fn deviation_metric_matches_paper_definition() {
    // Eq. 22 on a hand-made example.
    assert!((deviation(120.0, 100.0) - 0.2).abs() < 1e-12);
    assert!((deviation(80.0, 100.0) - 0.2).abs() < 1e-12);
}

#[test]
fn padhye_overestimates_on_the_harshest_flows() {
    // For the flows with the most timeout dead-time, Padhye (which never
    // prices recovery phases) must sit above the enhanced prediction by a
    // clear margin.
    let summaries = small_dataset();
    let (evals, _) = evaluate_dataset(&summaries, &EstimateConfig::default());
    let harsh: Vec<_> = evals
        .iter()
        .filter(|e| {
            summaries
                .iter()
                .find(|s| s.flow == e.flow)
                .is_some_and(|s| s.mean_recovery_s > 1.0 && s.timeout_sequences >= 2)
        })
        .collect();
    for e in harsh {
        assert!(
            e.padhye_sps > e.enhanced_sps,
            "flow {}: padhye {} vs enhanced {}",
            e.flow,
            e.padhye_sps,
            e.enhanced_sps
        );
    }
}
