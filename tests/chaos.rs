//! Integration tests for the chaos harness: the full `run_chaos` loop is
//! deterministic for any worker count, every injected fault class is
//! detected, shrinking preserves failures end to end, and the oracle's
//! Table III check agrees with the pinned golden fixture at its own
//! tolerance.

use hsm::chaos::{
    config_for_case, reproduce_case, run_chaos, run_drills, ChaosOptions, FuzzRanges, OracleConfig,
};
use hsm::model::prelude::round_distribution;

/// Short-flow ranges so harness-level tests stay fast: same shape as the
/// defaults, but operating-region cases are 2–3 s instead of 60–120 s.
fn quick_ranges() -> FuzzRanges {
    FuzzRanges {
        duration_s: (2, 3),
        region_duration_s: (2, 3),
        ..FuzzRanges::default()
    }
}

/// With 2–3 s flows the aggregate sample is not the calibrated slice, so
/// keep the aggregate oracle in its `skipped` state.
fn quick_oracle() -> OracleConfig {
    OracleConfig {
        min_region_flows: usize::MAX,
        ..OracleConfig::default()
    }
}

fn quick_options(seed: u64, cases: u64, workers: usize) -> ChaosOptions {
    ChaosOptions {
        seed,
        cases,
        workers,
        ranges: quick_ranges(),
        oracle: quick_oracle(),
        drills: false,
        dir: Some(std::env::temp_dir().join(format!(
            "hsm_chaos_it_{seed}_{workers}_{}",
            std::process::id()
        ))),
    }
}

#[test]
fn chaos_run_is_clean_and_worker_count_invariant() {
    let one = run_chaos(&quick_options(99, 24, 1));
    let four = run_chaos(&quick_options(99, 24, 4));
    assert!(one.violations.is_empty(), "{:?}", one.violations);
    assert!(one.ok(), "single-worker run must hold every oracle");
    assert!(four.ok());
    // Identical modulo wall-clock and the recorded worker count.
    assert_eq!(
        serde_json::to_string(&one.violations).unwrap(),
        serde_json::to_string(&four.violations).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&one.aggregate).unwrap(),
        serde_json::to_string(&four.aggregate).unwrap()
    );
    assert_eq!((one.seed, one.cases), (four.seed, four.cases));
}

#[test]
fn every_fault_drill_detects_its_fault() {
    let dir = std::env::temp_dir().join(format!("hsm_chaos_it_drills_{}", std::process::id()));
    let drills = run_drills(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    let expected = [
        "worker-death",
        "cache-corruption",
        "cache-forgery",
        "link-storm",
        "ack-burst-loss",
        "ack-delay-frto-undo",
        "scratch-poison",
        "spec-roundtrip",
    ];
    assert_eq!(drills.len(), expected.len());
    for name in expected {
        let drill = drills
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("missing drill {name}"));
        assert!(drill.passed, "drill {name} failed: {}", drill.detail);
    }
}

#[test]
fn violations_shrink_to_configs_that_still_fail() {
    // Sabotage the ordering bound (zero slack means `enhanced ≤ 0`), so
    // the harness reports real violations to exercise shrinking on.
    let mut opts = quick_options(5, 12, 2);
    opts.oracle.ordering_slack = 0.0;
    let report = run_chaos(&opts);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == "model-ordering"),
        "sabotaged oracle must produce ordering violations: {:?}",
        report.violations
    );
    for v in report
        .violations
        .iter()
        .filter(|v| v.check == "model-ordering")
    {
        // The shrunk config (when shrinking made progress) must reproduce
        // the same violation class under the same oracle.
        let minimal = v.shrunk.as_ref().unwrap_or(&v.config);
        let outcome = hsm::chaos::check_case(v.case, minimal, &opts.oracle);
        assert!(
            outcome.violations.iter().any(|cv| cv.check == v.check),
            "shrunk config lost the {} failure",
            v.check
        );
    }
}

#[test]
fn reproduce_case_expands_to_the_fuzzed_config() {
    let (config, outcome) = reproduce_case(42, 7);
    assert_eq!(config, config_for_case(&FuzzRanges::default(), 42, 7));
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
}

/// Satellite of the differential harness: the Table III fixture pinned in
/// `crates/core/tests/golden.rs` regenerated through the oracle's own
/// check — same `round_distribution` call, same 1e-12 tolerance the
/// oracle applies to every fuzzed flow's distribution mass.
#[test]
fn table_iii_golden_agrees_through_the_oracle_tolerance() {
    let tol = OracleConfig::default().table_tol;
    assert_eq!(tol, 1e-12, "oracle tolerance is the golden tolerance");

    // Paper's Table III point: P_a = 0.2, X_P = 3.
    let rows = round_distribution(0.2, 3.0);
    let golden = [(1u32, 0.2f64), (2, 0.16), (3, 0.128), (4, 0.512)];
    assert_eq!(rows.len(), golden.len());
    for (row, (rounds, p)) in rows.iter().zip(golden) {
        assert_eq!(row.rounds, rounds);
        assert!(
            (row.probability - p).abs() <= tol,
            "P(X={rounds}) = {} departs from golden {p}",
            row.probability
        );
    }
    let mass: f64 = rows.iter().map(|r| r.probability).sum();
    assert!((mass - 1.0).abs() <= tol, "mass {mass}");

    // And the oracle actually enforces that mass on live flows: a clean
    // case reports no table-iii-mass violation.
    let cfg = config_for_case(&quick_ranges(), 1, 0);
    let outcome = hsm::chaos::check_case(0, &cfg, &quick_oracle());
    assert!(
        !outcome
            .violations
            .iter()
            .any(|v| v.check == "table-iii-mass"),
        "{:?}",
        outcome.violations
    );
}
