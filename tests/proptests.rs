//! Cross-crate property tests on the model and analysis invariants.

use hsm::model::prelude::*;
use hsm::trace::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        0.02f64..0.3, // rtt_s
        0.2f64..2.0,  // t_rto_s
        1e-4f64..0.2, // p_d
        0.0f64..0.5,  // p_a_burst
        0.0f64..0.9,  // q
        prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)],
        4.0f64..512.0, // w_m
    )
        .prop_map(|(rtt_s, t_rto_s, p_d, p_a_burst, q, b, w_m)| ModelParams {
            rtt_s,
            t_rto_s,
            p_d,
            p_a_burst,
            q,
            b,
            w_m,
        })
}

proptest! {
    #[test]
    fn enhanced_model_total_on_valid_domain(params in arb_params()) {
        let bd = EnhancedModel::as_published().breakdown(&params).unwrap();
        prop_assert!(bd.throughput_sps.is_finite());
        prop_assert!(bd.throughput_sps >= 0.0);
        prop_assert!(bd.e_x > 0.0);
        prop_assert!((0.0..=1.0).contains(&bd.q_timeout));
        // Throughput can never exceed one window per RTT (generous slack
        // for the model's continuous approximations).
        prop_assert!(bd.throughput_sps <= params.w_m / params.rtt_s * 2.0);
    }

    #[test]
    fn rederived_variant_also_total(params in arb_params()) {
        let tp = EnhancedModel::rederived().throughput(&params).unwrap();
        prop_assert!(tp.is_finite() && tp >= 0.0);
    }

    #[test]
    fn enhanced_never_exceeds_padhye_at_paper_b(params in arb_params()) {
        // Padhye ignores P_a and q; the enhanced model only adds
        // impairments on top of the same CA-phase core. The as-published
        // variant's E[W] slip inverts the b-dependence away from b = 2
        // (see hsm-core::enhanced docs), so this property is stated at the
        // paper's own evaluation setting b = 2. Both models are round-based
        // approximations, so the comparison is confined to the regime they
        // were built for: loss events rare per round, non-degenerate
        // windows.
        let params = params.with_b(2.0).with_p_d(params.p_d.min(0.08)).with_w_m(params.w_m.max(8.0));
        let enhanced = EnhancedModel::as_published().throughput(&params).unwrap();
        let padhye = padhye_full(&params).unwrap();
        prop_assert!(enhanced <= padhye * 1.05, "enhanced {enhanced} padhye {padhye}");
    }

    #[test]
    fn rederived_enhanced_never_exceeds_padhye(params in arb_params()) {
        // …while the rederived variant satisfies it for every b (same
        // modelling-regime restriction as above).
        let params = params.with_p_d(params.p_d.min(0.08)).with_w_m(params.w_m.max(8.0));
        let enhanced = EnhancedModel::rederived().throughput(&params).unwrap();
        let padhye = padhye_full(&params).unwrap();
        prop_assert!(enhanced <= padhye * 1.05, "enhanced {enhanced} padhye {padhye}");
    }

    #[test]
    fn e_x_equals_distribution_mean(p_a in 0.001f64..0.99, xp in 1u32..200) {
        let dist = round_distribution(p_a, f64::from(xp));
        let mass: f64 = dist.iter().map(|r| r.probability).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "distribution mass {mass}");
        let mean: f64 = dist.iter().map(|r| f64::from(r.rounds) * r.probability).sum();
        let formula = e_x(p_a, f64::from(xp));
        prop_assert!((mean - formula).abs() < 1e-6, "{mean} vs {formula}");
    }

    #[test]
    fn q_enhanced_bounded_and_monotone(qp in 0.0f64..1.0, pa in 0.0f64..1.0, xp in 1.0f64..100.0) {
        let q = q_enhanced(qp, pa, xp);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!(q >= qp - 1e-12, "Q can only grow above Q_P");
        // More ACK burst loss, more timeouts.
        let q_more = q_enhanced(qp, (pa + 0.1).min(1.0), xp);
        prop_assert!(q_more >= q - 1e-12);
    }

    #[test]
    fn deviation_is_symmetric_around_the_measurement(model in 0.1f64..1e4, trace in 0.1f64..1e4) {
        let d = deviation(model, trace);
        prop_assert!(d >= 0.0);
        prop_assert!((deviation(model, trace) - (model - trace).abs() / trace).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 1e5;
            let v = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert_eq!(cdf.at(f64::MAX), 1.0);
    }

    #[test]
    fn pearson_bounded(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn p_a_from_ack_loss_in_unit_interval(p in 0.0f64..1.0, n in 0.1f64..100.0) {
        let pa = p_a_from_ack_loss(p, n);
        prop_assert!((0.0..=1.0).contains(&pa));
        // More ACKs per round can only reduce the burst probability.
        let pa_more = p_a_from_ack_loss(p, n + 1.0);
        prop_assert!(pa_more <= pa + 1e-12);
    }

    /// The event queue's determinism contract: events sharing a firing
    /// time dequeue in insertion order (FIFO), for ANY interleaving of
    /// schedules across timestamps and any pattern of cancellations.
    #[test]
    fn event_queue_fifo_for_equal_times(
        ops in prop::collection::vec((0u64..8, 0u64..2), 1..200)
    ) {
        use hsm::simnet::agent::AgentId;
        use hsm::simnet::event::{Event, EventKind, EventQueue};
        use hsm::simnet::time::SimTime;

        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (at, tag) surviving
        let mut cancelled = std::collections::HashSet::new();
        for (tag, &(at_ms, cancel_one)) in ops.iter().enumerate() {
            let tag = tag as u64;
            let cancel_one = cancel_one == 1;
            let id = q.schedule(Event {
                at: SimTime::from_millis(at_ms),
                dst: AgentId::from_raw(0),
                kind: EventKind::Timer { tag },
            });
            ids.push((id, at_ms, tag));
            if cancel_one && !ids.is_empty() {
                // Cancel a pseudo-random earlier (or current) event.
                let victim = ids[(tag as usize * 7 + 3) % ids.len()];
                if q.cancel(victim.0) {
                    cancelled.insert(victim.2);
                }
            }
        }
        for &(_, at_ms, tag) in &ids {
            if !cancelled.contains(&tag) {
                expected.push((at_ms, tag));
            }
        }
        // Survivors must dequeue sorted by time, FIFO within a time.
        expected.sort_by_key(|&(at, tag)| (at, tag));
        let mut popped = Vec::new();
        while let Some((_, ev)) = q.pop() {
            let EventKind::Timer { tag } = ev.kind else { unreachable!() };
            popped.push((ev.at.as_micros() / 1000, tag));
        }
        prop_assert_eq!(popped, expected);
    }
}

/// Configuration-layer properties: the builder accepts exactly the valid
/// field combinations, and the runtime's allocation-free streaming cache
/// key is indistinguishable from hashing the real serde encoding.
mod scenario_config_properties {
    use super::*;
    use hsm::prelude::Provider;
    use hsm::runtime::cache::{fnv1a, CacheKey, ENGINE_VERSION};
    use hsm::scenario::runner::{Motion, ScenarioConfig, ScenarioError};
    use hsm::simnet::time::SimDuration;

    fn arb_provider() -> impl Strategy<Value = Provider> {
        prop_oneof![
            Just(Provider::ChinaMobile),
            Just(Provider::ChinaUnicom),
            Just(Provider::ChinaTelecom),
        ]
    }

    fn arb_motion() -> impl Strategy<Value = Motion> {
        prop_oneof![Just(Motion::HighSpeed), Just(Motion::Stationary)]
    }

    proptest! {
        /// Sweeps every field — including the invalid zeros — and checks
        /// the builder's verdict against the documented validation order:
        /// window first, then delayed ACK, then duration. A config is
        /// accepted iff no field is invalid, and the accepted value
        /// echoes every input unchanged.
        #[test]
        fn builder_accepts_exactly_the_valid_combinations(
            provider in arb_provider(),
            motion in arb_motion(),
            seed in 0u64..u64::MAX,
            duration_us in 0u64..10_000_000_000,
            w_m in 0u32..128,
            b in 0u32..6,
            flow in 0u32..2000,
        ) {
            let built = ScenarioConfig::builder()
                .provider(provider)
                .motion(motion)
                .seed(seed)
                .duration(SimDuration::from_micros(duration_us))
                .w_m(w_m)
                .b(b)
                .flow(flow)
                .build();
            if w_m == 0 {
                prop_assert_eq!(built, Err(ScenarioError::ZeroWindow));
            } else if b == 0 {
                prop_assert_eq!(built, Err(ScenarioError::ZeroDelayedAck));
            } else if duration_us == 0 {
                prop_assert_eq!(built, Err(ScenarioError::ZeroDuration));
            } else {
                let cfg = built.expect("all fields valid");
                prop_assert!(cfg.validate().is_ok());
                prop_assert_eq!(cfg.provider, provider);
                prop_assert_eq!(cfg.motion, motion);
                prop_assert_eq!(cfg.seed, seed);
                prop_assert_eq!(cfg.duration, SimDuration::from_micros(duration_us));
                prop_assert_eq!(cfg.w_m, w_m);
                prop_assert_eq!(cfg.b, b);
                prop_assert_eq!(cfg.flow, flow);
            }
        }

        /// Every accepted config keys identically through the streaming
        /// FNV-1a path and the allocate-then-hash serde path, and the
        /// serde encoding itself round-trips losslessly — so disk tiers
        /// written via either route stay mutually valid.
        #[test]
        fn streaming_cache_key_matches_the_serde_path(
            provider in arb_provider(),
            motion in arb_motion(),
            seed in 0u64..u64::MAX,
            duration_us in 1u64..10_000_000_000,
            w_m in 1u32..128,
            b in 1u32..6,
            flow in 0u32..2000,
        ) {
            let cfg = ScenarioConfig::builder()
                .provider(provider)
                .motion(motion)
                .seed(seed)
                .duration(SimDuration::from_micros(duration_us))
                .w_m(w_m)
                .b(b)
                .flow(flow)
                .build()
                .expect("valid by construction");

            let json = serde_json::to_string(&cfg).expect("config serializes");
            let mut hashed = json.clone().into_bytes();
            hashed.extend_from_slice(ENGINE_VERSION.as_bytes());
            prop_assert_eq!(CacheKey::of(&cfg), CacheKey(fnv1a(&hashed)));

            let back: ScenarioConfig =
                serde_json::from_str(&json).expect("config deserializes");
            prop_assert_eq!(&back, &cfg);
            prop_assert_eq!(CacheKey::of(&back), CacheKey::of(&cfg));
        }
    }
}

/// Disk-codec properties: flow summaries — arbitrary field values and
/// real chaos-fuzzer outputs alike — survive the binary round trip
/// bit-for-bit and agree with the legacy JSON encoding, while any
/// corruption of the encoded bytes is rejected rather than decoded.
mod codec_properties {
    use super::*;
    use hsm::runtime::codec::{decode_entry, encode_entry, is_binary_entry};
    use hsm::trace::summary::FlowSummary;

    /// Asserts two summaries are the same down to the bit pattern of
    /// every float (`PartialEq` would conflate `-0.0` with `0.0` and
    /// reject equal `NaN`s).
    fn assert_bit_identical(a: &FlowSummary, b: &FlowSummary) {
        assert_eq!(a.flow, b.flow);
        assert_eq!(a.provider, b.provider);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.data_sent, b.data_sent);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.spurious_timeouts, b.spurious_timeouts);
        assert_eq!(a.timeout_sequences, b.timeout_sequences);
        assert_eq!(a.loss_indications, b.loss_indications);
        assert_eq!(a.fast_retransmissions, b.fast_retransmissions);
        assert_eq!(a.w_m, b.w_m);
        assert_eq!(a.b, b.b);
        for (name, x, y) in [
            ("rtt_s", a.rtt_s, b.rtt_s),
            ("p_d", a.p_d, b.p_d),
            ("p_a", a.p_a, b.p_a),
            ("p_a_burst", a.p_a_burst, b.p_a_burst),
            ("acks_per_round", a.acks_per_round, b.acks_per_round),
            ("q_hat", a.q_hat, b.q_hat),
            ("mean_recovery_s", a.mean_recovery_s, b.mean_recovery_s),
            ("t_rto_s", a.t_rto_s, b.t_rto_s),
            ("throughput_sps", a.throughput_sps, b.throughput_sps),
            ("goodput_sps", a.goodput_sps, b.goodput_sps),
            ("duration_s", a.duration_s, b.duration_s),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: {x} vs {y}");
        }
    }

    fn arb_rate() -> impl Strategy<Value = f64> {
        prop_oneof![
            Just(0.0f64),
            Just(1.0),
            Just(f64::MIN_POSITIVE),
            0.0f64..1.0
        ]
    }

    fn arb_magnitude() -> impl Strategy<Value = f64> {
        prop_oneof![Just(0.0f64), Just(-0.0), Just(1e300), 0.0f64..1e9]
    }

    fn arb_label() -> impl Strategy<Value = String> {
        prop_oneof![
            Just(String::new()),
            Just("China Mobile".to_owned()),
            Just("高铁 🚄 300 km/h".to_owned()),
            Just("x".repeat(300)),
        ]
    }

    fn arb_summary() -> impl Strategy<Value = FlowSummary> {
        (
            (0u32..u32::MAX, arb_label(), arb_label(), 0u64..u64::MAX),
            (
                arb_rate(),
                arb_rate(),
                arb_rate(),
                arb_rate(),
                arb_magnitude(),
            ),
            (
                0u32..u32::MAX,
                0u32..u32::MAX,
                0u32..u32::MAX,
                0u32..u32::MAX,
                0u32..u32::MAX,
            ),
            (
                arb_magnitude(),
                arb_magnitude(),
                arb_magnitude(),
                arb_magnitude(),
                arb_magnitude(),
            ),
            (1u32..u32::MAX, 1u32..8),
        )
            .prop_map(
                |(
                    (flow, provider, scenario, data_sent),
                    (p_d, p_a, p_a_burst, q_hat, acks_per_round),
                    (
                        timeouts,
                        spurious_timeouts,
                        timeout_sequences,
                        loss_indications,
                        fast_retransmissions,
                    ),
                    (rtt_s, mean_recovery_s, t_rto_s, throughput_sps, duration_s),
                    (w_m, b),
                )| FlowSummary {
                    flow,
                    provider,
                    scenario,
                    rtt_s,
                    p_d,
                    data_sent,
                    p_a,
                    p_a_burst,
                    acks_per_round,
                    q_hat,
                    timeouts,
                    spurious_timeouts,
                    timeout_sequences,
                    mean_recovery_s,
                    t_rto_s,
                    loss_indications,
                    fast_retransmissions,
                    w_m,
                    b,
                    throughput_sps,
                    goodput_sps: throughput_sps * 0.97,
                    duration_s,
                },
            )
    }

    proptest! {
        /// Binary round trip is lossless to the bit, and the decoded
        /// summary's JSON encoding — what a legacy tier would have stored
        /// — matches the original's byte-for-byte, so the two on-disk
        /// formats describe exactly the same value space.
        #[test]
        fn binary_and_json_encodings_round_trip_identically(
            summary in arb_summary(),
            key in 0u64..u64::MAX,
        ) {
            let bytes = encode_entry(key, &summary);
            prop_assert!(is_binary_entry(&bytes));
            let (back_key, back) = decode_entry(&bytes).expect("fresh entry decodes");
            prop_assert_eq!(back_key, key);
            assert_bit_identical(&summary, &back);
            prop_assert_eq!(
                serde_json::to_string(&back).expect("summary serializes"),
                serde_json::to_string(&summary).expect("summary serializes")
            );
        }

        /// Any single bit flip or truncation of an encoded entry is
        /// rejected outright — never decoded into a different summary.
        #[test]
        fn corrupted_entries_never_decode(
            summary in arb_summary(),
            key in 0u64..u64::MAX,
            bit in 0u64..u64::MAX,
            cut in 0u64..u64::MAX,
        ) {
            let bytes = encode_entry(key, &summary);
            let mut flipped = bytes.clone();
            let bit = (bit % (bytes.len() as u64 * 8)) as usize;
            flipped[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(decode_entry(&flipped).is_none(), "flipped bit {bit} decoded");
            let cut = (cut % (bytes.len() as u64)) as usize;
            prop_assert!(decode_entry(&bytes[..cut]).is_none(), "truncation at {cut} decoded");
        }
    }

    /// The same round trip over *real* fuzzer-generated flows: expand a
    /// spread of chaos-fuzzer cases, simulate each, and push every
    /// resulting summary through the binary codec.
    #[test]
    fn chaos_fuzzer_summaries_round_trip_through_the_codec() {
        use hsm::chaos::{config_for_case, FuzzRanges};
        use hsm::scenario::runner::try_run_scenario;

        let ranges = FuzzRanges {
            duration_s: (2, 3),
            region_duration_s: (2, 3),
            ..FuzzRanges::default()
        };
        for case in 0..32 {
            let config = config_for_case(&ranges, 0xC0DEC, case);
            let out = try_run_scenario(&config).expect("fuzzed config runs");
            let summary = out.summary();
            let key = hsm::runtime::cache::CacheKey::of(&config);
            let bytes = encode_entry(key.0, summary);
            let (back_key, back) = decode_entry(&bytes).expect("entry decodes");
            assert_eq!(back_key, key.0, "case {case}");
            assert_bit_identical(summary, &back);
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(summary).unwrap(),
                "case {case}"
            );
        }
    }
}

/// Explicit replays of the minimal counterexamples recorded in
/// `proptests.proptest-regressions`. The regression file makes proptest
/// itself re-run them, but these hard-coded tests keep the cases alive
/// even if that file is lost or the proptest harness changes, and they
/// document *which* property each case once broke.
mod regression_replays {
    use super::*;

    /// Shrunk counterexample `a440b70a`: `b = 4` with lossless recovery
    /// (`q = 0`, `P_a = 0`). Two historical failure modes meet here: the
    /// as-published `E[W] = (b/2)E[X] − 2` slip inverts the b-dependence
    /// away from `b = 2` (why `enhanced_never_exceeds_padhye_at_paper_b`
    /// pins `b = 2`), and an unfloored `q < p_d` priced timeout recovery
    /// cheaper than Padhye's.
    const REGRESSION_B4: ModelParams = ModelParams {
        rtt_s: 0.2901429431962392,
        t_rto_s: 0.2,
        p_d: 0.016783206476965122,
        p_a_burst: 0.0,
        q: 0.0,
        b: 4.0,
        w_m: 152.6617023863769,
    };

    /// Shrunk counterexample `cfeed97d`: heavy loss (`p_d ≈ 0.19`) with a
    /// tiny advertised window (`W_m = 4`) — the degenerate-window corner
    /// outside the round-based models' regime, which the Padhye-bound
    /// properties now exclude via `w_m.max(8.0)` / `p_d.min(0.08)`.
    const REGRESSION_TINY_WINDOW: ModelParams = ModelParams {
        rtt_s: 0.02,
        t_rto_s: 0.2,
        p_d: 0.1887137656191421,
        p_a_burst: 0.0,
        q: 0.0,
        b: 1.0,
        w_m: 4.0,
    };

    fn assert_total_and_bounded(params: &ModelParams) {
        for model in [EnhancedModel::as_published(), EnhancedModel::rederived()] {
            let bd = model.breakdown(params).unwrap();
            assert!(bd.throughput_sps.is_finite() && bd.throughput_sps >= 0.0);
            assert!(bd.e_x > 0.0);
            assert!((0.0..=1.0).contains(&bd.q_timeout));
            assert!(bd.throughput_sps <= params.w_m / params.rtt_s * 2.0);
        }
    }

    #[test]
    fn replay_b4_case_is_total_and_bounded() {
        assert_total_and_bounded(&REGRESSION_B4);
    }

    #[test]
    fn replay_b4_case_respects_padhye_bound_after_q_floor() {
        // The q-floor fix (timeout_sequence_terms lifts q to p_d) is what
        // keeps this case below Padhye today; replay it exactly as the
        // property would evaluate it.
        let params = REGRESSION_B4
            .with_b(2.0)
            .with_p_d(REGRESSION_B4.p_d.min(0.08))
            .with_w_m(REGRESSION_B4.w_m.max(8.0));
        let enhanced = EnhancedModel::as_published().throughput(&params).unwrap();
        let padhye = padhye_full(&params).unwrap();
        assert!(
            enhanced <= padhye * 1.05,
            "enhanced {enhanced} padhye {padhye}"
        );
        let rederived = EnhancedModel::rederived().throughput(&params).unwrap();
        assert!(
            rederived <= padhye * 1.05,
            "rederived {rederived} padhye {padhye}"
        );
    }

    #[test]
    fn replay_tiny_window_case_is_total_and_bounded() {
        assert_total_and_bounded(&REGRESSION_TINY_WINDOW);
    }

    #[test]
    fn replay_tiny_window_case_respects_padhye_bound_in_regime() {
        let params = REGRESSION_TINY_WINDOW
            .with_p_d(REGRESSION_TINY_WINDOW.p_d.min(0.08))
            .with_w_m(REGRESSION_TINY_WINDOW.w_m.max(8.0));
        let enhanced = EnhancedModel::rederived().throughput(&params).unwrap();
        let padhye = padhye_full(&params).unwrap();
        assert!(
            enhanced <= padhye * 1.05,
            "enhanced {enhanced} padhye {padhye}"
        );
    }
}
