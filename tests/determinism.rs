//! Reproducibility: identical seeds reproduce identical traces bit for
//! bit, across the whole stack, including parallel dataset generation;
//! trace serialization round-trips.

// The deprecated generate_dataset* helpers stay covered until removal.
#![allow(deprecated)]

use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;
use hsm::trace::prelude::*;

fn one_flow(seed: u64) -> FlowTrace {
    run_scenario(&ScenarioConfig {
        seed,
        duration: SimDuration::from_secs(25),
        ..Default::default()
    })
    .outcome
    .trace
}

#[test]
fn same_seed_same_trace() {
    let a = one_flow(123);
    let b = one_flow(123);
    assert_eq!(a, b, "identical seeds must reproduce identical traces");
    assert!(!a.records.is_empty());
}

#[test]
fn different_seeds_differ() {
    let a = one_flow(123);
    let b = one_flow(124);
    assert_ne!(a, b);
}

#[test]
fn dataset_generation_is_deterministic_despite_parallelism() {
    let cfg = DatasetConfig {
        scale: 0.02,
        flow_duration: SimDuration::from_secs(10),
        ..Default::default()
    };
    let a = generate_dataset(&cfg);
    let b = generate_dataset(&cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.campaign, y.campaign);
        assert_eq!(x.outcome.outcome.trace, y.outcome.outcome.trace);
    }
}

#[test]
fn flow_summaries_bit_identical_across_worker_counts() {
    // The determinism contract of the parallel dataset generator: the
    // worker count is a throughput knob, never a results knob. Fixed seed
    // + fixed config must produce bit-identical `FlowSummary` values for
    // 1, 2 and 8 workers — verified both structurally (PartialEq) and on
    // the serialized bytes, so even a sign-of-zero or NaN-payload
    // difference would fail.
    let cfg = DatasetConfig {
        scale: 0.02,
        flow_duration: SimDuration::from_secs(10),
        ..Default::default()
    };
    let summarize = |workers: usize| -> Vec<String> {
        generate_dataset_with_workers(&cfg, workers)
            .iter()
            .map(|f| {
                let analysis = analyze_flow(&f.outcome.outcome.trace, &TimeoutConfig::default());
                serde_json::to_string(&analysis.summary).expect("summary serializes")
            })
            .collect()
    };
    let one = summarize(1);
    let two = summarize(2);
    let eight = summarize(8);
    assert!(!one.is_empty());
    assert_eq!(one, two, "2 workers diverged from serial");
    assert_eq!(one, eight, "8 workers diverged from serial");
}

#[test]
fn trace_json_round_trip_preserves_analysis() {
    let trace = one_flow(55);
    let json = trace.to_json().expect("serialize");
    let back = FlowTrace::from_json(&json).expect("deserialize");
    assert_eq!(trace, back);
    let a1 = analyze_flow(&trace, &TimeoutConfig::default());
    let a2 = analyze_flow(&back, &TimeoutConfig::default());
    assert_eq!(a1.summary, a2.summary);
}

#[test]
fn analysis_is_a_pure_function_of_the_trace() {
    let trace = one_flow(77);
    let a1 = analyze_flow(&trace, &TimeoutConfig::default());
    let a2 = analyze_flow(&trace, &TimeoutConfig::default());
    assert_eq!(a1.summary, a2.summary);
    assert_eq!(a1.timeouts, a2.timeouts);
}
