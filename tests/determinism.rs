//! Reproducibility: identical seeds reproduce identical traces bit for
//! bit, across the whole stack, including parallel dataset generation;
//! trace serialization round-trips.

use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;
use hsm::trace::prelude::*;

fn one_flow(seed: u64) -> FlowTrace {
    run_scenario(&ScenarioConfig {
        seed,
        duration: SimDuration::from_secs(25),
        ..Default::default()
    })
    .outcome
    .trace
}

#[test]
fn same_seed_same_trace() {
    let a = one_flow(123);
    let b = one_flow(123);
    assert_eq!(a, b, "identical seeds must reproduce identical traces");
    assert!(!a.records.is_empty());
}

#[test]
fn different_seeds_differ() {
    let a = one_flow(123);
    let b = one_flow(124);
    assert_ne!(a, b);
}

#[test]
fn dataset_generation_is_deterministic_despite_parallelism() {
    let cfg = DatasetConfig {
        scale: 0.02,
        flow_duration: SimDuration::from_secs(10),
        ..Default::default()
    };
    let a = generate_dataset(&cfg);
    let b = generate_dataset(&cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.campaign, y.campaign);
        assert_eq!(x.outcome.outcome.trace, y.outcome.outcome.trace);
    }
}

#[test]
fn trace_json_round_trip_preserves_analysis() {
    let trace = one_flow(55);
    let json = trace.to_json().expect("serialize");
    let back = FlowTrace::from_json(&json).expect("deserialize");
    assert_eq!(trace, back);
    let a1 = analyze_flow(&trace, &TimeoutConfig::default());
    let a2 = analyze_flow(&back, &TimeoutConfig::default());
    assert_eq!(a1.summary, a2.summary);
}

#[test]
fn analysis_is_a_pure_function_of_the_trace() {
    let trace = one_flow(77);
    let a1 = analyze_flow(&trace, &TimeoutConfig::default());
    let a2 = analyze_flow(&trace, &TimeoutConfig::default());
    assert_eq!(a1.summary, a2.summary);
    assert_eq!(a1.timeouts, a2.timeouts);
}
