//! MPTCP integration (§V-B): duplex aggregation and backup-path redundant
//! retransmission against the calibrated HSR channels.

use hsm::scenario::prelude::*;
use hsm::simnet::time::SimDuration;
use hsm::tcp::prelude::*;
use hsm::trace::prelude::*;

fn scenario(provider: Provider, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        provider,
        seed,
        duration: SimDuration::from_secs(45),
        ..Default::default()
    }
}

#[test]
fn duplex_aggregates_two_subflows() {
    let sc = scenario(Provider::ChinaTelecom, 8);
    let path = sc.path();
    let out = run_mptcp_duplex(
        sc.seed,
        [&path, &path],
        sc.mobility().as_ref(),
        &sc.connection(),
    );
    assert_eq!(out.subflows.len(), 2);
    assert_eq!(out.senders.len(), 2);
    assert_eq!(out.receivers.len(), 2);
    assert_eq!(out.channels.len(), 2, "one channel process per carrier");
    assert!(out.aggregate_throughput_sps() > 0.0);
    for t in &out.subflows {
        assert!(t.data().count() > 0, "both subflows must carry data");
    }
}

#[test]
fn duplex_beats_single_flow_on_the_worst_provider() {
    // Average over a few seeds: individual rides are noisy.
    let mut single_sum = 0.0;
    let mut duplex_sum = 0.0;
    for seed in 0..3 {
        let sc = scenario(Provider::ChinaTelecom, 100 + seed);
        let single = run_scenario(&sc);
        single_sum += single.summary().throughput_sps;
        let path = sc.path();
        let duplex = run_mptcp_duplex(
            sc.seed,
            [&path, &path],
            sc.mobility().as_ref(),
            &sc.connection(),
        );
        duplex_sum += duplex.aggregate_throughput_sps();
    }
    assert!(
        duplex_sum > single_sum * 1.3,
        "MPTCP {duplex_sum} must clearly beat TCP {single_sum} on China Telecom"
    );
}

#[test]
fn backup_path_never_hurts_delivery() {
    let sc = scenario(Provider::ChinaUnicom, 9);
    let conn = sc.connection();
    let plain = run_connection(sc.seed, &sc.path(), sc.mobility().as_ref(), &conn);
    let with_backup = run_with_backup_path(
        sc.seed,
        &sc.path(),
        &PathSpec::default(),
        sc.mobility().as_ref(),
        &conn,
    );
    assert!(
        with_backup.receiver.next_expected + 50 >= plain.receiver.next_expected,
        "backup {} vs plain {}",
        with_backup.receiver.next_expected,
        plain.receiver.next_expected
    );
    // Redundant copies are visible in the send count.
    assert!(
        with_backup.sender.segments_sent
            >= plain
                .sender
                .segments_sent
                .min(with_backup.sender.max_seq_sent)
    );
}

#[test]
fn backup_path_reduces_recovery_loss_rate_on_average() {
    let mut plain_q = 0.0;
    let mut backup_q = 0.0;
    let mut n = 0;
    for seed in 0..4 {
        let sc = scenario(Provider::ChinaTelecom, 200 + seed);
        let conn = sc.connection();
        let plain = run_connection(sc.seed, &sc.path(), sc.mobility().as_ref(), &conn);
        let backup = run_with_backup_path(
            sc.seed,
            &sc.path(),
            &PathSpec::default(),
            sc.mobility().as_ref(),
            &conn,
        );
        let pa = analyze_flow(&plain.trace, &TimeoutConfig::default());
        let ba = analyze_flow(&backup.trace, &TimeoutConfig::default());
        if pa.summary.timeout_sequences > 0 {
            plain_q += pa.summary.mean_recovery_s;
            backup_q += ba.summary.mean_recovery_s;
            n += 1;
        }
    }
    assert!(n > 0, "expected timeouts on China Telecom");
    assert!(
        backup_q <= plain_q,
        "mean recovery with backup {backup_q} must not exceed plain {plain_q}"
    );
}
