#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): formatting, release build, full test
# suite, strict lints, docs, and the simnet throughput gate.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo build --release
cargo test -q --workspace
# Pinned-seed chaos smoke: the fault-injection harness and differential
# oracle must hold on every push (nightly CI runs the big randomized
# sweep; see .github/workflows/ci.yml).
./target/release/repro chaos --seed 42 --cases 200
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
./tools/bench_gate.sh
