#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): formatting, release build, full test
# suite, strict lints, docs, and the simnet throughput gate.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
# --workspace so the release `repro` binary the later steps run is built
# (the bare root build only covers the facade crate).
cargo build --release --workspace
cargo test -q --workspace
# Pinned-seed chaos smoke: the fault-injection harness and differential
# oracle must hold on every push (nightly CI runs the big randomized
# sweep; see .github/workflows/ci.yml).
./target/release/repro chaos --seed 42 --cases 200
# Congestion-control study smoke: every zoo member must campaign cleanly
# and produce a non-empty model-deviation row in CC_STUDY.json.
./target/release/repro cc-study --smoke
for cc in Reno Veno Cubic Bbr Compound; do
    grep -q "\"label\":\"$cc\"" CC_STUDY.json \
        || { echo "cc-study: no deviation row for $cc" >&2; exit 1; }
done
# Spec-driven campaign smoke: the committed smoke spec, run as one
# process and as two OS-process shards, must merge to byte-identical
# reports (the shard/merge path is a results-identity, not a results
# knob).
rm -rf target/spec-smoke
./target/release/repro run --spec examples/specs/smoke.toml \
    --out target/spec-smoke/p1 --shards 1
./target/release/repro run --spec examples/specs/smoke.toml \
    --out target/spec-smoke/p2 --shards 2
cmp target/spec-smoke/p1/merged.json target/spec-smoke/p2/merged.json \
    || { echo "spec smoke: 2-shard merge not byte-identical to 1-process" >&2; exit 1; }
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
./tools/bench_gate.sh
