#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md), split into the two stages the CI
# workflow runs (and times) separately:
#
#   ./ci.sh build-test   formatting, release build, full test suite,
#                        chaos/cc-study/spec smokes, strict lints, docs
#   ./ci.sh bench        the simnet + campaign bench gates
#   ./ci.sh              both stages in order (the full tier-1 gate)
#
# Each stage prints its own wall-clock so per-stage timing lands in the
# CI log even when both run in one invocation.
set -euo pipefail
cd "$(dirname "$0")"

stage_build_test() {
    cargo fmt --all -- --check
    # --workspace so the release `repro` binary the later steps run is built
    # (the bare root build only covers the facade crate).
    cargo build --release --workspace
    cargo test -q --workspace
    # Wheel-vs-heap differential: the timing wheel must pop the exact
    # `(time, seq)` stream the retired binary-heap oracle pops, over
    # randomized schedule/cancel/pop interleavings. Runs inside the
    # workspace suite too, but an explicit invocation keeps the contract
    # visible in the CI log (and keeps running it even if the workspace
    # test set is ever filtered).
    cargo test -q --test queue_differential
    # Pinned-seed chaos smoke: the fault-injection harness and differential
    # oracle must hold on every push (nightly CI runs the big randomized
    # sweep; see .github/workflows/ci.yml).
    ./target/release/repro chaos --seed 42 --cases 200
    # The report the smoke just wrote must match the pinned seed-42 report
    # byte-for-byte once the wall_s timing field is stripped: scheduler and
    # engine reworks must not move a single simulated byte.
    diff <(sed 's/,"wall_s":[^}]*//' CHAOS_report.json) \
         <(sed 's/,"wall_s":[^}]*//' tests/fixtures/CHAOS_seed42_200.json) \
        || { echo "chaos smoke: CHAOS_report.json diverged from the pinned seed-42 report" >&2; exit 1; }
    # Congestion-control study smoke: every zoo member must campaign cleanly
    # and produce a non-empty model-deviation row in CC_STUDY.json.
    ./target/release/repro cc-study --smoke
    for cc in Reno Veno Cubic Bbr Compound; do
        grep -q "\"label\":\"$cc\"" CC_STUDY.json \
            || { echo "cc-study: no deviation row for $cc" >&2; exit 1; }
    done
    # Loss-recovery study smoke: every countermeasure must produce a
    # campaign row, a chaos-storm row, and a measured-vs-modeled fit per
    # provider (the command exits non-zero when any slice is empty or the
    # storm never drove the baseline into timeouts).
    ./target/release/repro recovery-study --smoke
    for r in None RedundantRto Frto AckRobust; do
        grep -q "\"label\":\"$r\"" RECOVERY_report.json \
            || { echo "recovery-study: no row for $r" >&2; exit 1; }
    done
    # Spec-driven campaign smoke: the committed smoke spec, run as one
    # process and as two OS-process shards, must merge to byte-identical
    # reports (the shard/merge path is a results-identity, not a results
    # knob).
    rm -rf target/spec-smoke
    ./target/release/repro run --spec examples/specs/smoke.toml \
        --out target/spec-smoke/p1 --shards 1
    ./target/release/repro run --spec examples/specs/smoke.toml \
        --out target/spec-smoke/p2 --shards 2
    cmp target/spec-smoke/p1/merged.json target/spec-smoke/p2/merged.json \
        || { echo "spec smoke: 2-shard merge not byte-identical to 1-process" >&2; exit 1; }
    cargo clippy --workspace --all-targets -- -D warnings
    cargo doc --no-deps --workspace
}

stage_bench() {
    # The gate prints a SKIPPED marker when the host cannot enforce a
    # criterion (e.g. the 4-worker speedup gate on a <4-core runner).
    # Surface that in the stage summary so a green bench stage on a small
    # host is never mistaken for "all gates enforced".
    local log
    log="$(mktemp "${TMPDIR:-/tmp}/bench_stage.XXXXXX")"
    ./tools/bench_gate.sh | tee "$log"
    if grep -q "SKIPPED" "$log"; then
        echo "ci: bench stage PASSED WITH SKIPPED GATES (see markers above)"
    fi
    rm -f "$log"
}

run_timed() {
    local name="$1"
    shift
    local t0=$SECONDS
    "$@"
    echo "ci: stage '$name' took $((SECONDS - t0))s"
}

case "${1:-all}" in
    build-test)
        run_timed build-test stage_build_test
        ;;
    bench)
        run_timed bench stage_bench
        ;;
    all)
        run_timed build-test stage_build_test
        run_timed bench stage_bench
        ;;
    *)
        echo "usage: ./ci.sh [build-test|bench]" >&2
        exit 2
        ;;
esac
