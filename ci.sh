#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): formatting, release build, full test
# suite, strict lints, docs, and the simnet throughput gate.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
./tools/bench_gate.sh
