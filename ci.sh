#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): release build, full test suite, strict lints.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
