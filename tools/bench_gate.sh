#!/usr/bin/env bash
# Bench gates: compares a fresh `repro bench` run against the committed
# baselines and fails on
#   * a >20% simnet events/sec regression (BENCH_simnet.json),
#   * a >20% max-worker cold campaign events/sec regression
#     (BENCH_campaign.json),
#   * a 4-worker cold campaign speedup below 2x over 1 worker — enforced
#     only on hosts with >= 4 cores, where parallel speedup is physical, or
#   * a warm-disk replay (every flow decoded from the binary disk tier)
#     slower than the baseline wall-clock by more than the warm tolerance.
#     Warm replays are millisecond-scale, so their relative noise is much
#     larger than a cold campaign's — hence the separate, wider knob.
#
# Usage: tools/bench_gate.sh
#   (expects `cargo build --release` to have produced target/release/repro;
#   builds it if missing)
#
# Environment:
#   BENCH_GATE_TOLERANCE       fractional regression allowed (default 0.20)
#   BENCH_GATE_MIN_SPEEDUP     minimum 4-worker cold speedup (default 2.0)
#   BENCH_GATE_WARM_TOLERANCE  fractional warm-disk wall-clock slowdown
#                              allowed (default 1.0, i.e. up to 2x baseline)
#   BENCH_GATE_SKIP=1          skip the gates entirely (e.g. debug-only machines)
#
# Re-baselining: the committed baselines are machine-relative. After an
# intentional perf change (or on new hardware), regenerate and commit them:
#
#   cargo build --release && (cd target && ../target/release/repro bench)
#   cp target/BENCH_simnet.json BENCH_simnet.json
#   cp target/BENCH_campaign.json BENCH_campaign.json   # then commit
#
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${BENCH_GATE_SKIP:-0}" == "1" ]]; then
    echo "bench gate: skipped (BENCH_GATE_SKIP=1)"
    exit 0
fi

BASELINE=BENCH_simnet.json
CAMPAIGN_BASELINE=BENCH_campaign.json
TOLERANCE="${BENCH_GATE_TOLERANCE:-0.20}"
MIN_SPEEDUP="${BENCH_GATE_MIN_SPEEDUP:-2.0}"
WARM_TOLERANCE="${BENCH_GATE_WARM_TOLERANCE:-1.0}"

for f in "$BASELINE" "$CAMPAIGN_BASELINE"; do
    if [[ ! -f "$f" ]]; then
        echo "bench gate: no committed $f baseline — failing."
        echo "Generate one with: target/release/repro bench && cp $f <repo root>"
        exit 1
    fi
done

if [[ ! -x target/release/repro ]]; then
    cargo build --release -p hsm-bench
fi

# repro writes BENCH_*.json into its working directory; run from a scratch
# dir so the committed baseline is never clobbered.
SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/bench_gate.XXXXXX")"
trap 'rm -rf "$SCRATCH"' EXIT
REPRO="$(pwd)/target/release/repro"
(cd "$SCRATCH" && "$REPRO" bench >/dev/null)

extract() {
    # The bench files are single-line flat JSON; no jq dependency needed.
    # head -1 keeps the first (top-level) occurrence of the field.
    grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

baseline_eps="$(extract "$BASELINE" events_per_sec)"
fresh_eps="$(extract "$SCRATCH/BENCH_simnet.json" events_per_sec)"

if [[ -z "$baseline_eps" || -z "$fresh_eps" ]]; then
    echo "bench gate: could not parse events_per_sec (baseline='$baseline_eps' fresh='$fresh_eps')"
    exit 1
fi

awk -v base="$baseline_eps" -v fresh="$fresh_eps" -v tol="$TOLERANCE" 'BEGIN {
    floor = base * (1.0 - tol);
    ratio = fresh / base;
    printf "bench gate: simnet baseline %.0f ev/s, fresh %.0f ev/s (%.2fx, floor %.0f)\n",
           base, fresh, ratio, floor;
    if (fresh < floor) {
        printf "bench gate: REGRESSION — fresh simnet throughput is more than %.0f%% below baseline\n", tol * 100;
        printf "bench gate: if intentional (or new hardware), re-baseline per tools/bench_gate.sh header\n";
        exit 1;
    }
    if (fresh > base * (1.0 + tol)) {
        printf "bench gate: note — fresh simnet is >%.0f%% above baseline; consider re-baselining\n", tol * 100;
    }
    exit 0;
}'

# ---- campaign gates -------------------------------------------------------

FRESH_CAMPAIGN="$SCRATCH/BENCH_campaign.json"
baseline_cold_max="$(extract "$CAMPAIGN_BASELINE" cold_eps_max)"
fresh_cold_max="$(extract "$FRESH_CAMPAIGN" cold_eps_max)"
fresh_speedup_w4="$(extract "$FRESH_CAMPAIGN" speedup_w4)"
fresh_cores="$(extract "$FRESH_CAMPAIGN" host_cores)"

if [[ -z "$baseline_cold_max" || -z "$fresh_cold_max" || -z "$fresh_cores" ]]; then
    echo "bench gate: could not parse BENCH_campaign.json (baseline='$baseline_cold_max' fresh='$fresh_cold_max' cores='$fresh_cores')"
    echo "bench gate: an old-shape baseline must be regenerated per the header"
    exit 1
fi

awk -v base="$baseline_cold_max" -v fresh="$fresh_cold_max" -v tol="$TOLERANCE" 'BEGIN {
    floor = base * (1.0 - tol);
    printf "bench gate: campaign cold (max workers) baseline %.0f ev/s, fresh %.0f ev/s (%.2fx, floor %.0f)\n",
           base, fresh, fresh / base, floor;
    if (fresh < floor) {
        printf "bench gate: REGRESSION — cold campaign throughput is more than %.0f%% below baseline\n", tol * 100;
        printf "bench gate: if intentional (or new hardware), re-baseline per tools/bench_gate.sh header\n";
        exit 1;
    }
    exit 0;
}'

# Warm-disk replay: the whole Stress campaign re-served from the binary
# disk tier. Gated on wall-clock (not events/sec — a warm replay
# processes zero simulator events) against the committed baseline.
baseline_warm_disk="$(extract "$CAMPAIGN_BASELINE" warm_disk_wall_s)"
fresh_warm_disk="$(extract "$FRESH_CAMPAIGN" warm_disk_wall_s)"

if [[ -z "$baseline_warm_disk" || -z "$fresh_warm_disk" ]]; then
    echo "bench gate: could not parse warm_disk_wall_s (baseline='$baseline_warm_disk' fresh='$fresh_warm_disk')"
    echo "bench gate: an old-shape baseline must be regenerated per the header"
    exit 1
fi

awk -v base="$baseline_warm_disk" -v fresh="$fresh_warm_disk" -v tol="$WARM_TOLERANCE" 'BEGIN {
    ceiling = base * (1.0 + tol);
    printf "bench gate: warm-disk replay baseline %.3fs, fresh %.3fs (ceiling %.3fs)\n",
           base, fresh, ceiling;
    if (fresh > ceiling) {
        printf "bench gate: REGRESSION — warm-disk replay wall-clock is more than %.0f%% above baseline\n", tol * 100;
        printf "bench gate: if intentional (or new hardware), re-baseline per tools/bench_gate.sh header\n";
        exit 1;
    }
    exit 0;
}'

# The parallel-speedup criterion is physical only when the host actually
# has >= 4 cores; a 1-core container running 4 threads proves nothing.
# When the gate cannot run, say so LOUDLY: the committed BENCH_campaign
# baseline records speedup_w4 ~= 1.0 on a small host, and a quiet skip
# lets that read as "scaling verified" forever. The `SKIPPED` marker
# below is load-bearing — CI greps for it and surfaces the skip in the
# stage summary instead of burying it in the log.
baseline_cores="$(extract "$CAMPAIGN_BASELINE" host_cores)"
if [[ "$fresh_cores" -ge 4 ]]; then
    awk -v s="$fresh_speedup_w4" -v min="$MIN_SPEEDUP" 'BEGIN {
        printf "bench gate: campaign 4-worker cold speedup %.2fx (minimum %.2fx)\n", s, min;
        if (s < min) {
            printf "bench gate: SCALING REGRESSION — 4-worker speedup below %.2fx on a multi-core host\n", min;
            exit 1;
        }
        exit 0;
    }'
    if [[ -n "$baseline_cores" && "$baseline_cores" -lt 4 ]]; then
        echo "bench gate: note — committed baseline was recorded on a $baseline_cores-core host; its speedup_w4 is not comparable. Re-baseline on this hardware."
    fi
else
    echo "=================================================================="
    echo "bench gate: SKIPPED — 4-worker speedup gate NOT ENFORCED"
    echo "bench gate: SKIPPED — host has $fresh_cores core(s), gate needs >= 4;"
    echo "bench gate: SKIPPED — parallel scaling is UNVERIFIED by this run"
    echo "=================================================================="
fi
