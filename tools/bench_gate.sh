#!/usr/bin/env bash
# Simnet throughput gate: compares a fresh `repro bench` run against the
# committed BENCH_simnet.json baseline and fails on a >20% events/sec
# regression.
#
# Usage: tools/bench_gate.sh
#   (expects `cargo build --release` to have produced target/release/repro;
#   builds it if missing)
#
# Environment:
#   BENCH_GATE_TOLERANCE  fractional regression allowed (default 0.20)
#   BENCH_GATE_SKIP=1     skip the gate entirely (e.g. debug-only machines)
#
# Re-baselining: the committed baseline is machine-relative. After an
# intentional perf change (or on new hardware), regenerate and commit it:
#
#   cargo build --release && (cd target && ../target/release/repro bench)
#   cp target/BENCH_simnet.json BENCH_simnet.json   # then commit
#
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${BENCH_GATE_SKIP:-0}" == "1" ]]; then
    echo "bench gate: skipped (BENCH_GATE_SKIP=1)"
    exit 0
fi

BASELINE=BENCH_simnet.json
TOLERANCE="${BENCH_GATE_TOLERANCE:-0.20}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench gate: no committed $BASELINE baseline — failing."
    echo "Generate one with: target/release/repro bench && cp BENCH_simnet.json <repo root>"
    exit 1
fi

if [[ ! -x target/release/repro ]]; then
    cargo build --release -p hsm-bench
fi

# repro writes BENCH_*.json into its working directory; run from a scratch
# dir so the committed baseline is never clobbered.
SCRATCH="$(mktemp -d "${TMPDIR:-/tmp}/bench_gate.XXXXXX")"
trap 'rm -rf "$SCRATCH"' EXIT
REPRO="$(pwd)/target/release/repro"
(cd "$SCRATCH" && "$REPRO" bench >/dev/null)

extract() {
    # The bench files are single-line flat JSON; no jq dependency needed.
    grep -o '"events_per_sec":[0-9.eE+-]*' "$1" | head -1 | cut -d: -f2
}

baseline_eps="$(extract "$BASELINE")"
fresh_eps="$(extract "$SCRATCH/BENCH_simnet.json")"

if [[ -z "$baseline_eps" || -z "$fresh_eps" ]]; then
    echo "bench gate: could not parse events_per_sec (baseline='$baseline_eps' fresh='$fresh_eps')"
    exit 1
fi

awk -v base="$baseline_eps" -v fresh="$fresh_eps" -v tol="$TOLERANCE" 'BEGIN {
    floor = base * (1.0 - tol);
    ratio = fresh / base;
    printf "bench gate: baseline %.0f ev/s, fresh %.0f ev/s (%.2fx, floor %.0f)\n",
           base, fresh, ratio, floor;
    if (fresh < floor) {
        printf "bench gate: REGRESSION — fresh throughput is more than %.0f%% below baseline\n", tol * 100;
        printf "bench gate: if intentional (or new hardware), re-baseline per tools/bench_gate.sh header\n";
        exit 1;
    }
    if (fresh > base * (1.0 + tol)) {
        printf "bench gate: note — fresh is >%.0f%% above baseline; consider re-baselining\n", tol * 100;
    }
    exit 0;
}'
