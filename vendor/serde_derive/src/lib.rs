//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-model traits of the sibling `serde` stub, by walking the raw
//! `proc_macro::TokenStream` (the real syn/quote stack is unavailable in
//! this build environment).
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs with named fields (including `#[serde(default)]` fields and
//!   `Option<T>` fields, which tolerate being absent, and
//!   `#[serde(skip)]` fields, which are never written and always
//!   reconstructed from `Default`);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics are not supported; none of the workspace's serialized types
//! need them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
    skipped: bool,
    is_option: bool,
}

/// serde attributes honoured by the stub (`#[serde(default)]`,
/// `#[serde(skip)]`).
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    has_default: bool,
    skipped: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Reads the serde options the stub honours out of one attribute token
/// group: `serde(default)` and `serde(skip)` (possibly among other serde
/// options; everything else is ignored).
fn attr_serde_flags(group: &proc_macro::Group) -> FieldAttrs {
    let mut flags = FieldAttrs::default();
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return flags,
    }
    if let Some(TokenTree::Group(inner)) = tokens.next() {
        for t in inner.stream() {
            if let TokenTree::Ident(i) = &t {
                match i.to_string().as_str() {
                    "default" => flags.has_default = true,
                    "skip" => flags.skipped = true,
                    _ => {}
                }
            }
        }
    }
    flags
}

/// Consumes leading attributes; returns the honoured serde flags.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldAttrs {
    let mut flags = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        // Outer attribute: `#` is followed by exactly one bracket group.
        if let Some(TokenTree::Group(g)) = iter.peek() {
            let f = attr_serde_flags(g);
            flags.has_default |= f.has_default;
            flags.skipped |= f.skipped;
            iter.next();
        }
    }
    flags
}

/// Consumes an optional `pub` / `pub(crate)` visibility.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parses the fields of a `{ ... }` group into names + per-field flags.
fn parse_named_fields(group: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        let attrs = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => panic!("serde stub derive: unexpected token in fields: {other}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // The first type token tells us whether the field is an Option.
        let is_option =
            matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "Option");
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            has_default: attrs.has_default,
            skipped: attrs.skipped,
            is_option,
        });
    }
    fields
}

/// Counts the fields of a `( ... )` tuple group.
fn tuple_arity(group: proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut since_comma = false;
    for tok in group.stream() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                since_comma = false;
                continue;
            }
            _ => {}
        }
        since_comma = true;
    }
    commas + usize::from(since_comma)
}

fn parse_variants(group: proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => panic!("serde stub derive: unexpected token in enum: {other}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                Shape::Tuple(tuple_arity(g))
            }
            _ => Shape::Unit,
        };
        // Consume the trailing comma, if any.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g)),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple(tuple_arity(g)),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                shape: Shape::Unit,
            },
            other => panic!("serde stub derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde stub derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize_fields_named(fields: &[Field], access: &str) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .filter(|f| !f.skipped)
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({access}{n})),",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Obj(::std::vec![{}])", pushes.join(""))
}

fn serialize_impl(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => gen_serialize_fields_named(fields, "&self."),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(::std::vec![{}])", elems.join(","))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Arr(::std::vec![{elems}]))]),",
                                binds = binds.join(","),
                                elems = elems.join(",")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = gen_serialize_fields_named(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                binds = binds.join(",")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("")))
        }
    };
    format!(
        "#[automatically_derived] #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

/// Generates the struct-literal field initializers for named fields read
/// out of `obj` (a `&[(String, Value)]` binding in scope).
fn gen_deserialize_fields_named(fields: &[Field], type_label: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skipped {
                // A skipped field is never read from the input, even if a
                // same-named key is present.
                return format!("{n}: ::std::default::Default::default(),");
            }
            let fallback = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else if f.is_option {
                "::std::option::Option::None".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"missing field `{n}` in {type_label}\"))"
                )
            };
            format!(
                "{n}: match ::serde::get_field(obj, \"{n}\") {{ \
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                     ::std::option::Option::None => {fallback}, \
                 }},"
            )
        })
        .collect()
}

fn deserialize_impl(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let inits = gen_deserialize_fields_named(fields, name);
                    format!(
                        "let obj = v.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object ({name})\", v))?; \
                         ::std::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array ({name})\", v))?; \
                         if items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}\")); }} \
                         ::std::result::Result::Ok({name}({inits}))",
                        inits = inits.join(",")
                    )
                }
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                     let items = inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array ({name}::{vn})\", inner))?; \
                                     if items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }} \
                                     ::std::result::Result::Ok({name}::{vn}({inits})) \
                                 }},",
                                inits = inits.join(",")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits = gen_deserialize_fields_named(fields, &format!("{name}::{vn}"));
                            Some(format!(
                                "\"{vn}\" => {{ \
                                     let obj = inner.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object ({name}::{vn})\", inner))?; \
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) \
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match v {{ \
                     ::serde::Value::Str(s) => match s.as_str() {{ \
                         {units} \
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                     }}, \
                     ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ \
                         let (tag, inner) = (&pairs[0].0, &pairs[0].1); \
                         match tag.as_str() {{ \
                             {datas} \
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                         }} \
                     }}, \
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)), \
                 }}",
                units = unit_arms.join(""),
                datas = data_arms.join("")
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

/// Derives `serde::Serialize` (value-model flavour; see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-model flavour; see crate docs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}
