//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stub's [`Value`] tree as JSON text and parses it back
//! with a small recursive-descent parser. Output conventions follow real
//! serde_json closely enough for line-delimited trace files to round-trip:
//! integers print exactly, non-finite floats print as `null`, and strings
//! are escaped per RFC 8259.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error returned by [`from_str`] / [`to_string`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input where the error was detected (parse only).
    pos: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, pos: usize) -> Error {
        Error {
            msg: msg.into(),
            pos: Some(pos),
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error {
            msg: e.to_string(),
            pos: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at byte {pos}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible in practice; the `Result` mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a structural mismatch with
/// the target type (corrupt trace lines must surface as errors, not
/// panics).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json has no representation for NaN/Inf; it writes null.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e16 {
        // Keep a decimal point so the token re-parses as a float ("2.0"),
        // matching serde_json's output for whole-number floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's shortest round-trip formatting.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::parse(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our writer;
                            // accept lone BMP escapes only.
                            s.push(
                                char::from_u32(u32::from(code))
                                    .ok_or_else(|| Error::parse("invalid \\u escape", self.pos))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::parse("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::parse("invalid hex digit in \\u escape", self.pos))?;
            code = code * 16 + digit as u16;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
        } else if negative {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(format!("integer out of range `{text}`"), start))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::parse(format!("integer out of range `{text}`"), start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.065f64).unwrap(), "0.065");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("1e-3").unwrap(), 0.001);
    }

    #[test]
    fn exact_u64_survives() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn non_finite_floats_become_null_and_nan() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quote\"\\tab\t\u{1}";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2,").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
