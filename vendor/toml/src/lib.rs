//! Offline stand-in for the `toml` crate.
//!
//! Implements the TOML subset this workspace's campaign-spec files use,
//! layered over the vendored [`serde`] `Value` model: comments, bare and
//! quoted keys, basic (`"…"`) and literal (`'…'`) strings, integers with
//! underscores, floats (including `inf`/`nan`), booleans, (multi-line)
//! arrays, inline tables, `[table]` headers and `[[array-of-tables]]`
//! headers with dotted paths. Unsupported TOML (multi-line strings,
//! dotted keys in assignments, datetimes, hex/octal/binary integers)
//! fails with a named error rather than mis-parsing.
//!
//! The writer mirrors the vendored `serde_json` float conventions —
//! integral floats render as `1.0`-style, everything else via the
//! shortest round-trip form — so a value that survives a JSON round trip
//! also survives a TOML one bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Parse or render failure. `line` is the 1-based input line for parse
/// errors and `0` for render-side errors (which have no input position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description of what went wrong.
    pub msg: String,
    /// 1-based line number of the offending input, or 0 when rendering.
    pub line: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}", self.msg, self.line)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a TOML document into a [`Value::Obj`] tree.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser::new(input);
    let mut root = Value::Obj(Vec::new());
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_inline_ws();
        match p.peek() {
            None => break,
            Some('\n') | Some('\r') => {
                p.bump();
            }
            Some('#') => p.skip_comment(),
            Some('[') => {
                p.bump();
                let array = p.peek() == Some('[');
                if array {
                    p.bump();
                }
                let segs = p.parse_dotted_keys()?;
                p.skip_inline_ws();
                p.expect(']')?;
                if array {
                    p.expect(']')?;
                }
                p.expect_line_end()?;
                if array {
                    open_array_table(&mut root, &segs).map_err(|msg| p.err_at(msg))?;
                } else {
                    open_table(&mut root, &segs).map_err(|msg| p.err_at(msg))?;
                }
                current = segs;
            }
            Some(_) => {
                let key = p.parse_key()?;
                p.skip_inline_ws();
                p.expect('=')?;
                p.skip_inline_ws();
                let value = p.parse_value()?;
                p.expect_line_end()?;
                let table = navigate(&mut root, &current).map_err(|msg| p.err_at(msg))?;
                let Value::Obj(entries) = table else {
                    return Err(p.err_at("internal: current table is not a table".into()));
                };
                if entries.iter().any(|(k, _)| *k == key) {
                    return Err(p.err_at(format!("duplicate key `{key}`")));
                }
                entries.push((key, value));
            }
        }
    }
    Ok(root)
}

/// Parses a TOML document and deserializes it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value).map_err(|e| Error {
        msg: e.to_string(),
        line: 0,
    })
}

/// Walks `path` from `root`, creating empty tables for missing segments.
/// A segment holding an array of tables resolves to its last element.
fn navigate<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, String> {
    let mut cur = root;
    for seg in path {
        let Value::Obj(entries) = cur else {
            return Err(format!("key `{seg}` is nested under a non-table value"));
        };
        let idx = match entries.iter().position(|(k, _)| k == seg) {
            Some(i) => i,
            None => {
                entries.push((seg.clone(), Value::Obj(Vec::new())));
                entries.len() - 1
            }
        };
        let next = &mut entries[idx].1;
        cur = match next {
            Value::Arr(items) => items
                .last_mut()
                .ok_or_else(|| format!("key `{seg}` is an empty array, not a table"))?,
            other => other,
        };
    }
    Ok(cur)
}

fn open_table(root: &mut Value, segs: &[String]) -> Result<(), String> {
    let node = navigate(root, segs)?;
    match node {
        Value::Obj(_) => Ok(()),
        _ => Err(format!(
            "table header `[{}]` redefines a non-table value",
            segs.join(".")
        )),
    }
}

fn open_array_table(root: &mut Value, segs: &[String]) -> Result<(), String> {
    let (last, parents) = segs
        .split_last()
        .ok_or_else(|| "empty table header".to_owned())?;
    let parent = navigate(root, parents)?;
    let Value::Obj(entries) = parent else {
        return Err(format!("key `{last}` is nested under a non-table value"));
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        None => {
            entries.push((last.clone(), Value::Arr(vec![Value::Obj(Vec::new())])));
            Ok(())
        }
        Some((_, Value::Arr(items))) => {
            items.push(Value::Obj(Vec::new()));
            Ok(())
        }
        Some(_) => Err(format!(
            "array-of-tables header `[[{}]]` redefines a non-array value",
            segs.join(".")
        )),
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn new(input: &str) -> Parser {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn err_at(&self, msg: String) -> Error {
        Error {
            msg,
            line: self.line,
        }
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.err_at(format!("expected `{want}`, found `{c}`"))),
            None => Err(self.err_at(format!("expected `{want}`, found end of input"))),
        }
    }

    /// Spaces and tabs only.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// Whitespace, newlines and comments — legal between array elements.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ') | Some('\t') | Some('\n') | Some('\r') => {
                    self.bump();
                }
                Some('#') => self.skip_comment(),
                _ => return,
            }
        }
    }

    fn skip_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                return;
            }
            self.bump();
        }
    }

    /// Consumes trailing whitespace, an optional comment, then a newline
    /// (or end of input).
    fn expect_line_end(&mut self) -> Result<(), Error> {
        self.skip_inline_ws();
        if self.peek() == Some('#') {
            self.skip_comment();
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                }
                Ok(())
            }
            Some(c) => Err(self.err_at(format!("expected end of line, found `{c}`"))),
        }
    }

    fn parse_key(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some('\'') => self.parse_literal_string(),
            Some(c) if is_bare_key_char(c) => {
                let mut key = String::new();
                while let Some(c) = self.peek() {
                    if !is_bare_key_char(c) {
                        break;
                    }
                    key.push(c);
                    self.bump();
                }
                Ok(key)
            }
            Some(c) => Err(self.err_at(format!("expected a key, found `{c}`"))),
            None => Err(self.err_at("expected a key, found end of input".into())),
        }
    }

    fn parse_dotted_keys(&mut self) -> Result<Vec<String>, Error> {
        let mut segs = Vec::new();
        loop {
            self.skip_inline_ws();
            segs.push(self.parse_key()?);
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.bump();
            } else {
                return Ok(segs);
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some('"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some('\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some(_) => self.parse_scalar_token(),
            None => Err(self.err_at("expected a value, found end of input".into())),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        if self.peek() == Some('"') && self.chars.get(self.pos + 1) == Some(&'"') {
            return Err(self.err_at("multi-line strings are not supported".into()));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err_at("unterminated string".into())),
                Some('\n') => return Err(self.err_at("unterminated string".into())),
                Some('"') => return Ok(s),
                Some('\\') => s.push(self.parse_escape()?),
                Some(c) => s.push(c),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        match self.bump() {
            Some('b') => Ok('\u{8}'),
            Some('t') => Ok('\t'),
            Some('n') => Ok('\n'),
            Some('f') => Ok('\u{c}'),
            Some('r') => Ok('\r'),
            Some('"') => Ok('"'),
            Some('\\') => Ok('\\'),
            Some('u') => self.parse_unicode_escape(4),
            Some('U') => self.parse_unicode_escape(8),
            Some(c) => Err(self.err_at(format!("unknown string escape `\\{c}`"))),
            None => Err(self.err_at("unterminated string escape".into())),
        }
    }

    fn parse_unicode_escape(&mut self, digits: u32) -> Result<char, Error> {
        let mut code: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.err_at("unterminated unicode escape".into()))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err_at(format!("invalid hex digit `{c}` in escape")))?;
            code = code * 16 + d;
        }
        char::from_u32(code)
            .ok_or_else(|| self.err_at(format!("escape U+{code:04X} is not a valid scalar")))
    }

    fn parse_literal_string(&mut self) -> Result<String, Error> {
        self.expect('\'')?;
        if self.peek() == Some('\'') && self.chars.get(self.pos + 1) == Some(&'\'') {
            return Err(self.err_at("multi-line strings are not supported".into()));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err_at("unterminated string".into())),
                Some('\n') => return Err(self.err_at("unterminated string".into())),
                Some('\'') => return Ok(s),
                Some(c) => s.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(Value::Arr(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    return Ok(Value::Arr(items));
                }
                Some(c) => return Err(self.err_at(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.err_at("unterminated array".into())),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_trivia();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_trivia();
            let key = self.parse_key()?;
            self.skip_inline_ws();
            self.expect('=')?;
            self.skip_inline_ws();
            let value = self.parse_value()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err_at(format!("duplicate key `{key}`")));
            }
            entries.push((key, value));
            self.skip_trivia();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Obj(entries)),
                Some(c) => return Err(self.err_at(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.err_at("unterminated inline table".into())),
            }
        }
    }

    /// Booleans, integers and floats — everything that is a bare token.
    fn parse_scalar_token(&mut self) -> Result<Value, Error> {
        let mut token = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() || matches!(c, ',' | ']' | '}' | '#') {
                break;
            }
            token.push(c);
            self.bump();
        }
        match token.as_str() {
            "" => return Err(self.err_at("expected a value".into())),
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            "inf" | "+inf" => return Ok(Value::Float(f64::INFINITY)),
            "-inf" => return Ok(Value::Float(f64::NEG_INFINITY)),
            "nan" | "+nan" | "-nan" => return Ok(Value::Float(f64::NAN)),
            _ => {}
        }
        if token.starts_with("0x") || token.starts_with("0o") || token.starts_with("0b") {
            return Err(self.err_at(format!("non-decimal integer `{token}` is not supported")));
        }
        let digits: String = token.chars().filter(|c| *c != '_').collect();
        if token.starts_with('_') || token.ends_with('_') || token.contains("__") {
            return Err(self.err_at(format!("misplaced underscore in number `{token}`")));
        }
        if digits.contains(['.', 'e', 'E']) {
            return digits
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err_at(format!("invalid TOML value `{token}`")));
        }
        // Integers that overflow their machine type fall back to f64, the
        // same convention the vendored serde_json parser uses.
        if digits.starts_with('-') {
            return match digits.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => digits
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err_at(format!("invalid TOML value `{token}`"))),
            };
        }
        let unsigned = digits.strip_prefix('+').unwrap_or(&digits);
        match unsigned.parse::<u64>() {
            Ok(u) => Ok(Value::UInt(u)),
            Err(_) => unsigned.parse::<f64>().map(Value::Float).map_err(|_| {
                self.err_at(format!(
                    "invalid TOML value `{token}` (datetimes are not supported)"
                ))
            }),
        }
    }
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders a [`Value::Obj`] tree as a TOML document.
///
/// Scalars and scalar arrays become `key = value` lines, nested objects
/// become `[path]` tables and arrays of objects become `[[path]]`
/// array-of-tables entries. Objects inside mixed arrays render as inline
/// tables. `Null` has no TOML representation and fails.
pub fn render(value: &Value) -> Result<String, Error> {
    let Value::Obj(entries) = value else {
        return Err(Error {
            msg: format!("top-level TOML value must be a table, got {}", value.kind()),
            line: 0,
        });
    };
    let mut out = String::new();
    let mut path = Vec::new();
    render_table(&mut out, &mut path, entries)?;
    Ok(out)
}

/// Serializes `value` and renders it as a TOML document.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    render(&value.to_value())
}

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Obj(_))
}

/// Non-empty arrays whose every element is a table render as `[[path]]`.
fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Arr(items) if !items.is_empty() && items.iter().all(is_table))
}

fn render_table(
    out: &mut String,
    path: &mut Vec<String>,
    entries: &[(String, Value)],
) -> Result<(), Error> {
    for (key, value) in entries {
        if !is_table(value) && !is_table_array(value) {
            out.push_str(&render_key(key));
            out.push_str(" = ");
            render_inline(out, value)?;
            out.push('\n');
        }
    }
    for (key, value) in entries {
        match value {
            Value::Obj(sub) => {
                path.push(key.clone());
                out.push('\n');
                out.push_str(&format!("[{}]\n", render_path(path)));
                render_table(out, path, sub)?;
                path.pop();
            }
            Value::Arr(items) if is_table_array(value) => {
                path.push(key.clone());
                for item in items {
                    let Value::Obj(sub) = item else {
                        unreachable!("is_table_array guarantees tables");
                    };
                    out.push('\n');
                    out.push_str(&format!("[[{}]]\n", render_path(path)));
                    render_table(out, path, sub)?;
                }
                path.pop();
            }
            _ => {}
        }
    }
    Ok(())
}

fn render_path(path: &[String]) -> String {
    path.iter()
        .map(|seg| render_key(seg))
        .collect::<Vec<_>>()
        .join(".")
}

fn render_key(key: &str) -> String {
    if !key.is_empty() && key.chars().all(is_bare_key_char) {
        key.to_owned()
    } else {
        let mut quoted = String::new();
        render_string(&mut quoted, key);
        quoted
    }
}

fn render_inline(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => Err(Error {
            msg: "TOML has no representation for null".into(),
            line: 0,
        }),
        Value::Bool(b) => {
            out.push_str(if *b { "true" } else { "false" });
            Ok(())
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
            Ok(())
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
            Ok(())
        }
        Value::Float(x) => {
            render_float(out, *x);
            Ok(())
        }
        Value::Str(s) => {
            render_string(out, s);
            Ok(())
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_inline(out, item)?;
            }
            out.push(']');
            Ok(())
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push_str("{ ");
            for (i, (key, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_key(key));
                out.push_str(" = ");
                render_inline(out, v)?;
            }
            out.push_str(" }");
            Ok(())
        }
    }
}

/// Float rendering matching the vendored `serde_json` writer: integral
/// floats keep one decimal, everything else uses the shortest
/// round-trippable form. Non-finite values use TOML's spellings.
fn render_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("nan");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else if x == x.trunc() && x.abs() < 1e16 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# campaign
name = "demo"
count = 1_000
offset = -3
ratio = 0.4
flag = true

[defaults]
w_m = 48

[[scenario]]
name = 'first'
seeds = [1, 2, 3]

[[scenario]]
name = "second"
cc = ["Reno", { Veno = { beta = 2.5 } }]
"#;
        let v = parse(doc).expect("parses");
        let Value::Obj(top) = &v else {
            panic!("not a table")
        };
        assert_eq!(top[0], ("name".to_owned(), Value::Str("demo".into())));
        assert_eq!(top[1], ("count".to_owned(), Value::UInt(1000)));
        assert_eq!(top[2], ("offset".to_owned(), Value::Int(-3)));
        assert_eq!(top[3], ("ratio".to_owned(), Value::Float(0.4)));
        assert_eq!(top[4], ("flag".to_owned(), Value::Bool(true)));
        let defaults = serde::get_field(v.as_obj().unwrap(), "defaults").unwrap();
        assert_eq!(
            serde::get_field(defaults.as_obj().unwrap(), "w_m"),
            Some(&Value::UInt(48))
        );
        let scenarios = serde::get_field(v.as_obj().unwrap(), "scenario").unwrap();
        let Value::Arr(items) = scenarios else {
            panic!("not an array")
        };
        assert_eq!(items.len(), 2);
        let second = items[1].as_obj().unwrap();
        let Some(Value::Arr(ccs)) = serde::get_field(second, "cc") else {
            panic!("cc missing")
        };
        assert_eq!(ccs[0], Value::Str("Reno".into()));
        let veno = ccs[1].as_obj().unwrap();
        let params = serde::get_field(veno, "Veno").unwrap().as_obj().unwrap();
        assert_eq!(serde::get_field(params, "beta"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn multiline_arrays_and_nested_headers() {
        let doc = "
[a.b]
xs = [
    1, # one
    2,
    3,
]
[a.c]
y = 'z'
";
        let v = parse(doc).expect("parses");
        let a = serde::get_field(v.as_obj().unwrap(), "a").unwrap();
        let b = serde::get_field(a.as_obj().unwrap(), "b").unwrap();
        assert_eq!(
            serde::get_field(b.as_obj().unwrap(), "xs"),
            Some(&Value::Arr(vec![
                Value::UInt(1),
                Value::UInt(2),
                Value::UInt(3)
            ]))
        );
        let c = serde::get_field(a.as_obj().unwrap(), "c").unwrap();
        assert_eq!(
            serde::get_field(c.as_obj().unwrap(), "y"),
            Some(&Value::Str("z".into()))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ok = 1\nbad = @").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("a = 1\na = 2").unwrap_err();
        assert!(err.to_string().contains("duplicate key `a`"), "{err}");
        let err = parse("date = 1979-05-27").unwrap_err();
        assert!(err.to_string().contains("datetimes"), "{err}");
        assert!(parse("s = \"\"\"x\"\"\"").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = obj(vec![("s", Value::Str("a\"b\\c\nd\te\u{1}".into()))]);
        let doc = render(&v).expect("renders");
        assert_eq!(parse(&doc).expect("parses"), v);
    }

    #[test]
    fn renders_tables_and_arrays_of_tables() {
        let v = obj(vec![
            ("name", Value::Str("demo".into())),
            ("defaults", obj(vec![("w_m", Value::UInt(48))])),
            (
                "scenario",
                Value::Arr(vec![
                    obj(vec![
                        ("name", Value::Str("one".into())),
                        (
                            "cc",
                            Value::Arr(vec![
                                Value::Str("Reno".into()),
                                obj(vec![("Veno", obj(vec![("beta", Value::Float(2.5))]))]),
                            ]),
                        ),
                    ]),
                    obj(vec![("name", Value::Str("two".into()))]),
                ]),
            ),
        ]);
        let doc = render(&v).expect("renders");
        assert_eq!(parse(&doc).expect("round-trips"), v);
        assert!(doc.contains("[defaults]"), "{doc}");
        assert!(doc.contains("[[scenario]]"), "{doc}");
        assert!(doc.contains("{ Veno = { beta = 2.5 } }"), "{doc}");
    }

    #[test]
    fn float_conventions_match_serde_json() {
        let v = obj(vec![
            ("whole", Value::Float(120.0)),
            ("frac", Value::Float(0.1)),
            ("big", Value::Float(1e300)),
        ]);
        let doc = render(&v).expect("renders");
        assert!(doc.contains("whole = 120.0"), "{doc}");
        assert!(doc.contains("frac = 0.1"), "{doc}");
        assert_eq!(parse(&doc).expect("parses"), v);
    }

    #[test]
    fn null_has_no_toml_form() {
        let v = obj(vec![("x", Value::Null)]);
        assert!(render(&v).is_err());
        assert!(render(&Value::UInt(1)).is_err());
    }

    #[test]
    fn quoted_keys_round_trip() {
        let v = obj(vec![("odd key", obj(vec![("x", Value::UInt(1))]))]);
        let doc = render(&v).expect("renders");
        assert!(doc.contains("[\"odd key\"]"), "{doc}");
        assert_eq!(parse(&doc).expect("parses"), v);
    }
}
