//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API used by this workspace:
//! [`Strategy`] with `prop_map`, numeric range strategies, tuple
//! strategies, [`Just`], [`Union`] (behind `prop_oneof!`),
//! `collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking; cases are generated from a
//! deterministic per-test RNG (seeded by FNV-1a of the test name) so runs
//! are reproducible, and the failing input is printed verbatim before the
//! panic is propagated — recorded regressions are replayed by hard-coding
//! the printed value as an explicit test.

use std::fmt::Debug;
use std::ops::Range;

/// Number of random cases executed per property.
pub const CASES: u32 = 256;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64 seeding + xoshiro256++ stream)
// ---------------------------------------------------------------------------

/// The RNG handed to [`Strategy::sample`].
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the full 256-bit state from one 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut s = seed;
        TestRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a new strategy by mapping generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Wraps the alternatives; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (self.next_index(rng)) % self.options.len();
        self.options[idx].sample(rng)
    }
}

impl<T: Debug> Union<T> {
    fn next_index(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let x = self.start + (self.end - self.start) * rng.unit();
        // Guard the half-open contract against floating rounding.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves via the prelude.
pub mod prop {
    pub use super::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, Union,
    };
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runs [`CASES`] deterministic cases of `f` against `strategy`, printing
/// the failing input before re-raising any panic.
pub fn run_cases<S: Strategy>(name: &str, strategy: &S, f: impl Fn(S::Value)) {
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    for case in 0..CASES {
        let value = strategy.sample(&mut rng);
        let repr = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
        if let Err(payload) = outcome {
            eprintln!("proptest stub: `{name}` failed at case {case} with input:\n    {repr}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`run_cases`] over the tuple of strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                $crate::run_cases(stringify!($name), &strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// Asserts a property holds for the current case (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0.0f64..1.0, n in 1u32..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(n, n);
        }

        #[test]
        fn oneof_and_vec_compose(b in prop_oneof![Just(1.0f64), Just(2.0)],
                                 xs in prop::collection::vec(0.0f64..1.0, 1..20)) {
            prop_assert!(b == 1.0 || b == 2.0);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
        }
    }
}
