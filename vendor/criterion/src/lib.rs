//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-declaration surface the workspace uses
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`black_box`],
//! `criterion_group!` / `criterion_main!`) over a plain wall-clock timing
//! loop: per bench it warms up once, times `sample_size` batches, and
//! prints the mean time per iteration. No statistics, plots or baselines.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker types (only wall time is supported).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
            _measurement: PhantomData,
        }
    }
}

/// A group of benches sharing tuning parameters.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub warms up exactly once.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on total timed duration for one bench.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named bench.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        let deadline = Instant::now() + self.measurement_time;
        f(&mut bencher); // warm-up sample (discarded)
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if Instant::now() >= deadline {
                break;
            }
        }
        let iters: u64 = bencher.samples.iter().map(|s| s.iters).sum();
        let total: Duration = bencher.samples.iter().map(|s| s.elapsed).sum();
        let per_iter = if iters > 0 {
            total.as_nanos() / u128::from(iters)
        } else {
            0
        };
        println!(
            "bench {}/{id}: {per_iter} ns/iter ({iters} iters)",
            self.name
        );
        self
    }

    /// Ends the group (no-op beyond dropping it).
    pub fn finish(self) {}
}

struct Sample {
    iters: u64,
    elapsed: Duration,
}

/// Timing handle passed to each bench closure.
pub struct Bencher {
    samples: Vec<Sample>,
}

impl Bencher {
    /// Times one batch of calls to `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(Sample {
            iters: 1,
            elapsed: start.elapsed(),
        });
    }

    /// Like [`iter`](Bencher::iter) but drops the output outside the
    /// timed region.
    pub fn iter_with_large_drop<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        self.samples.push(Sample { iters: 1, elapsed });
        drop(out);
    }
}

/// Bundles bench functions under one group symbol.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        // warm-up + up to sample_size timed batches
        assert!(calls >= 2);
    }
}
