//! Offline stand-in for the `serde` crate.
//!
//! The real serde cannot be fetched in this build environment, so this
//! crate provides the subset the workspace actually uses: the
//! [`Serialize`] / [`Deserialize`] traits (here defined directly over a
//! JSON-like [`Value`] tree rather than serde's visitor-based data model)
//! and the `#[derive(Serialize, Deserialize)]` macros re-exported from
//! `serde_derive`.
//!
//! The derived representation matches serde's externally-tagged JSON
//! conventions so traces written by this stub remain readable by real
//! serde and vice versa:
//!
//! * named-field structs ⇒ objects, in declaration order;
//! * newtype structs ⇒ the inner value; wider tuple structs ⇒ arrays;
//! * unit enum variants ⇒ `"Variant"`; data-carrying variants ⇒
//!   `{"Variant": …}`;
//! * `Option` ⇒ `null` / inner value, and missing `Option` fields
//!   deserialize to `None`;
//! * `#[serde(default)]` fields fall back to `Default::default()`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like value tree: the wire format of this serde stand-in.
///
/// Integers keep their exact 64-bit representation (floats would silently
/// corrupt large packet ids / microsecond timestamps).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact).
    UInt(u64),
    /// Negative integer (exact).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as ordered key/value pairs (field declaration order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Short human label of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from any message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks a field up in an object's pairs (helper for derived code).
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))?,
                    Value::Int(n) => *n,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_string())
    }
}
impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Self::from(s.as_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of {N}, found array of {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length changed during deserialization"))
    }
}

/// `&'static str` deserializes by leaking the parsed string: acceptable
/// here because only small, rarely-deserialized config tables use
/// `&'static str` fields.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array (tuple)", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expect}, found array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
        let v = (-7i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -7);
        assert!(u32::from_value(&Value::UInt(1 << 40)).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let xs = vec![(1u32, 2.5f64), (3, 4.5)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = bool::from_value(&Value::Str("yes".into())).unwrap_err();
        assert!(err.to_string().contains("bool"));
        assert!(err.to_string().contains("string"));
    }
}
