//! # hsm — TCP in High-Speed Mobility Scenarios
//!
//! A full reproduction of *"Measurement, Modeling, and Analysis of TCP in
//! High-Speed Mobility Scenarios"* (ICDCS 2016): a discrete-event cellular
//! network simulator with a 300 km/h train mobility model, a from-scratch
//! TCP Reno/NewReno/MPTCP stack, the paper's measurement methodology, and
//! its enhanced throughput model alongside the Padhye baseline.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`simnet`] — discrete-event simulator substrate (engine, links, loss
//!   models, mobility, handoffs);
//! * [`tcp`] — the TCP implementation and connection/MPTCP runners;
//! * [`trace`] — packet traces and transport-layer measurement analyses;
//! * [`model`] — the enhanced throughput model (the paper's contribution)
//!   and the Padhye baseline;
//! * [`scenario`] — Beijing–Tianjin railway scenarios, provider profiles
//!   and synthetic dataset generation.
//!
//! # Quickstart
//!
//! ```
//! use hsm::tcp::prelude::*;
//!
//! // Stream 100 segments over a healthy LTE-ish path.
//! let cfg = ConnectionConfig {
//!     sender: SenderConfig { max_segments: Some(100), ..Default::default() },
//!     ..Default::default()
//! };
//! let out = run_connection(7, &PathSpec::default(), None, &cfg);
//! assert_eq!(out.receiver.next_expected, 100);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hsm_core as model;
pub use hsm_scenario as scenario;
pub use hsm_simnet as simnet;
pub use hsm_tcp as tcp;
pub use hsm_trace as trace;
