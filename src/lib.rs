//! # hsm — TCP in High-Speed Mobility Scenarios
//!
//! A full reproduction of *"Measurement, Modeling, and Analysis of TCP in
//! High-Speed Mobility Scenarios"* (ICDCS 2016): a discrete-event cellular
//! network simulator with a 300 km/h train mobility model, a from-scratch
//! TCP Reno/NewReno/MPTCP stack, the paper's measurement methodology, and
//! its enhanced throughput model alongside the Padhye baseline.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`simnet`] — discrete-event simulator substrate (engine, links, loss
//!   models, mobility, handoffs);
//! * [`tcp`] — the TCP implementation and connection/MPTCP runners;
//! * [`trace`] — packet traces and transport-layer measurement analyses;
//! * [`model`] — the enhanced throughput model (the paper's contribution)
//!   and the Padhye baseline;
//! * [`scenario`] — Beijing–Tianjin railway scenarios, provider profiles,
//!   declarative TOML campaign specs and synthetic dataset generation;
//! * [`runtime`] — the sharded campaign engine with its memoizing flow
//!   cache, multi-process spec sharding and structured telemetry;
//! * [`chaos`] — the seeded fault-injection and differential-testing
//!   harness (scenario fuzzer, fault drills, model-vs-simulation oracle).
//!
//! The [`prelude`] curates the types most programs need, and [`Error`]
//! unifies the fallible surface of every layer.
//!
//! # Quickstart
//!
//! Configs are built with validating builders; single flows run through
//! [`scenario::runner::run_scenario`], anything bigger through a
//! [`runtime::engine::Campaign`]:
//!
//! ```
//! use hsm::prelude::*;
//! use hsm_simnet::time::SimDuration;
//!
//! # fn main() -> Result<(), hsm::Error> {
//! let config = ScenarioConfig::builder()
//!     .provider(Provider::ChinaMobile)
//!     .motion(Motion::HighSpeed)
//!     .seed(7)
//!     .duration(SimDuration::from_secs(30))
//!     .build()?;
//!
//! // One flow, one summary.
//! let outcome = try_run_scenario(&config)?;
//! assert!(outcome.summary().rtt_s > 0.0);
//!
//! // The same flow as a (memoized, sharded) campaign of one.
//! let campaign = Campaign::builder().config(config).workers(2).build()?;
//! let output = campaign.run()?;
//! assert_eq!(output.report.flows, 1);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hsm_chaos as chaos;
pub use hsm_core as model;
pub use hsm_runtime as runtime;
pub use hsm_scenario as scenario;
pub use hsm_simnet as simnet;
pub use hsm_tcp as tcp;
pub use hsm_trace as trace;

mod error;
pub use error::Error;

/// The types most programs need, in one import.
///
/// ```
/// use hsm::prelude::*;
/// ```
pub mod prelude {
    pub use crate::Error;
    pub use hsm_chaos::{run_chaos, ChaosOptions, ChaosReport};
    pub use hsm_core::enhanced::EnhancedModel;
    pub use hsm_core::params::ModelParams;
    pub use hsm_runtime::cache::{CacheConfig, FlowCache};
    pub use hsm_runtime::engine::{Campaign, CampaignBuilder, CampaignOutput, CampaignReport};
    pub use hsm_runtime::error::{CacheError, EngineError};
    pub use hsm_runtime::shard::{
        merge_shards, read_shard_report, run_shard, shard_file_name, write_shard_report,
        CampaignResult, ShardReport,
    };
    pub use hsm_scenario::provider::Provider;
    pub use hsm_scenario::runner::{
        run_scenario, try_run_scenario, try_run_scenario_with, Motion, ScenarioConfig,
        ScenarioConfigBuilder, ScenarioError, ScenarioOutcome, Scratch,
    };
    pub use hsm_scenario::spec::{
        expansion_digest, load_spec, CampaignSpec, GridKind, ScenarioBase, ScenarioGrid, SpecError,
        SweepAxis,
    };
    pub use hsm_trace::summary::{analyze_flow, FlowSummary};
}
