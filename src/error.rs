//! The unified error type of the facade crate.
//!
//! Every fallible entry point in the workspace reports through one of
//! four layer-specific errors — scenario validation ([`ScenarioError`]),
//! declarative spec loading ([`SpecError`]), campaign execution
//! ([`EngineError`]) or the flow cache's disk tier ([`CacheError`]).
//! [`Error`] wraps all four so application code can use a single
//! `Result<_, hsm::Error>` and `?` across layers.

use hsm_runtime::error::{CacheError, EngineError};
use hsm_scenario::runner::ScenarioError;
use hsm_scenario::spec::SpecError;
use std::fmt;

/// Any failure the `hsm` workspace can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A scenario configuration failed validation.
    Scenario(ScenarioError),
    /// A declarative campaign spec failed to load or validate.
    Spec(SpecError),
    /// The campaign engine failed (invalid campaign, dead worker, …).
    Engine(EngineError),
    /// The flow cache's disk tier failed.
    Cache(CacheError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Scenario(e) => write!(f, "scenario: {e}"),
            Error::Spec(e) => write!(f, "spec: {e}"),
            Error::Engine(e) => write!(f, "engine: {e}"),
            Error::Cache(e) => write!(f, "cache: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Scenario(e) => Some(e),
            Error::Spec(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Cache(e) => Some(e),
        }
    }
}

impl From<ScenarioError> for Error {
    fn from(e: ScenarioError) -> Self {
        Error::Scenario(e)
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Self {
        Error::Spec(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<CacheError> for Error {
    fn from(e: CacheError) -> Self {
        Error::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_question_mark() {
        fn scenario() -> Result<(), Error> {
            Err(ScenarioError::ZeroWindow)?;
            Ok(())
        }
        fn spec() -> Result<(), Error> {
            Err(hsm_scenario::spec::CampaignSpec::from_toml("").unwrap_err())?;
            Ok(())
        }
        fn engine() -> Result<(), Error> {
            Err(EngineError::ZeroWorkers)?;
            Ok(())
        }
        fn cache() -> Result<(), Error> {
            Err(CacheError::Encode("boom".into()))?;
            Ok(())
        }
        assert!(matches!(scenario(), Err(Error::Scenario(_))));
        assert!(matches!(spec(), Err(Error::Spec(_))));
        assert!(matches!(engine(), Err(Error::Engine(_))));
        assert!(matches!(cache(), Err(Error::Cache(_))));
        let display = format!("{}", spec().unwrap_err());
        assert!(display.starts_with("spec: "), "{display}");
        let display = format!("{}", engine().unwrap_err());
        assert!(display.starts_with("engine: "));
    }
}
