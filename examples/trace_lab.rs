//! Trace laboratory: expand a committed campaign spec into a small
//! synthetic dataset, persist it to disk, reload it, and run the offline
//! analyses — the paper authors' workflow with their pcap archive.
//!
//! ```text
//! cargo run --release --example trace_lab
//! ```

use hsm::model::prelude::*;
use hsm::prelude::{load_spec, Campaign};
use hsm::simnet::time::SimDuration;
use hsm::trace::prelude::*;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the declarative spec (a 3 %-scale Table I dataset of 45 s
    //    flows), expand it, and run the campaign with outcomes retained.
    let spec_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/specs/trace_lab.toml");
    let spec = load_spec(&spec_path).map_err(hsm::Error::from)?;
    let configs = spec.expand().map_err(hsm::Error::from)?;
    println!(
        "generating dataset ({} planned flows from spec `{}`)...",
        configs.len(),
        spec.name
    );
    let campaign = Campaign::builder()
        .configs(configs)
        .keep_outcomes(true)
        .build()
        .map_err(hsm::Error::from)?;
    let output = campaign.run().map_err(hsm::Error::from)?;
    let report = output.report;
    println!(
        "engine: {} workers, {:.0} sim events/s",
        report.workers,
        report.events_per_sec()
    );

    // 2. Persist to JSON-lines and reload — the archive round trip.
    let path = std::env::temp_dir().join("hsm_trace_lab.jsonl");
    let traces: Vec<&FlowTrace> = output
        .runs
        .iter()
        .map(|r| {
            let outcome = r
                .outcome
                .as_deref()
                .expect("keep_outcomes retains outcomes");
            &outcome.outcome.trace
        })
        .collect();
    save_traces(&path, traces.iter().copied())?;
    let size_mb = std::fs::metadata(&path)?.len() as f64 / 1e6;
    let reloaded = load_traces(&path)?;
    println!(
        "archived {} traces ({size_mb:.1} MB) to {} and reloaded them\n",
        reloaded.len(),
        path.display()
    );

    // 3. Offline analysis of the reloaded archive.
    println!("flow  provider        TP(seg/s)  stalls>1s  dead-time  q̂      spurious");
    let mut summaries = Vec::new();
    for trace in &reloaded {
        let a = analyze_flow(trace, &TimeoutConfig::default());
        let stalls = detect_stalls(trace, SimDuration::from_secs(1));
        let dead = stall_time_fraction(trace, SimDuration::from_secs(1));
        println!(
            "{:4}  {:14}  {:8.1}  {:9}  {:8.1}%  {:5.2}  {:7.1}%",
            a.summary.flow,
            a.summary.provider,
            a.summary.throughput_sps,
            stalls.len(),
            dead * 100.0,
            a.summary.q_hat,
            a.summary.spurious_fraction() * 100.0,
        );
        summaries.push(a.summary);
    }

    // 4. Auto-calibrate a global q against the archive (the paper's
    //    "0.25–0.4 recommended" band, made procedural).
    if let Some(fit) = fit_global(&summaries, &FitConfig::default()) {
        println!(
            "\nglobal fit over {} flows: q = {:.3} (P_a scale {:.1}) with mean D = {:.1}%",
            fit.flows,
            fit.q,
            fit.p_a_scale,
            fit.mean_d * 100.0
        );
        println!("paper's recommended band for q: 0.25 – 0.40");
    }

    // 5. Windowed throughput of the roughest flow.
    if let Some(worst) = reloaded.iter().min_by(|a, b| {
        let ta = analyze_flow(a, &TimeoutConfig::default())
            .summary
            .throughput_sps;
        let tb = analyze_flow(b, &TimeoutConfig::default())
            .summary
            .throughput_sps;
        ta.partial_cmp(&tb).expect("finite")
    }) {
        println!(
            "\nper-5s throughput of the roughest flow (#{}):",
            worst.flow
        );
        for bin in throughput_timeline(worst, SimDuration::from_secs(5)) {
            let bar_len = (bin.throughput_sps() / 20.0) as usize;
            println!(
                "  {:5.0}s  {:7.1} seg/s  {}",
                bin.from.as_secs_f64(),
                bin.throughput_sps(),
                "#".repeat(bar_len.min(60))
            );
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(())
}
