//! Quickstart: simulate one TCP flow on a 300 km/h train, analyze the
//! trace exactly as the paper does, and compare the measured throughput
//! with the enhanced model and the Padhye baseline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hsm::model::prelude::*;
use hsm::prelude::*;
use hsm::simnet::time::SimDuration;

fn main() -> Result<(), hsm::Error> {
    // 1. One flow on the Beijing–Tianjin line, China Mobile LTE, 40 s.
    let config = ScenarioConfig::builder()
        .provider(Provider::ChinaMobile)
        .motion(Motion::HighSpeed)
        .seed(42)
        .duration(SimDuration::from_secs(40))
        .build()?;
    let outcome = try_run_scenario(&config)?;
    let s = outcome.summary();

    println!("— measured on the (synthetic) train —");
    println!("  provider            {}", s.provider);
    println!("  RTT                 {:.1} ms", s.rtt_s * 1e3);
    println!("  data loss rate      {:.3}%", s.p_d * 100.0);
    println!("  ACK loss rate       {:.3}%", s.p_a * 100.0);
    println!(
        "  timeouts            {} ({} spurious)",
        s.timeouts, s.spurious_timeouts
    );
    println!("  recovery loss q̂     {:.1}%", s.q_hat * 100.0);
    println!("  mean recovery       {:.2} s", s.mean_recovery_s);
    println!("  throughput          {:.1} segments/s", s.throughput_sps);
    if let Some(ch) = outcome.outcome.channel {
        println!(
            "  handoffs            {} ({} failed)",
            ch.handoffs, ch.failed_handoffs
        );
    }

    // 2. Fit the model parameters from the trace and evaluate both models.
    let params = estimate_params(s, &EstimateConfig::default());
    let enhanced = EnhancedModel::as_published()
        .throughput(&params)
        .expect("fitted parameters are valid");
    let padhye = padhye_full(&params).expect("fitted parameters are valid");

    println!("\n— model predictions —");
    println!(
        "  enhanced model      {:.1} segments/s  (D = {:.1}%)",
        enhanced,
        deviation(enhanced, s.throughput_sps) * 100.0
    );
    println!(
        "  Padhye baseline     {:.1} segments/s  (D = {:.1}%)",
        padhye,
        deviation(padhye, s.throughput_sps) * 100.0
    );
    println!("\nThe Padhye model assumes ACKs never vanish and retransmissions");
    println!("are lost like ordinary packets; at 300 km/h neither holds, which");
    println!("is exactly what the enhanced model's P_a and q capture.");
    Ok(())
}
