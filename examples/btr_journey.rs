//! A full Beijing–Tianjin journey: ride the train end to end with a bulk
//! download running, and watch throughput, handoffs and timeouts along the
//! route.
//!
//! ```text
//! cargo run --release --example btr_journey
//! ```
//! (release recommended: the full trip simulates ~20 simulated minutes)

use hsm::scenario::prelude::*;
use hsm::simnet::mobility::ms_to_kmh;
use hsm::simnet::time::SimTime;
use hsm::tcp::prelude::*;
use hsm::trace::prelude::*;

fn main() {
    // The real trajectory (acceleration, 300 km/h cruise, braking).
    let trajectory = btr::trajectory();
    let provider = Provider::ChinaUnicom;
    let mobility = MobilityScenario {
        trajectory,
        layout: provider.cell_layout(),
        handoff: provider.handoff_params(),
    };
    let duration = trajectory.duration();
    let conn = ConnectionConfig {
        sender: SenderConfig {
            stop_after: Some(duration.saturating_since(SimTime::ZERO)),
            ..Default::default()
        },
        provider: provider.name().to_owned(),
        scenario: "btr-journey".to_owned(),
        deadline: duration,
        ..Default::default()
    };
    println!(
        "Riding {} km at up to 300 km/h ({:.0} min) on {}...\n",
        btr::ROUTE_KM,
        duration.as_secs_f64() / 60.0,
        provider.name()
    );
    let out = run_connection(2024, &provider.high_speed_path(), Some(&mobility), &conn);

    // Carve the trace into 60 s windows and report per-window throughput.
    let trace = &out.trace;
    let total = trace.duration().as_secs_f64();
    println!("time     position   speed     delivered   notes");
    let window = 60.0;
    let mut t0 = 0.0;
    while t0 < total {
        let t1 = (t0 + window).min(total);
        let delivered = trace
            .data()
            .filter(|r| {
                r.arrived_at.is_some_and(|a| {
                    let s = a.as_secs_f64();
                    s >= t0 && s < t1
                })
            })
            .count();
        let mid = SimTime::from_secs_f64((t0 + t1) / 2.0);
        let pos_km = trajectory.position_m(mid) / 1000.0;
        let speed = ms_to_kmh(trajectory.speed_ms(mid));
        let station = btr::STATIONS
            .iter()
            .find(|(_, km)| (pos_km - km).abs() < 2.0)
            .map(|(name, _)| format!("≈ {name}"))
            .unwrap_or_default();
        println!(
            "{:4.0}min  {:6.1} km  {:4.0} km/h  {:6} seg   {}",
            t0 / 60.0,
            pos_km,
            speed,
            delivered,
            station
        );
        t0 = t1;
    }

    let analysis = analyze_flow(trace, &TimeoutConfig::default());
    let s = &analysis.summary;
    println!("\n— journey summary —");
    println!(
        "  delivered            {:.1} MB",
        s.goodput_sps * s.duration_s * 1460.0 / 1e6
    );
    println!("  mean throughput      {:.1} segments/s", s.throughput_sps);
    println!(
        "  timeouts             {} ({:.0}% spurious)",
        s.timeouts,
        s.spurious_fraction() * 100.0
    );
    println!("  mean recovery phase  {:.2} s", s.mean_recovery_s);
    if let Some(ch) = out.channel {
        println!(
            "  handoffs             {} ({} failed)",
            ch.handoffs, ch.failed_handoffs
        );
    }
}
