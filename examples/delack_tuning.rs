//! Delayed-ACK tuning in high-speed mobility (§V-A): simulate the same
//! train ride with different delayed-ACK factors `b` and watch spurious
//! timeouts grow, then cross-check with the model.
//!
//! ```text
//! cargo run --release --example delack_tuning
//! ```

use hsm::model::prelude::*;
use hsm::prelude::*;
use hsm::simnet::time::SimDuration;

fn main() -> Result<(), hsm::Error> {
    println!("Simulating the same high-speed ride with b = 1, 2, 4 ...\n");
    println!(
        "{:>3}  {:>11}  {:>9}  {:>9}  {:>10}  {:>13}",
        "b", "TP (seg/s)", "timeouts", "spurious", "ACK loss", "mean P_a obs"
    );
    for b in [1u32, 2, 4] {
        let (mut tp, mut to, mut sp, mut pa, mut burst) = (0.0, 0u32, 0u32, 0.0, 0.0);
        let reps = 4;
        for seed in 0..reps {
            let config = ScenarioConfig::builder()
                .provider(Provider::ChinaMobile)
                .b(b)
                .seed(777 + seed)
                .duration(SimDuration::from_secs(45))
                .build()?;
            let out = try_run_scenario(&config)?;
            let s = out.summary();
            tp += s.throughput_sps;
            to += s.timeouts;
            sp += s.spurious_timeouts;
            pa += s.p_a;
            burst += s.p_a_burst;
        }
        let n = f64::from(reps as u32);
        println!(
            "{:>3}  {:>11.1}  {:>9.1}  {:>9.1}  {:>9.3}%  {:>13.5}",
            b,
            tp / n,
            f64::from(to) / n,
            f64::from(sp) / n,
            pa / n * 100.0,
            burst / n
        );
    }

    println!("\nModel view (window 16, 10% per-ACK loss):");
    let base = ModelParams::high_speed_example();
    for p in delayed_ack_analysis(&base, 16.0, 0.10, &[1.0, 2.0, 4.0, 8.0]) {
        println!(
            "  b = {:<2}  ACKs/round = {:<5.1}  P_a = {:<8.5}  TP = {:.1} seg/s",
            p.b, p.acks_per_round, p.p_a_burst, p.throughput_sps
        );
    }
    println!("\nEach extra segment folded into one ACK removes a chance for the");
    println!("round to survive — ACKs are \"precious\" in high-speed mobility.");
    Ok(())
}
