fn main() -> Result<(), hsm::Error> {
    use hsm_core::prelude::*;
    use hsm_runtime::engine::run_dataset;
    use hsm_scenario::prelude::*;
    use hsm_simnet::time::SimDuration;
    let cfg = DatasetConfig {
        scale: 0.3,
        flow_duration: SimDuration::from_secs(120),
        ..Default::default()
    };
    let (flows, report) = run_dataset(&cfg)?;
    println!(
        "campaign: {} flows, {} workers, {:.0} events/s",
        report.flows,
        report.workers,
        report.events_per_sec()
    );
    let hs = aggregate(&flows);
    for row in calibration_report(&hs, None) {
        println!(
            "{:45} paper={:<10.5} ours={:<10.5} ratio={:.2}",
            row.metric,
            row.paper,
            row.measured,
            row.ratio()
        );
    }
    let summaries: Vec<_> = flows.iter().map(|f| f.outcome.summary().clone()).collect();
    let (evals, r) = evaluate_dataset(&summaries, &EstimateConfig::default());
    println!(
        "ALL: D_enh={:.3} D_pad={:.3} imp={:+.1}pp",
        r.mean_d_enhanced,
        r.mean_d_padhye,
        r.improvement_pp()
    );
    for prov in ["China Mobile", "China Unicom", "China Telecom"] {
        let of: Vec<_> = evals.iter().filter(|e| e.provider == prov).collect();
        let n = of.len() as f64;
        let de: f64 = of.iter().map(|e| e.d_enhanced).sum::<f64>() / n;
        let dp: f64 = of.iter().map(|e| e.d_padhye).sum::<f64>() / n;
        let er: f64 = of
            .iter()
            .map(|e| e.enhanced_sps / e.measured_sps)
            .sum::<f64>()
            / n;
        let pr: f64 = of
            .iter()
            .map(|e| e.padhye_sps / e.measured_sps)
            .sum::<f64>()
            / n;
        println!(
            "{:14} n={:3} D_enh={:.3} D_pad={:.3} enh/meas={:.2} pad/meas={:.2}",
            prov,
            of.len(),
            de,
            dp,
            er,
            pr
        );
    }
    Ok(())
}
