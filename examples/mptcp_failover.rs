//! MPTCP in high-speed mobility (§V-B): duplex-mode aggregation and
//! backup-mode redundant retransmission, compared against plain TCP on
//! the same channel.
//!
//! ```text
//! cargo run --release --example mptcp_failover
//! ```

use hsm::prelude::*;
use hsm::simnet::time::SimDuration;
use hsm::tcp::prelude::*;
use hsm::trace::prelude::*;

fn main() -> Result<(), hsm::Error> {
    let provider = Provider::ChinaTelecom; // the paper's biggest MPTCP win
    let sc = ScenarioConfig::builder()
        .provider(provider)
        .duration(SimDuration::from_secs(60))
        .seed(99)
        .build()?;
    let path = sc.path();
    let mobility = sc.mobility();
    let conn = sc.connection();

    println!(
        "Provider: {} (3G, poor corridor coverage)\n",
        provider.name()
    );

    // 1. Plain TCP.
    let plain = run_connection(sc.seed, &path, mobility.as_ref(), &conn);
    let plain_a = analyze_flow(&plain.trace, &TimeoutConfig::default());
    println!(
        "plain TCP:        {:7.1} seg/s   ({} timeouts, mean recovery {:.2} s)",
        plain_a.summary.throughput_sps, plain_a.summary.timeouts, plain_a.summary.mean_recovery_s
    );

    // 2. MPTCP duplex mode: two subflows over disjoint carriers.
    let duplex = run_mptcp_duplex(sc.seed, [&path, &path], mobility.as_ref(), &conn);
    let agg = duplex.aggregate_throughput_sps();
    println!(
        "MPTCP duplex:     {:7.1} seg/s   ({:+.1}% vs plain)",
        agg,
        (agg / plain_a.summary.throughput_sps - 1.0) * 100.0
    );

    // 3. MPTCP backup mode: single subflow, but timeout retransmissions
    //    are duplicated over a clean backup path — attacking `q` directly.
    let backup = run_with_backup_path(
        sc.seed,
        &path,
        &PathSpec::default(),
        mobility.as_ref(),
        &conn,
    );
    let backup_a = analyze_flow(&backup.trace, &TimeoutConfig::default());
    println!(
        "MPTCP backup:     {:7.1} seg/s   (q̂ {:.1}% -> {:.1}%, recovery {:.2} s -> {:.2} s)",
        backup_a.summary.throughput_sps,
        plain_a.summary.q_hat * 100.0,
        backup_a.summary.q_hat * 100.0,
        plain_a.summary.mean_recovery_s,
        backup_a.summary.mean_recovery_s
    );

    println!("\nDuplex mode doubles the pipes; backup mode keeps one pipe but");
    println!("makes timeout recovery reliable — the paper's point is that the");
    println!("*retransmission* path is the throughput bottleneck at 300 km/h.");
    Ok(())
}
