//! Explore the enhanced throughput model: how `p_d`, `P_a`, `q` and `W_m`
//! shape steady-state TCP throughput in high-speed mobility scenarios.
//!
//! ```text
//! cargo run --example model_explorer
//! ```

use hsm::model::prelude::*;

fn print_sweep(title: &str, points: &[SweepPoint]) {
    println!("\n{title}");
    println!("{:>10}  {:>12}", "x", "TP (seg/s)");
    for p in points {
        println!("{:>10.4}  {:>12.1}", p.x, p.throughput_sps);
    }
}

fn main() {
    let base = ModelParams::high_speed_example().with_w_m(10_000.0);
    println!("base parameters (high-speed example): {base:#?}");

    // Every intermediate quantity of one evaluation (Eq. 1 .. Eq. 21).
    let bd = EnhancedModel::as_published()
        .breakdown(&base)
        .expect("example parameters are valid");
    println!("\n— model breakdown —");
    println!("  X_P (Eq. 1)            {:.2} rounds", bd.x_p);
    println!("  E[X] (Eq. 2)           {:.2} rounds", bd.e_x);
    println!("  E[W] (Eq. 4)           {:.2} segments", bd.e_w);
    println!("  Q (Eq. 10)             {:.3}", bd.q_timeout);
    println!(
        "  E[R] (Eq. 11)          {:.2} timeouts/sequence",
        bd.to.e_r
    );
    println!(
        "  E[A^TO] (Eq. 13)       {:.2} s per timeout sequence",
        bd.to.e_a_to
    );
    println!("  window-limited branch  {}", bd.window_limited);
    println!(
        "  throughput             {:.1} segments/s",
        bd.throughput_sps
    );

    print_sweep(
        "— throughput vs data loss p_d —",
        &sweep_p_d(&base, &[0.001, 0.0025, 0.005, 0.0075, 0.015, 0.03]),
    );
    print_sweep(
        "— throughput vs ACK-burst loss P_a (the spurious-timeout driver) —",
        &sweep_p_a(&base, &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2]),
    );
    print_sweep(
        "— throughput vs recovery loss q (why MPTCP helps, §V-B) —",
        &sweep_q(&base, &[0.0, 0.1, 0.2726, 0.4, 0.6, 0.8]),
    );
    print_sweep(
        "— throughput vs advertised window W_m —",
        &sweep_w_m(&base, &[4.0, 8.0, 16.0, 32.0, 64.0, 128.0]),
    );

    // The §V-A delayed-ACK story.
    println!("\n— delayed ACKs under 10% per-ACK loss (window 16) —");
    println!(
        "{:>4}  {:>11}  {:>9}  {:>12}",
        "b", "ACKs/round", "P_a", "TP (seg/s)"
    );
    for p in delayed_ack_analysis(&base, 16.0, 0.10, &[1.0, 2.0, 4.0, 8.0]) {
        println!(
            "{:>4.0}  {:>11.1}  {:>9.5}  {:>12.1}",
            p.b, p.acks_per_round, p.p_a_burst, p.throughput_sps
        );
    }
    println!("\nLarger delayed-ACK windows concentrate each round's fate into");
    println!("fewer ACKs: P_a = p_a^(w/b) rises and spurious timeouts eat the");
    println!("efficiency gain — the paper's §V-A warning.");
}
