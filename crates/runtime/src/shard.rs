//! Multi-process sharded campaign execution with a bit-identical merge.
//!
//! An expanded [`CampaignSpec`](hsm_scenario::spec::CampaignSpec) is a
//! flat, deterministic list of [`ScenarioConfig`]s. This module
//! partitions that list across `N` shards — shard `k` owns the
//! round-robin slice of indices `{k, k + N, k + 2N, ...}` — so each
//! shard can run in its own OS process against a shared disk cache
//! ([`crate::cache`] publishes entries atomically exactly for this).
//!
//! Every shard writes one [`ShardReport`]: the deterministic summary
//! stream of its slice plus its own (non-deterministic, telemetry-only)
//! [`CampaignReport`]. [`merge_shards`] validates that the reports form
//! a complete, mutually consistent partition and interleaves the slices
//! back into campaign order, producing a [`CampaignResult`] whose
//! serde-JSON encoding is **bit-identical** for any shard count —
//! `--shards 4` and `--shards 1` must produce the same bytes, which the
//! CI smoke pins with `cmp`.
//!
//! Telemetry (wall-clock, worker histograms) is deliberately *excluded*
//! from [`CampaignResult`]: it differs run-to-run by construction, so it
//! stays in the per-shard reports where it is still inspectable.

use crate::cache::{publish_atomic, FlowCache, ENGINE_VERSION};
use crate::engine::{Campaign, CampaignReport};
use crate::error::EngineError;
use hsm_scenario::runner::ScenarioConfig;
use hsm_trace::summary::FlowSummary;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The result of executing one shard of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Name of the spec the campaign was expanded from.
    pub spec_name: String,
    /// Digest of the full expansion
    /// ([`hsm_scenario::spec::expansion_digest`]); merging rejects
    /// reports whose digests disagree.
    pub spec_digest: u64,
    /// Engine version that executed the shard.
    pub engine_version: String,
    /// This shard's index, `0 <= shard < shards`.
    pub shard: usize,
    /// Total shard count of the partition.
    pub shards: usize,
    /// Flows in the *full* campaign (all shards together).
    pub flows_total: usize,
    /// Deterministic summary stream of this shard's slice, in slice
    /// order (campaign indices `shard`, `shard + shards`, ...).
    pub summaries: Vec<FlowSummary>,
    /// Telemetry of this shard's run (wall-clock, cache and worker
    /// counters) — non-deterministic, never merged into the aggregate.
    pub report: CampaignReport,
}

/// The deterministic merged artifact of a sharded campaign.
///
/// Contains only fields that are a pure function of the spec: its
/// serde-JSON bytes are identical for any shard count, worker count and
/// cache state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Name of the spec the campaign was expanded from.
    pub spec_name: String,
    /// Digest of the full expansion.
    pub spec_digest: u64,
    /// Engine version that executed the campaign.
    pub engine_version: String,
    /// Flows in the campaign.
    pub flows: usize,
    /// The full summary stream, in campaign (index) order.
    pub summaries: Vec<FlowSummary>,
}

/// Campaign indices owned by shard `shard` of `shards`: the round-robin
/// slice `{shard, shard + shards, ...}` below `total`.
pub fn shard_indices(total: usize, shard: usize, shards: usize) -> impl Iterator<Item = usize> {
    (shard..total).step_by(shards.max(1))
}

/// Number of flows shard `shard` of `shards` owns out of `total`.
pub fn shard_len(total: usize, shard: usize, shards: usize) -> usize {
    if shards == 0 {
        return 0;
    }
    total / shards + usize::from(shard < total % shards)
}

/// The canonical file name of a shard report: `shard-K-of-N.json`.
pub fn shard_file_name(shard: usize, shards: usize) -> String {
    format!("shard-{shard}-of-{shards}.json")
}

fn merge_err(detail: impl Into<String>) -> EngineError {
    EngineError::ShardMerge {
        detail: detail.into(),
    }
}

/// Executes shard `shard` of `shards` over the expanded campaign
/// `configs`, sharing `cache` with any concurrently running shards.
///
/// The slice is the round-robin partition of [`shard_indices`]; an empty
/// slice (more shards than flows) is valid and produces an empty summary
/// stream.
///
/// # Errors
///
/// Returns [`EngineError::ShardMerge`] for an invalid partition
/// (`shards == 0` or `shard >= shards`), and propagates engine failures
/// from the underlying campaign run.
pub fn run_shard(
    spec_name: &str,
    spec_digest: u64,
    configs: &[ScenarioConfig],
    shard: usize,
    shards: usize,
    workers: Option<usize>,
    cache: &FlowCache,
) -> Result<ShardReport, EngineError> {
    if shards == 0 {
        return Err(merge_err("shard count must be >= 1"));
    }
    if shard >= shards {
        return Err(merge_err(format!(
            "shard index {shard} out of range for {shards} shards"
        )));
    }
    let slice: Vec<ScenarioConfig> = shard_indices(configs.len(), shard, shards)
        .map(|i| configs[i].clone())
        .collect();
    let mut builder = Campaign::builder().configs(slice);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    let output = builder.build()?.run_with_cache(cache)?;
    Ok(ShardReport {
        spec_name: spec_name.to_owned(),
        spec_digest,
        engine_version: ENGINE_VERSION.to_owned(),
        shard,
        shards,
        flows_total: configs.len(),
        summaries: output.runs.iter().map(|r| r.summary.clone()).collect(),
        report: output.report,
    })
}

/// Folds a complete set of shard reports back into campaign order.
///
/// Validates that the reports form one consistent partition — same spec
/// name/digest/engine version/total, every shard `0..N` present exactly
/// once, every slice the exact round-robin length — then interleaves:
/// merged flow `i` is entry `i / N` of shard `i % N`.
///
/// # Errors
///
/// Returns [`EngineError::ShardMerge`] naming the first inconsistency.
pub fn merge_shards(reports: &[ShardReport]) -> Result<CampaignResult, EngineError> {
    let first = reports
        .first()
        .ok_or_else(|| merge_err("no shard reports to merge"))?;
    let shards = first.shards;
    if shards == 0 {
        return Err(merge_err("shard reports declare a shard count of 0"));
    }
    if reports.len() != shards {
        return Err(merge_err(format!(
            "expected {shards} shard reports, got {}",
            reports.len()
        )));
    }
    let mut by_shard: Vec<Option<&ShardReport>> = vec![None; shards];
    for r in reports {
        if r.shards != shards {
            return Err(merge_err(format!(
                "shard {} declares {} shards, expected {shards}",
                r.shard, r.shards
            )));
        }
        if r.spec_name != first.spec_name {
            return Err(merge_err(format!(
                "shard {} is from spec `{}`, expected `{}`",
                r.shard, r.spec_name, first.spec_name
            )));
        }
        if r.spec_digest != first.spec_digest {
            return Err(merge_err(format!(
                "shard {} has spec digest {:016x}, expected {:016x}",
                r.shard, r.spec_digest, first.spec_digest
            )));
        }
        if r.engine_version != first.engine_version {
            return Err(merge_err(format!(
                "shard {} ran engine `{}`, expected `{}`",
                r.shard, r.engine_version, first.engine_version
            )));
        }
        if r.flows_total != first.flows_total {
            return Err(merge_err(format!(
                "shard {} declares {} total flows, expected {}",
                r.shard, r.flows_total, first.flows_total
            )));
        }
        if r.shard >= shards {
            return Err(merge_err(format!(
                "shard index {} out of range for {shards} shards",
                r.shard
            )));
        }
        if by_shard[r.shard].replace(r).is_some() {
            return Err(merge_err(format!("shard {} appears twice", r.shard)));
        }
    }
    let total = first.flows_total;
    for (k, slot) in by_shard.iter().enumerate() {
        let r = slot.ok_or_else(|| merge_err(format!("shard {k} of {shards} is missing")))?;
        let expected = shard_len(total, k, shards);
        if r.summaries.len() != expected {
            return Err(merge_err(format!(
                "shard {k} carries {} summaries, expected {expected}",
                r.summaries.len()
            )));
        }
    }
    let mut summaries = Vec::with_capacity(total);
    for i in 0..total {
        let r = by_shard[i % shards].expect("all shards verified present");
        summaries.push(r.summaries[i / shards].clone());
    }
    Ok(CampaignResult {
        spec_name: first.spec_name.clone(),
        spec_digest: first.spec_digest,
        engine_version: first.engine_version.clone(),
        flows: total,
        summaries,
    })
}

/// Writes `report` to `dir` under its canonical [`shard_file_name`],
/// atomically (temp file + rename, the same protocol as the disk cache),
/// and returns the published path.
///
/// # Errors
///
/// Returns [`EngineError::ShardMerge`] when encoding or I/O fails.
pub fn write_shard_report(dir: &Path, report: &ShardReport) -> Result<PathBuf, EngineError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        merge_err(format!(
            "cannot create shard directory {}: {e}",
            dir.display()
        ))
    })?;
    let text = serde_json::to_string(report)
        .map_err(|e| merge_err(format!("cannot encode shard report: {e}")))?;
    let path = dir.join(shard_file_name(report.shard, report.shards));
    publish_atomic(dir, &path, text.as_bytes())
        .map_err(|e| merge_err(format!("cannot publish shard report: {e}")))?;
    Ok(path)
}

/// Reads one shard report back from `path`.
///
/// # Errors
///
/// Returns [`EngineError::ShardMerge`] when the file cannot be read or
/// parsed.
pub fn read_shard_report(path: &Path) -> Result<ShardReport, EngineError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| merge_err(format!("cannot read shard report {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| merge_err(format!("cannot parse shard report {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use hsm_scenario::runner::Motion;
    use hsm_simnet::time::SimDuration;

    fn configs(n: u32) -> Vec<ScenarioConfig> {
        (0..n)
            .map(|i| {
                ScenarioConfig::builder()
                    .motion(Motion::Stationary)
                    .seed(u64::from(i) + 1)
                    .duration(SimDuration::from_secs(2))
                    .flow(i)
                    .build()
                    .expect("valid")
            })
            .collect()
    }

    fn run_partition(cfgs: &[ScenarioConfig], shards: usize) -> CampaignResult {
        let cache = FlowCache::new(CacheConfig::memory_only());
        let reports: Vec<ShardReport> = (0..shards)
            .map(|k| run_shard("t", 0xfeed, cfgs, k, shards, Some(2), &cache).unwrap())
            .collect();
        merge_shards(&reports).unwrap()
    }

    #[test]
    fn round_robin_partition_covers_every_index_once() {
        for (total, shards) in [(0usize, 3usize), (1, 4), (7, 3), (8, 4), (9, 2)] {
            let mut seen = vec![0u32; total];
            let mut len_sum = 0;
            for k in 0..shards {
                let idx: Vec<usize> = shard_indices(total, k, shards).collect();
                assert_eq!(idx.len(), shard_len(total, k, shards), "{total}/{shards}");
                len_sum += idx.len();
                for i in idx {
                    seen[i] += 1;
                }
            }
            assert_eq!(len_sum, total);
            assert!(seen.iter().all(|&c| c == 1), "{total}/{shards}: {seen:?}");
        }
    }

    /// The acceptance-criteria core: merged results must be bit-identical
    /// (exact serde-JSON bytes) for any shard count.
    #[test]
    fn merged_result_is_bit_identical_for_any_shard_count() {
        let cfgs = configs(7);
        let reference = serde_json::to_string(&run_partition(&cfgs, 1)).unwrap();
        for shards in [2usize, 3, 4] {
            let merged = serde_json::to_string(&run_partition(&cfgs, shards)).unwrap();
            assert_eq!(merged, reference, "{shards}-shard merge diverged");
        }
    }

    #[test]
    fn more_shards_than_flows_still_merges() {
        let cfgs = configs(2);
        let merged = run_partition(&cfgs, 4);
        assert_eq!(merged.flows, 2);
        assert_eq!(merged.summaries.len(), 2);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&run_partition(&cfgs, 1)).unwrap()
        );
    }

    #[test]
    fn run_shard_rejects_bad_partitions() {
        let cache = FlowCache::new(CacheConfig::memory_only());
        let cfgs = configs(2);
        for (shard, shards) in [(0usize, 0usize), (2, 2), (5, 3)] {
            let err = run_shard("t", 0, &cfgs, shard, shards, None, &cache).unwrap_err();
            assert!(matches!(err, EngineError::ShardMerge { .. }), "{err}");
        }
    }

    #[test]
    fn merge_rejects_incomplete_or_inconsistent_partitions() {
        let cfgs = configs(4);
        let cache = FlowCache::new(CacheConfig::memory_only());
        let r0 = run_shard("t", 7, &cfgs, 0, 2, Some(1), &cache).unwrap();
        let r1 = run_shard("t", 7, &cfgs, 1, 2, Some(1), &cache).unwrap();

        let detail = |reports: &[ShardReport]| match merge_shards(reports).unwrap_err() {
            EngineError::ShardMerge { detail } => detail,
            other => panic!("expected ShardMerge, got {other:?}"),
        };

        assert!(detail(&[]).contains("no shard reports"));
        assert!(detail(std::slice::from_ref(&r0)).contains("expected 2 shard reports"));
        assert!(detail(&[r0.clone(), r0.clone()]).contains("appears twice"));

        let mut wrong_digest = r1.clone();
        wrong_digest.spec_digest = 8;
        assert!(detail(&[r0.clone(), wrong_digest]).contains("spec digest"));

        let mut wrong_name = r1.clone();
        wrong_name.spec_name = "other".into();
        assert!(detail(&[r0.clone(), wrong_name]).contains("spec `other`"));

        let mut wrong_engine = r1.clone();
        wrong_engine.engine_version = "hsm-runtime/0".into();
        assert!(detail(&[r0.clone(), wrong_engine]).contains("engine"));

        let mut short_slice = r1.clone();
        short_slice.summaries.pop();
        assert!(detail(&[r0.clone(), short_slice]).contains("expected 2"));

        assert!(merge_shards(&[r0, r1]).is_ok());
    }

    #[test]
    fn shard_reports_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("hsm_shard_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfgs = configs(3);
        let cache = FlowCache::new(CacheConfig::memory_only());
        let report = run_shard("disk", 42, &cfgs, 1, 2, Some(1), &cache).unwrap();
        let path = write_shard_report(&dir, &report).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            "shard-1-of-2.json"
        );
        let back = read_shard_report(&path).unwrap();
        assert_eq!(back, report);
        assert!(matches!(
            read_shard_report(&dir.join("shard-9-of-9.json")).unwrap_err(),
            EngineError::ShardMerge { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
