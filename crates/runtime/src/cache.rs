//! Content-addressed memoization of completed flows.
//!
//! A flow is a pure function of its [`ScenarioConfig`] and the engine
//! version, so its [`FlowSummary`] can be cached under a content hash of
//! exactly those inputs. The cache has two tiers:
//!
//! * an in-memory LRU tier bounded by entry count, and
//! * an optional on-disk JSON tier (one file per flow) that survives the
//!   process and powers warm `repro` reruns.
//!
//! Disk entries carry a hash of their own payload; a corrupted entry
//! fails the hash check, is counted, and is transparently re-simulated —
//! the cache can never silently alter campaign results. Because the
//! summary's JSON encoding round-trips floats exactly (shortest
//! round-trip formatting), a cache hit is *bit-identical* to a fresh
//! simulation.

use crate::error::CacheError;
use hsm_scenario::runner::ScenarioConfig;
use hsm_trace::summary::FlowSummary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag mixed into every cache key.
///
/// Bump whenever simulation or analysis semantics change: old cached
/// flows then miss instead of resurfacing stale results.
pub const ENGINE_VERSION: &str = "hsm-runtime/1";

/// 64-bit FNV-1a hash — stable across runs, platforms and Rust versions
/// (unlike `DefaultHasher`, which is randomly keyed per process).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content hash identifying one (configuration, engine-version) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u64);

impl CacheKey {
    /// Computes the key for a scenario configuration under the current
    /// [`ENGINE_VERSION`].
    pub fn of(config: &ScenarioConfig) -> CacheKey {
        let encoded =
            serde_json::to_string(config).expect("ScenarioConfig serialization is infallible");
        let mut bytes = encoded.into_bytes();
        bytes.extend_from_slice(ENGINE_VERSION.as_bytes());
        CacheKey(fnv1a(&bytes))
    }

    /// The disk-tier file name for this key.
    fn file_name(self) -> String {
        format!("flow-{:016x}.json", self.0)
    }
}

/// Cache sizing and placement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Maximum entries held by the in-memory LRU tier (`0` disables the
    /// memory tier entirely).
    pub memory_entries: usize,
    /// Directory of the on-disk JSON tier (`None` disables it).
    pub disk_dir: Option<PathBuf>,
}

impl CacheConfig {
    /// A memory-only cache big enough for the full 255-flow dataset plus
    /// sweeps.
    pub fn memory_only() -> CacheConfig {
        CacheConfig {
            memory_entries: 4096,
            disk_dir: None,
        }
    }

    /// A two-tier cache persisting under `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>) -> CacheConfig {
        CacheConfig {
            memory_entries: 4096,
            disk_dir: Some(dir.into()),
        }
    }
}

/// Counters describing how the cache behaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the memory tier.
    pub memory_hits: u64,
    /// Lookups served from the disk tier.
    pub disk_hits: u64,
    /// Lookups that found nothing valid.
    pub misses: u64,
    /// Disk entries rejected by the payload-hash integrity check.
    pub corrupt_entries: u64,
    /// Entries evicted from the memory tier by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Total successful lookups across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }
}

/// One record of the disk tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DiskEntry {
    /// The cache key, echoed for self-description.
    key: u64,
    /// Engine version that produced the payload.
    engine_version: String,
    /// FNV-1a hash of the canonical JSON encoding of `summary`.
    payload_hash: u64,
    /// The memoized flow summary.
    summary: FlowSummary,
}

struct CacheInner {
    map: HashMap<u64, FlowSummary>,
    /// LRU order, least-recent first. Entry count stays small (thousands),
    /// so the O(len) reorder on hit is noise next to a flow simulation.
    order: Vec<u64>,
    stats: CacheStats,
}

/// The two-tier memoization cache shared by campaign workers.
pub struct FlowCache {
    inner: Mutex<CacheInner>,
    config: CacheConfig,
}

impl std::fmt::Debug for FlowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FlowCache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> FlowCache {
        FlowCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
                stats: CacheStats::default(),
            }),
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// A snapshot of the behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Number of entries currently in the memory tier.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True when the memory tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a flow up, consulting the memory tier then the disk tier.
    ///
    /// Disk hits are promoted into the memory tier. Corrupt disk entries
    /// (bad JSON, wrong key/version, payload-hash mismatch) count as
    /// misses and bump `corrupt_entries`.
    pub fn lookup(&self, key: CacheKey) -> Option<FlowSummary> {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(summary) = inner.map.get(&key.0).cloned() {
            inner.stats.memory_hits += 1;
            // Move-to-back keeps hot entries resident.
            if let Some(pos) = inner.order.iter().position(|k| *k == key.0) {
                inner.order.remove(pos);
                inner.order.push(key.0);
            }
            return Some(summary);
        }
        match self.disk_lookup(key) {
            DiskLookup::Hit(summary) => {
                inner.stats.disk_hits += 1;
                Self::insert_memory(&mut inner, &self.config, key, summary.clone());
                Some(summary)
            }
            DiskLookup::Corrupt => {
                inner.stats.corrupt_entries += 1;
                inner.stats.misses += 1;
                None
            }
            DiskLookup::Absent => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a completed flow in both tiers.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the disk tier cannot be written; the
    /// memory tier is updated regardless.
    pub fn insert(&self, key: CacheKey, summary: &FlowSummary) -> Result<(), CacheError> {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            Self::insert_memory(&mut inner, &self.config, key, summary.clone());
        }
        if let Some(dir) = &self.config.disk_dir {
            self.disk_insert(dir, key, summary)?;
        }
        Ok(())
    }

    fn insert_memory(
        inner: &mut CacheInner,
        config: &CacheConfig,
        key: CacheKey,
        summary: FlowSummary,
    ) {
        if config.memory_entries == 0 {
            return;
        }
        if inner.map.insert(key.0, summary).is_none() {
            inner.order.push(key.0);
            while inner.map.len() > config.memory_entries {
                let oldest = inner.order.remove(0);
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.config
            .disk_dir
            .as_ref()
            .map(|d| d.join(key.file_name()))
    }

    fn disk_lookup(&self, key: CacheKey) -> DiskLookup {
        let Some(path) = self.disk_path(key) else {
            return DiskLookup::Absent;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return DiskLookup::Absent;
        };
        match verify_disk_entry(&text, key) {
            Some(summary) => DiskLookup::Hit(summary),
            None => DiskLookup::Corrupt,
        }
    }

    fn disk_insert(
        &self,
        dir: &Path,
        key: CacheKey,
        summary: &FlowSummary,
    ) -> Result<(), CacheError> {
        std::fs::create_dir_all(dir).map_err(|e| CacheError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let payload =
            serde_json::to_string(summary).map_err(|e| CacheError::Encode(e.to_string()))?;
        let entry = DiskEntry {
            key: key.0,
            engine_version: ENGINE_VERSION.to_owned(),
            payload_hash: fnv1a(payload.as_bytes()),
            summary: summary.clone(),
        };
        let text = serde_json::to_string(&entry).map_err(|e| CacheError::Encode(e.to_string()))?;
        let path = dir.join(key.file_name());
        std::fs::write(&path, text).map_err(|e| CacheError::Io {
            path: path.clone(),
            message: e.to_string(),
        })
    }
}

enum DiskLookup {
    Hit(FlowSummary),
    Corrupt,
    Absent,
}

/// Parses and integrity-checks one disk-tier entry; `None` = corrupt.
fn verify_disk_entry(text: &str, key: CacheKey) -> Option<FlowSummary> {
    let entry: DiskEntry = serde_json::from_str(text).ok()?;
    if entry.key != key.0 || entry.engine_version != ENGINE_VERSION {
        return None;
    }
    let payload = serde_json::to_string(&entry.summary).ok()?;
    if fnv1a(payload.as_bytes()) != entry.payload_hash {
        return None;
    }
    Some(entry.summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(flow: u32) -> FlowSummary {
        FlowSummary {
            flow,
            provider: "China Mobile".into(),
            scenario: "high-speed".into(),
            rtt_s: 0.065,
            p_d: 0.0075,
            data_sent: 1000,
            p_a: 0.006,
            p_a_burst: 0.05,
            acks_per_round: 12.0,
            q_hat: 0.27,
            timeouts: 4,
            spurious_timeouts: 2,
            timeout_sequences: 3,
            mean_recovery_s: 5.0,
            t_rto_s: 0.8,
            loss_indications: 5,
            fast_retransmissions: 2,
            w_m: 48,
            b: 2,
            throughput_sps: 321.5,
            goodput_sps: 300.25,
            duration_s: 120.0,
        }
    }

    #[test]
    fn keys_are_stable_and_content_addressed() {
        let a = ScenarioConfig::default();
        let b = ScenarioConfig {
            seed: 2,
            ..Default::default()
        };
        assert_eq!(CacheKey::of(&a), CacheKey::of(&a));
        assert_ne!(CacheKey::of(&a), CacheKey::of(&b));
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 2,
            disk_dir: None,
        });
        let (k1, k2, k3) = (CacheKey(1), CacheKey(2), CacheKey(3));
        cache.insert(k1, &summary(1)).unwrap();
        cache.insert(k2, &summary(2)).unwrap();
        assert_eq!(cache.lookup(k1).unwrap().flow, 1); // k1 now most-recent
        cache.insert(k3, &summary(3)).unwrap(); // evicts k2, the LRU entry
        assert!(cache.lookup(k2).is_none());
        assert_eq!(cache.lookup(k1).unwrap().flow, 1);
        assert_eq!(cache.lookup(k3).unwrap().flow, 3);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 3);
    }

    #[test]
    fn disk_tier_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
        });
        let key = CacheKey(0xabcd);
        let s = summary(9);
        cache.insert(key, &s).unwrap();
        assert_eq!(cache.lookup(key).as_ref(), Some(&s));

        // Corrupt the payload while keeping the JSON valid: only the
        // integrity hash can catch this.
        let path = dir.join(key.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = text.replace(
            "\"provider\":\"China Mobile\"",
            "\"provider\":\"China Mobbed\"",
        );
        assert_ne!(bad, text, "corruption must change the payload");
        std::fs::write(&path, bad).unwrap();
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_memory_tier() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: None,
        });
        cache.insert(CacheKey(5), &summary(5)).unwrap();
        assert!(cache.is_empty());
        assert!(cache.lookup(CacheKey(5)).is_none());
    }
}
