//! Content-addressed memoization of completed flows.
//!
//! A flow is a pure function of its [`ScenarioConfig`] and the engine
//! version, so its [`FlowSummary`] can be cached under a content hash of
//! exactly those inputs. The cache has two tiers:
//!
//! * an in-memory LRU tier bounded by entry count and split into
//!   independently locked shards so campaign workers do not serialize on
//!   a single mutex, and
//! * an optional on-disk tier (one file per flow) that survives the
//!   process and powers warm `repro` reruns. Entries are published
//!   atomically (staged in a temp file, then renamed into place), so one
//!   directory can be shared by any number of concurrent writer threads
//!   *and OS processes* — sharded `repro run --shards N` campaigns point
//!   every shard at the same tier — while readers stay lock-free.
//!   Opening a disk tier sweeps staging files orphaned by killed writers.
//!
//! New disk entries use the CRC-protected binary format of
//! [`crate::codec`], which decodes in one allocation-light forward pass;
//! legacy JSON entries written by earlier releases are still read
//! transparently (and counted, see [`CacheStats::legacy_json_hits`]), so
//! pre-existing tiers keep hitting — [`migrate_disk_tier`] (surfaced as
//! `repro cache migrate`) rewrites such a tier in place. A corrupted
//! entry of either format fails its integrity check, is counted, and is
//! transparently re-simulated — the cache can never silently alter
//! campaign results. Both encodings round-trip floats exactly (raw bits
//! in binary, shortest round-trip formatting in JSON), so a cache hit is
//! *bit-identical* to a fresh simulation.
//!
//! Cache keys are computed by streaming the configuration's canonical
//! JSON bytes straight into the FNV-1a state — no intermediate string is
//! allocated — and the resulting digests are pinned to the historical
//! allocate-then-hash values, so disk tiers written by earlier releases
//! keep hitting.

use crate::codec;
use crate::error::CacheError;
use hsm_scenario::provider::Provider;
use hsm_scenario::runner::{Motion, ScenarioConfig};
use hsm_tcp::cc::Algorithm;
use hsm_tcp::recovery::Recovery;
use hsm_trace::summary::FlowSummary;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag mixed into every cache key.
///
/// Bump whenever simulation or analysis semantics change: old cached
/// flows then miss instead of resurfacing stale results.
pub const ENGINE_VERSION: &str = "hsm-runtime/1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash — stable across runs, platforms and Rust versions
/// (unlike `DefaultHasher`, which is randomly keyed per process).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Incremental FNV-1a state: feed byte slices, take the digest at the
/// end. Hashing a stream in pieces yields exactly the digest of the
/// concatenated bytes, which is what lets [`CacheKey::of`] skip the
/// intermediate JSON string.
struct FnvStream {
    hash: u64,
}

impl FnvStream {
    fn new() -> FnvStream {
        FnvStream { hash: FNV_OFFSET }
    }

    fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Streams the shortest decimal rendering of `v`, as `serde_json`
    /// prints unsigned integers, without allocating.
    fn uint(&mut self, v: u64) -> &mut Self {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let digits = i;
        self.bytes(&buf[digits..])
    }

    /// Streams `v` exactly as `serde_json` prints floats: `null` for
    /// non-finite values, one forced decimal for whole numbers below
    /// `1e16` (`"3.0"`), shortest round-trip otherwise (`"0.125"`). The
    /// congestion-control parameters in [`ScenarioConfig`] are floats, so
    /// key/legacy agreement needs byte-exact float rendering too.
    fn float(&mut self, v: f64) -> &mut Self {
        if !v.is_finite() {
            self.bytes(b"null")
        } else if v.fract() == 0.0 && v.abs() < 1e16 {
            let mut buf = [0u8; 32];
            let text = fmt_to(&mut buf, format_args!("{v:.1}"));
            self.bytes(text)
        } else {
            let mut buf = [0u8; 32];
            let text = fmt_to(&mut buf, format_args!("{v}"));
            self.bytes(text)
        }
    }
}

/// Formats into a stack buffer, avoiding the `String` allocation the
/// streaming hasher exists to skip. Shortest round-trip `f64` output fits
/// in 24 bytes; the buffer leaves headroom.
fn fmt_to<'a>(buf: &'a mut [u8; 32], args: std::fmt::Arguments<'_>) -> &'a [u8] {
    use std::io::Write;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    cursor.write_fmt(args).expect("float formatting fits");
    let len = cursor.position() as usize;
    &buf[..len]
}

/// Content hash identifying one (configuration, engine-version) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u64);

impl CacheKey {
    /// Computes the key for a scenario configuration under the current
    /// [`ENGINE_VERSION`].
    ///
    /// Streams the exact byte sequence `serde_json::to_string(config)`
    /// would produce (declaration-order fields, compact separators, unit
    /// enum variants as strings, durations as microsecond integers)
    /// followed by the engine version — so the digest equals the
    /// historical allocate-then-hash value and on-disk tiers written by
    /// earlier releases stay valid. A unit test pins this equivalence
    /// against the real serializer.
    pub fn of(config: &ScenarioConfig) -> CacheKey {
        let provider: &[u8] = match config.provider {
            Provider::ChinaMobile => b"ChinaMobile",
            Provider::ChinaUnicom => b"ChinaUnicom",
            Provider::ChinaTelecom => b"ChinaTelecom",
        };
        let motion: &[u8] = match config.motion {
            Motion::HighSpeed => b"HighSpeed",
            Motion::Stationary => b"Stationary",
        };
        let mut h = FnvStream::new();
        h.bytes(b"{\"provider\":\"")
            .bytes(provider)
            .bytes(b"\",\"motion\":\"")
            .bytes(motion)
            .bytes(b"\",\"seed\":")
            .uint(config.seed)
            .bytes(b",\"duration\":")
            .uint(config.duration.as_micros())
            .bytes(b",\"w_m\":")
            .uint(u64::from(config.w_m))
            .bytes(b",\"b\":")
            .uint(u64::from(config.b))
            .bytes(b",\"flow\":")
            .uint(u64::from(config.flow));
        // The config serializer omits the congestion-control field when it
        // is the default (Reno), which keeps every pre-zoo digest — and
        // therefore every pre-zoo disk tier — exactly as it was.
        match config.cc {
            Algorithm::Reno => {}
            Algorithm::Bbr => {
                h.bytes(b",\"cc\":\"Bbr\"");
            }
            Algorithm::Veno { beta } => {
                h.bytes(b",\"cc\":{\"Veno\":{\"beta\":")
                    .float(beta)
                    .bytes(b"}}");
            }
            Algorithm::Cubic { c, beta } => {
                h.bytes(b",\"cc\":{\"Cubic\":{\"c\":")
                    .float(c)
                    .bytes(b",\"beta\":")
                    .float(beta)
                    .bytes(b"}}");
            }
            Algorithm::Compound {
                alpha,
                beta,
                k,
                gamma,
            } => {
                h.bytes(b",\"cc\":{\"Compound\":{\"alpha\":")
                    .float(alpha)
                    .bytes(b",\"beta\":")
                    .float(beta)
                    .bytes(b",\"k\":")
                    .float(k)
                    .bytes(b",\"gamma\":")
                    .float(gamma)
                    .bytes(b"}}");
            }
        }
        // Same omit-when-default trick for the loss-recovery strategy:
        // `recovery: None` configurations keep their pre-recovery digests,
        // so existing disk tiers stay warm.
        if config.recovery != Recovery::None {
            h.bytes(b",\"recovery\":\"")
                .bytes(config.recovery.label().as_bytes())
                .bytes(b"\"");
        }
        h.bytes(b"}").bytes(ENGINE_VERSION.as_bytes());
        CacheKey(h.hash)
    }

    /// The disk-tier file name for this key.
    fn file_name(self) -> String {
        format!("flow-{:016x}.json", self.0)
    }
}

/// Cache sizing and placement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheConfig {
    /// Maximum entries held by the in-memory LRU tier (`0` disables the
    /// memory tier entirely). The bound is enforced per shard, so the
    /// resident total can exceed it by at most `shards - 1` entries.
    pub memory_entries: usize,
    /// Directory of the on-disk JSON tier (`None` disables it).
    pub disk_dir: Option<PathBuf>,
    /// Number of independently locked memory-tier shards. Rounded up to
    /// a power of two; `0` picks a default sized for worker-count
    /// parallelism. Use `1` for a single globally ordered LRU.
    pub shards: usize,
}

/// Shard count used when [`CacheConfig::shards`] is `0`.
const DEFAULT_SHARDS: usize = 8;

impl CacheConfig {
    /// A memory-only cache big enough for the full 255-flow dataset plus
    /// sweeps.
    pub fn memory_only() -> CacheConfig {
        CacheConfig {
            memory_entries: 4096,
            disk_dir: None,
            shards: 0,
        }
    }

    /// A two-tier cache persisting under `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>) -> CacheConfig {
        CacheConfig {
            memory_entries: 4096,
            disk_dir: Some(dir.into()),
            shards: 0,
        }
    }

    fn shard_count(&self) -> usize {
        match self.shards {
            0 => DEFAULT_SHARDS,
            n => n.next_power_of_two(),
        }
    }
}

/// Counters describing how the cache behaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the memory tier.
    pub memory_hits: u64,
    /// Lookups served from the disk tier.
    pub disk_hits: u64,
    /// Lookups that found nothing valid.
    pub misses: u64,
    /// Disk entries rejected by the integrity check (CRC for binary
    /// entries, payload hash for legacy JSON).
    pub corrupt_entries: u64,
    /// Entries evicted from the memory tier by the LRU policy.
    pub evictions: u64,
    /// Disk hits served from legacy JSON entries (written before the
    /// binary format). A persistently non-zero count on a long-lived
    /// tier suggests running `repro cache migrate`.
    pub legacy_json_hits: u64,
}

impl CacheStats {
    /// Total successful lookups across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    fn absorb(&mut self, other: &CacheStats) {
        self.memory_hits += other.memory_hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.corrupt_entries += other.corrupt_entries;
        self.evictions += other.evictions;
        self.legacy_json_hits += other.legacy_json_hits;
    }
}

/// One record of the legacy JSON disk tier (still read, no longer
/// written outside tests — see [`crate::codec`] for the current format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DiskEntry {
    /// The cache key, echoed for self-description.
    key: u64,
    /// Engine version that produced the payload.
    engine_version: String,
    /// FNV-1a hash of the canonical JSON encoding of `summary`.
    payload_hash: u64,
    /// The memoized flow summary.
    summary: FlowSummary,
}

/// A resident entry: the payload plus the stamp of its most recent
/// touch, which identifies the one live pair in the recency queue.
struct Slot {
    summary: FlowSummary,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Slot>,
    /// Recency queue, least-recent first, of `(key, stamp)` pairs. A
    /// touch pushes a fresh pair instead of repositioning the old one —
    /// O(1) instead of an O(len) scan — leaving a stale pair behind that
    /// eviction and compaction skip by comparing stamps.
    order: VecDeque<(u64, u64)>,
    /// Monotonic touch counter; stamps are never reused within a shard.
    clock: u64,
    stats: CacheStats,
}

impl Shard {
    /// Sweeps stale pairs once they dominate the queue, keeping every
    /// touch O(1) amortized and the queue O(live entries).
    fn compact(&mut self) {
        if self.order.len() > 4 * self.map.len().max(8) {
            self.order
                .retain(|&(k, s)| self.map.get(&k).is_some_and(|slot| slot.stamp == s));
        }
    }
}

/// The two-tier memoization cache shared by campaign workers.
///
/// The memory tier is split into power-of-two many shards, each behind
/// its own mutex; a lookup or insert locks only the shard its key hashes
/// to, so workers touching different keys proceed in parallel.
pub struct FlowCache {
    shards: Vec<Mutex<Shard>>,
    /// `shards.len() - 1`; shard index is `mixed_key & mask`.
    mask: usize,
    /// Per-shard entry bound derived from `config.memory_entries`.
    per_shard: usize,
    config: CacheConfig,
}

impl std::fmt::Debug for FlowCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Staging files older than this are considered orphaned by a killed
/// writer and swept when the disk tier is opened. Generously above any
/// plausible write-and-rename window, so a concurrent live writer's
/// staging file is never touched.
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(60);

impl FlowCache {
    /// Creates an empty cache with the given configuration.
    ///
    /// Opening a disk tier sweeps stale `.*.tmp` staging files left
    /// behind by writers that were killed between staging and renaming
    /// (only files older than [`STALE_TEMP_AGE`], so live concurrent
    /// writers are unaffected).
    pub fn new(config: CacheConfig) -> FlowCache {
        if let Some(dir) = &config.disk_dir {
            sweep_stale_temp_files(dir);
        }
        let shard_count = config.shard_count();
        let per_shard = if config.memory_entries == 0 {
            0
        } else {
            config.memory_entries.div_ceil(shard_count)
        };
        FlowCache {
            shards: (0..shard_count).map(|_| Mutex::default()).collect(),
            mask: shard_count - 1,
            per_shard,
            config,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of memory-tier shards actually allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A snapshot of the behaviour counters, aggregated across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.absorb(&shard.lock().expect("cache lock").stats);
        }
        total
    }

    /// Number of entries currently in the memory tier.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").map.len())
            .sum()
    }

    /// True when the memory tier holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: CacheKey) -> &Mutex<Shard> {
        // Fold the high half in before masking: FNV mixes new bytes into
        // the low bits last, so the high half carries most of the
        // avalanche for short inputs.
        let mixed = key.0 ^ (key.0 >> 32);
        &self.shards[(mixed as usize) & self.mask]
    }

    /// Looks a flow up, consulting the memory tier then the disk tier.
    ///
    /// Disk hits are promoted into the memory tier. Corrupt disk entries
    /// (bad JSON, wrong key/version, payload-hash mismatch) count as
    /// misses and bump `corrupt_entries`.
    pub fn lookup(&self, key: CacheKey) -> Option<FlowSummary> {
        let mut guard = self.shard_for(key).lock().expect("cache lock");
        let shard = &mut *guard;
        if let Some(slot) = shard.map.get_mut(&key.0) {
            shard.clock += 1;
            slot.stamp = shard.clock;
            shard.order.push_back((key.0, slot.stamp));
            shard.stats.memory_hits += 1;
            let summary = slot.summary.clone();
            shard.compact();
            return Some(summary);
        }
        match self.disk_lookup(key) {
            DiskLookup::Hit { summary, legacy } => {
                shard.stats.disk_hits += 1;
                if legacy {
                    shard.stats.legacy_json_hits += 1;
                }
                Self::insert_memory(shard, self.per_shard, key, summary.clone());
                Some(summary)
            }
            DiskLookup::Corrupt => {
                shard.stats.corrupt_entries += 1;
                shard.stats.misses += 1;
                None
            }
            DiskLookup::Absent => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a completed flow in both tiers.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the disk tier cannot be written; the
    /// memory tier is updated regardless.
    pub fn insert(&self, key: CacheKey, summary: &FlowSummary) -> Result<(), CacheError> {
        {
            let mut guard = self.shard_for(key).lock().expect("cache lock");
            Self::insert_memory(&mut guard, self.per_shard, key, summary.clone());
        }
        if let Some(dir) = &self.config.disk_dir {
            self.disk_insert(dir, key, summary)?;
        }
        Ok(())
    }

    fn insert_memory(shard: &mut Shard, per_shard: usize, key: CacheKey, summary: FlowSummary) {
        if per_shard == 0 {
            return;
        }
        use std::collections::hash_map::Entry;
        match shard.map.entry(key.0) {
            Entry::Occupied(mut occupied) => {
                // Refresh the payload without touching recency — a
                // re-insert never reorders the LRU queue.
                occupied.get_mut().summary = summary;
            }
            Entry::Vacant(vacant) => {
                shard.clock += 1;
                vacant.insert(Slot {
                    summary,
                    stamp: shard.clock,
                });
                shard.order.push_back((key.0, shard.clock));
                while shard.map.len() > per_shard {
                    let Some((k, s)) = shard.order.pop_front() else {
                        break;
                    };
                    // Skip stale pairs: the key was re-touched since (a
                    // newer pair exists further back) or already evicted.
                    if shard.map.get(&k).is_some_and(|slot| slot.stamp == s) {
                        shard.map.remove(&k);
                        shard.stats.evictions += 1;
                    }
                }
                shard.compact();
            }
        }
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.config
            .disk_dir
            .as_ref()
            .map(|d| d.join(key.file_name()))
    }

    fn disk_lookup(&self, key: CacheKey) -> DiskLookup {
        let Some(path) = self.disk_path(key) else {
            return DiskLookup::Absent;
        };
        let Ok(bytes) = std::fs::read(&path) else {
            return DiskLookup::Absent;
        };
        verify_entry_bytes(&bytes, key)
    }

    fn disk_insert(
        &self,
        dir: &Path,
        key: CacheKey,
        summary: &FlowSummary,
    ) -> Result<(), CacheError> {
        write_disk_entry(dir, key, summary)
    }

    /// Total live + stale pairs across every shard's recency queue —
    /// test hook for the compaction bound.
    #[cfg(test)]
    fn recency_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").order.len())
            .sum()
    }
}

enum DiskLookup {
    Hit { summary: FlowSummary, legacy: bool },
    Corrupt,
    Absent,
}

/// Routes entry bytes to the right decoder by sniffing the binary magic
/// (JSON entries start with `{`) and integrity-checks the result.
fn verify_entry_bytes(bytes: &[u8], key: CacheKey) -> DiskLookup {
    if codec::is_binary_entry(bytes) {
        return match codec::decode_entry(bytes) {
            Some((echoed, summary)) if echoed == key.0 => DiskLookup::Hit {
                summary,
                legacy: false,
            },
            _ => DiskLookup::Corrupt,
        };
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return DiskLookup::Corrupt;
    };
    match verify_disk_entry(text, key) {
        Some(summary) => DiskLookup::Hit {
            summary,
            legacy: true,
        },
        None => DiskLookup::Corrupt,
    }
}

/// Best-effort removal of orphaned `.*.tmp` staging files in `dir`. Only
/// files older than [`STALE_TEMP_AGE`] are removed; anything unreadable
/// is skipped (another process may be sweeping concurrently).
fn sweep_stale_temp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let now = std::time::SystemTime::now();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with('.') && name.ends_with(".tmp")) {
            continue;
        }
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age >= STALE_TEMP_AGE);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Monotonic discriminator for temp-file names, so concurrent writers in
/// one process never collide on the same staging path.
static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Writes one fully consistent disk-tier entry in the binary format of
/// [`crate::codec`] (key echo, current engine version, CRC-32 over the
/// payload bytes).
///
/// Publication is atomic: the entry is staged in a uniquely named temp
/// file (pid + in-process sequence number) and `rename`d into place, so
/// a concurrent reader — another thread *or another OS process* sharing
/// the directory — only ever observes a complete entry, never a torn
/// write. Writers never lock: because an entry's content is a pure
/// function of its key, losing a rename race to another writer leaves
/// the identical payload on disk and counts as success.
fn write_disk_entry(dir: &Path, key: CacheKey, summary: &FlowSummary) -> Result<(), CacheError> {
    std::fs::create_dir_all(dir).map_err(|e| CacheError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let bytes = codec::encode_entry(key.0, summary);
    let path = dir.join(key.file_name());
    publish_atomic(dir, &path, &bytes)
}

/// Writes one disk-tier entry in the *legacy JSON* format — exactly the
/// bytes pre-binary releases produced. Kept (test-only) so the
/// legacy-read path and [`migrate_disk_tier`] are exercised against the
/// real historical encoding.
#[cfg(any(test, feature = "chaos"))]
pub fn write_legacy_json_entry(
    dir: &Path,
    key: CacheKey,
    summary: &FlowSummary,
) -> Result<(), CacheError> {
    std::fs::create_dir_all(dir).map_err(|e| CacheError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let payload = serde_json::to_string(summary).map_err(|e| CacheError::Encode(e.to_string()))?;
    let entry = DiskEntry {
        key: key.0,
        engine_version: ENGINE_VERSION.to_owned(),
        payload_hash: fnv1a(payload.as_bytes()),
        summary: summary.clone(),
    };
    let text = serde_json::to_string(&entry).map_err(|e| CacheError::Encode(e.to_string()))?;
    let path = dir.join(key.file_name());
    publish_atomic(dir, &path, text.as_bytes())
}

/// Outcome counters of one [`migrate_disk_tier`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrateStats {
    /// Legacy JSON entries rewritten as binary.
    pub migrated: u64,
    /// Entries already in the binary format, left untouched.
    pub already_binary: u64,
    /// Entries of either format that failed their integrity check; left
    /// in place (the cache treats them as misses and re-simulates).
    pub corrupt: u64,
}

/// Rewrites every legacy JSON entry in a disk tier as a binary entry, in
/// place and atomically (each rewrite goes through the same temp+rename
/// publish as a normal insert, so readers and concurrent campaign
/// writers are never disturbed). Binary entries are left untouched;
/// corrupt entries of either format are counted and skipped.
///
/// This is the engine behind `repro cache migrate --cache-dir DIR`.
///
/// # Errors
///
/// Returns [`CacheError::Io`] when the directory cannot be read or a
/// rewritten entry cannot be published.
pub fn migrate_disk_tier(dir: &Path) -> Result<MigrateStats, CacheError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CacheError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut stats = MigrateStats::default();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(key) = parse_entry_file_name(&name) else {
            continue;
        };
        let Ok(bytes) = std::fs::read(entry.path()) else {
            continue;
        };
        if codec::is_binary_entry(&bytes) {
            match codec::decode_entry(&bytes) {
                Some((echoed, _)) if echoed == key.0 => stats.already_binary += 1,
                _ => stats.corrupt += 1,
            }
            continue;
        }
        match verify_entry_bytes(&bytes, key) {
            DiskLookup::Hit { summary, .. } => {
                write_disk_entry(dir, key, &summary)?;
                stats.migrated += 1;
            }
            _ => stats.corrupt += 1,
        }
    }
    Ok(stats)
}

/// Parses `flow-{key:016x}.json` back into its [`CacheKey`].
fn parse_entry_file_name(name: &str) -> Option<CacheKey> {
    let hex = name.strip_prefix("flow-")?.strip_suffix(".json")?;
    u64::from_str_radix(hex, 16).ok().map(CacheKey)
}

/// Stages `bytes` in a unique temp file under `dir` and renames it onto
/// `path`. See [`write_disk_entry`] for the publication contract.
pub(crate) fn publish_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), CacheError> {
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_owned()),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    std::fs::write(&tmp, bytes).map_err(|e| CacheError::Io {
        path: tmp.clone(),
        message: e.to_string(),
    })?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Clean the staging file up; if the destination exists another
            // writer already published the (identical) entry, so the
            // failed rename is a lost race, not an error.
            let _ = std::fs::remove_file(&tmp);
            if path.exists() {
                Ok(())
            } else {
                Err(CacheError::Io {
                    path: path.to_path_buf(),
                    message: e.to_string(),
                })
            }
        }
    }
}

/// Bit-flips one byte of the stored disk-tier entry for `key` — the
/// `hsm-chaos` disk-corruption fault. For a binary entry the flip lands
/// mid-buffer (inside the CRC-protected body); for a legacy JSON entry
/// it either breaks the JSON, changes the key/version echo, or changes
/// hashed payload bytes. The integrity check must reject every case.
/// Returns `false` when no entry exists for the key.
///
/// Test/`chaos`-feature builds only.
///
/// # Errors
///
/// Returns [`CacheError::Io`] when the entry cannot be rewritten.
#[cfg(any(test, feature = "chaos"))]
pub fn chaos_corrupt_disk_entry(dir: &Path, key: CacheKey) -> Result<bool, CacheError> {
    let path = dir.join(key.file_name());
    let Ok(mut bytes) = std::fs::read(&path) else {
        return Ok(false);
    };
    if bytes.is_empty() {
        return Ok(false);
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).map_err(|e| CacheError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    Ok(true)
}

/// Forges a *self-consistent* disk-tier entry: attacker-chosen summary,
/// matching payload hash, current engine version — the `hsm-chaos`
/// stronger corruption fault. The integrity check cannot reject this by
/// construction; only the differential oracle's warm-vs-fresh comparison
/// can catch it, which is exactly what the harness proves.
///
/// Test/`chaos`-feature builds only.
///
/// # Errors
///
/// Returns [`CacheError`] when the entry cannot be encoded or written.
#[cfg(any(test, feature = "chaos"))]
pub fn chaos_forge_disk_entry(
    dir: &Path,
    key: CacheKey,
    summary: &FlowSummary,
) -> Result<(), CacheError> {
    write_disk_entry(dir, key, summary)
}

/// Parses and integrity-checks one disk-tier entry; `None` = corrupt.
fn verify_disk_entry(text: &str, key: CacheKey) -> Option<FlowSummary> {
    let entry: DiskEntry = serde_json::from_str(text).ok()?;
    if entry.key != key.0 || entry.engine_version != ENGINE_VERSION {
        return None;
    }
    let payload = serde_json::to_string(&entry.summary).ok()?;
    if fnv1a(payload.as_bytes()) != entry.payload_hash {
        return None;
    }
    Some(entry.summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_simnet::time::SimDuration;

    fn summary(flow: u32) -> FlowSummary {
        FlowSummary {
            flow,
            provider: "China Mobile".into(),
            scenario: "high-speed".into(),
            rtt_s: 0.065,
            p_d: 0.0075,
            data_sent: 1000,
            p_a: 0.006,
            p_a_burst: 0.05,
            acks_per_round: 12.0,
            q_hat: 0.27,
            timeouts: 4,
            spurious_timeouts: 2,
            timeout_sequences: 3,
            mean_recovery_s: 5.0,
            t_rto_s: 0.8,
            loss_indications: 5,
            fast_retransmissions: 2,
            w_m: 48,
            b: 2,
            throughput_sps: 321.5,
            goodput_sps: 300.25,
            duration_s: 120.0,
        }
    }

    /// The pre-sharding key derivation: JSON-encode, concatenate the
    /// engine version, hash the buffer. [`CacheKey::of`] must keep
    /// producing these exact digests or every on-disk tier goes cold.
    fn legacy_key(config: &ScenarioConfig) -> u64 {
        let encoded = serde_json::to_string(config).expect("config serializes");
        let mut bytes = encoded.into_bytes();
        bytes.extend_from_slice(ENGINE_VERSION.as_bytes());
        fnv1a(&bytes)
    }

    /// The congestion-control variants the key grid sweeps: the zoo's
    /// defaults plus float parameters that exercise every formatting
    /// branch — whole numbers (`3.0`, `30.0`), shortest-round-trip
    /// fractions (`0.1`, `0.125`), and non-round values (`2.5`).
    fn cc_grid(seed: u64) -> [Algorithm; 9] {
        [
            Algorithm::Reno,
            Algorithm::Bbr,
            Algorithm::veno(),
            Algorithm::cubic(),
            Algorithm::compound(),
            Algorithm::Veno { beta: 2.5 },
            Algorithm::Cubic { c: 0.1, beta: 0.7 },
            Algorithm::Compound {
                alpha: 0.1,
                beta: 0.5,
                k: 0.75,
                gamma: 30.0,
            },
            Algorithm::Veno {
                beta: 1.0 + (seed % 7) as f64 / 10.0,
            },
        ]
    }

    #[test]
    fn streamed_keys_match_the_legacy_json_hash() {
        let mut checked = 0u32;
        for provider in Provider::ALL {
            for motion in [Motion::HighSpeed, Motion::Stationary] {
                for seed in [0u64, 1, 9, 255, 1_000_000, u64::MAX] {
                    for duration in [
                        SimDuration::from_micros(1),
                        SimDuration::from_secs(120),
                        SimDuration::from_micros(u64::MAX),
                    ] {
                        for cc in cc_grid(seed) {
                            for recovery in Recovery::ALL {
                                let config = ScenarioConfig {
                                    provider,
                                    motion,
                                    seed,
                                    duration,
                                    w_m: (seed as u32 % 64).max(1),
                                    b: 1 + (seed as u32 % 4),
                                    flow: seed as u32 % 300,
                                    cc,
                                    recovery,
                                };
                                assert_eq!(
                                    CacheKey::of(&config).0,
                                    legacy_key(&config),
                                    "key drifted for {config:?}"
                                );
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(checked, 108 * 9 * 4);
    }

    const DEFAULT_CONFIG_DIGEST: u64 = 0xc642_7c51_06b5_4039;
    const DEFAULT_BBR_CONFIG_DIGEST: u64 = 0x6440_7916_ac71_b8bd;

    /// The default configuration's digest, frozen at its pre-recovery
    /// value: `recovery: None` must hash to exactly what the field-less
    /// config hashed to, or every existing disk tier goes cold.
    #[test]
    fn default_recovery_keeps_the_pre_recovery_digest() {
        let config = ScenarioConfig::default();
        assert_eq!(config.recovery, Recovery::None);
        assert_eq!(CacheKey::of(&config).0, DEFAULT_CONFIG_DIGEST);
        let zoo = ScenarioConfig {
            cc: Algorithm::Bbr,
            ..ScenarioConfig::default()
        };
        assert_eq!(CacheKey::of(&zoo).0, DEFAULT_BBR_CONFIG_DIGEST);
    }

    #[test]
    fn non_default_recovery_changes_the_key() {
        let none = ScenarioConfig::default();
        for recovery in [Recovery::RedundantRto, Recovery::Frto, Recovery::AckRobust] {
            let cured = ScenarioConfig {
                recovery,
                ..ScenarioConfig::default()
            };
            assert_ne!(
                CacheKey::of(&none),
                CacheKey::of(&cured),
                "{recovery:?} must not collide with the no-recovery entry"
            );
        }
    }

    #[test]
    fn non_default_cc_changes_the_key() {
        let reno = ScenarioConfig::default();
        for cc in [Algorithm::Bbr, Algorithm::veno(), Algorithm::cubic()] {
            let zoo = ScenarioConfig {
                cc,
                ..ScenarioConfig::default()
            };
            assert_ne!(
                CacheKey::of(&reno),
                CacheKey::of(&zoo),
                "{cc:?} must not collide with Reno's cache entry"
            );
        }
    }

    #[test]
    fn keys_are_stable_and_content_addressed() {
        let a = ScenarioConfig::default();
        let b = ScenarioConfig {
            seed: 2,
            ..Default::default()
        };
        assert_eq!(CacheKey::of(&a), CacheKey::of(&a));
        assert_ne!(CacheKey::of(&a), CacheKey::of(&b));
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        // One shard pins the historical globally ordered LRU semantics.
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 2,
            disk_dir: None,
            shards: 1,
        });
        let (k1, k2, k3) = (CacheKey(1), CacheKey(2), CacheKey(3));
        cache.insert(k1, &summary(1)).unwrap();
        cache.insert(k2, &summary(2)).unwrap();
        assert_eq!(cache.lookup(k1).unwrap().flow, 1); // k1 now most-recent
        cache.insert(k3, &summary(3)).unwrap(); // evicts k2, the LRU entry
        assert!(cache.lookup(k2).is_none());
        assert_eq!(cache.lookup(k1).unwrap().flow, 1);
        assert_eq!(cache.lookup(k3).unwrap().flow, 3);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.memory_hits, 3);
    }

    #[test]
    fn reinsert_refreshes_payload_without_touching_recency() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 2,
            disk_dir: None,
            shards: 1,
        });
        let (k1, k2, k3) = (CacheKey(1), CacheKey(2), CacheKey(3));
        cache.insert(k1, &summary(1)).unwrap();
        cache.insert(k2, &summary(2)).unwrap();
        // Re-inserting k1 updates its payload but k1 stays the LRU entry.
        cache.insert(k1, &summary(100)).unwrap();
        cache.insert(k3, &summary(3)).unwrap(); // evicts k1, not k2
        assert!(cache.lookup(k1).is_none());
        assert_eq!(cache.lookup(k2).unwrap().flow, 2);
        assert_eq!(cache.lookup(k3).unwrap().flow, 3);
    }

    #[test]
    fn sharded_cache_keeps_lookup_semantics_and_aggregates() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 256,
            disk_dir: None,
            shards: 4,
        });
        assert_eq!(cache.shard_count(), 4);
        for i in 0..64u64 {
            cache
                .insert(CacheKey(i * 0x9e37_79b9), &summary(i as u32))
                .unwrap();
        }
        assert_eq!(cache.len(), 64);
        for i in 0..64u64 {
            assert_eq!(
                cache.lookup(CacheKey(i * 0x9e37_79b9)).unwrap().flow,
                i as u32
            );
        }
        assert!(cache.lookup(CacheKey(0xdead_beef_0001)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.memory_hits, 64);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        for (requested, expect) in [(0usize, DEFAULT_SHARDS), (1, 1), (2, 2), (3, 4), (5, 8)] {
            let cache = FlowCache::new(CacheConfig {
                memory_entries: 16,
                disk_dir: None,
                shards: requested,
            });
            assert_eq!(cache.shard_count(), expect, "requested {requested}");
        }
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 8,
            disk_dir: None,
            shards: 1,
        });
        for i in 0..8u64 {
            cache.insert(CacheKey(i), &summary(i as u32)).unwrap();
        }
        // Hammer one hot key: every touch appends a recency pair, so
        // without compaction the queue would reach ~10k entries.
        for _ in 0..10_000 {
            assert!(cache.lookup(CacheKey(3)).is_some());
        }
        assert!(
            cache.recency_pairs() <= 4 * 8 + 1,
            "compaction must bound the queue, got {}",
            cache.recency_pairs()
        );
        // The hot key must survive the next eviction wave.
        for i in 100..107u64 {
            cache.insert(CacheKey(i), &summary(i as u32)).unwrap();
        }
        assert!(cache.lookup(CacheKey(3)).is_some());
    }

    #[test]
    fn disk_tier_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        let key = CacheKey(0xabcd);
        let s = summary(9);
        cache.insert(key, &s).unwrap();
        assert_eq!(cache.lookup(key).as_ref(), Some(&s));

        // Corrupt payload bytes while keeping the structure (magic,
        // version, lengths) valid: only the CRC can catch this.
        let path = dir.join(key.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes
            .windows(b"China Mobile".len())
            .position(|w| w == b"China Mobile")
            .expect("provider label is stored verbatim");
        bytes[pos..pos + b"China Mobbed".len()].copy_from_slice(b"China Mobbed");
        std::fs::write(&path, bytes).unwrap();
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_json_entries_hit_and_are_counted() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_legacy_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey(0x1234);
        let s = summary(4);
        write_legacy_json_entry(&dir, key, &s).unwrap();
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        assert_eq!(cache.lookup(key).as_ref(), Some(&s));
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.legacy_json_hits, 1);
        assert_eq!(stats.corrupt_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrate_rewrites_legacy_entries_in_place() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_migrate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Tier contents: two legacy entries, one binary entry, one
        // corrupt legacy entry, one unrelated file.
        write_legacy_json_entry(&dir, CacheKey(1), &summary(1)).unwrap();
        write_legacy_json_entry(&dir, CacheKey(2), &summary(2)).unwrap();
        let binary_cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        binary_cache.insert(CacheKey(3), &summary(3)).unwrap();
        write_legacy_json_entry(&dir, CacheKey(4), &summary(4)).unwrap();
        let corrupt_path = dir.join(CacheKey(4).file_name());
        std::fs::write(&corrupt_path, b"{not json").unwrap();
        std::fs::write(dir.join("README"), b"not an entry").unwrap();

        let stats = migrate_disk_tier(&dir).unwrap();
        assert_eq!(
            stats,
            MigrateStats {
                migrated: 2,
                already_binary: 1,
                corrupt: 1,
            }
        );

        // Every migrated entry is now binary and still hits.
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        for k in [1u64, 2, 3] {
            let bytes = std::fs::read(dir.join(CacheKey(k).file_name())).unwrap();
            assert!(codec::is_binary_entry(&bytes), "entry {k} still legacy");
            assert_eq!(cache.lookup(CacheKey(k)).unwrap(), summary(k as u32));
        }
        assert_eq!(cache.stats().legacy_json_hits, 0);
        // A second pass finds nothing left to do.
        let again = migrate_disk_tier(&dir).unwrap();
        assert_eq!(again.migrated, 0);
        assert_eq!(again.already_binary, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_format_tier_serves_both_formats_identically() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_mixed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Same summaries split across formats: lookups must be
        // indistinguishable apart from the legacy counter.
        for k in 0..8u64 {
            if k % 2 == 0 {
                write_legacy_json_entry(&dir, CacheKey(k), &summary(k as u32)).unwrap();
            }
        }
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        for k in 0..8u64 {
            if k % 2 == 1 {
                cache.insert(CacheKey(k), &summary(k as u32)).unwrap();
            }
        }
        for k in 0..8u64 {
            assert_eq!(cache.lookup(CacheKey(k)).unwrap(), summary(k as u32));
        }
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 8);
        assert_eq!(stats.legacy_json_hits, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_disk_tier_sweeps_stale_temp_files() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Plant a staging file as a killed writer would leave it, aged
        // past the sweep threshold.
        let stale = dir.join(".flow-0000000000000001.json.12345.0.tmp");
        std::fs::write(&stale, b"torn half-write").unwrap();
        let aged = std::time::SystemTime::now() - (STALE_TEMP_AGE + STALE_TEMP_AGE);
        std::fs::File::options()
            .write(true)
            .open(&stale)
            .unwrap()
            .set_modified(aged)
            .unwrap();
        // A fresh staging file (a live concurrent writer) must survive.
        let fresh = dir.join(".flow-0000000000000002.json.12345.1.tmp");
        std::fs::write(&fresh, b"in flight").unwrap();
        // A real entry must never be swept.
        write_legacy_json_entry(&dir, CacheKey(7), &summary(7)).unwrap();

        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        assert!(!stale.exists(), "stale staging file must be swept");
        assert!(fresh.exists(), "fresh staging file must survive");
        assert!(cache.lookup(CacheKey(7)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Concurrent writers racing on the *same* keys in one shared disk
    /// directory: every published entry must verify (no torn writes) and
    /// no staging temp file may survive. This is the single-process half
    /// of the multi-process guarantee sharded campaigns rely on.
    #[test]
    fn concurrent_disk_writers_never_tear_entries() {
        let dir = std::env::temp_dir().join(format!("hsm_cache_race_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        const WRITERS: usize = 8;
        const KEYS: u64 = 24;
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let dir = dir.clone();
                scope.spawn(move || {
                    let cache = FlowCache::new(CacheConfig {
                        memory_entries: 0,
                        disk_dir: Some(dir),
                        shards: 0,
                    });
                    for _ in 0..4 {
                        for k in 0..KEYS {
                            // Same key → same payload, as in real campaigns.
                            cache.insert(CacheKey(k), &summary(k as u32)).unwrap();
                        }
                    }
                });
            }
        });
        let reader = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: Some(dir.clone()),
            shards: 0,
        });
        for k in 0..KEYS {
            let got = reader
                .lookup(CacheKey(k))
                .unwrap_or_else(|| panic!("entry {k} missing or corrupt after the race"));
            assert_eq!(got, summary(k as u32));
        }
        assert_eq!(reader.stats().corrupt_entries, 0);
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_memory_tier() {
        let cache = FlowCache::new(CacheConfig {
            memory_entries: 0,
            disk_dir: None,
            shards: 0,
        });
        cache.insert(CacheKey(5), &summary(5)).unwrap();
        assert!(cache.is_empty());
        assert!(cache.lookup(CacheKey(5)).is_none());
    }
}
