//! # hsm-runtime — the campaign-execution engine
//!
//! Production-scale orchestration for the simulation substrate: the paper's
//! results are averages over hundreds of flows, and everything above the
//! per-flow layer — Table III, Fig. 10/12 sweeps, calibration, the
//! 255-flow Table-I dataset — is a *campaign* of independent, deterministic
//! flows. This crate runs those campaigns as fast as the hardware allows:
//!
//! * [`engine`] — [`Campaign`]: shards scenarios across a self-scheduling
//!   worker pool (each worker reusing one simulation scratch across its
//!   flows), streams each flow through analysis and drops raw traces
//!   immediately (near-constant memory), and writes results into
//!   per-flow slots so output is bit-identical for any worker count;
//! * [`cache`] — [`FlowCache`]: content-addressed memoization of completed
//!   flows (key = config + engine version, streamed into the hash with no
//!   per-lookup allocation) with a sharded in-memory LRU tier and an
//!   integrity-checked on-disk JSON tier, so repeated experiments stop
//!   re-simulating identical flows and workers stop serializing on one
//!   lock;
//! * [`shard`] — multi-process campaign sharding: round-robin partition
//!   of an expanded spec, per-shard [`shard::ShardReport`]s, and a merge
//!   that folds them into one [`shard::CampaignResult`] bit-identical to
//!   the single-process run;
//! * [`parallel`] — index-ordered parallel map/mean with a fixed-shape
//!   pairwise reduction (promoted from `hsm-bench`);
//! * [`error`] — the engine/cache failure surface.
//!
//! ```
//! use hsm_runtime::prelude::*;
//! use hsm_scenario::prelude::*;
//! use hsm_simnet::time::SimDuration;
//!
//! let cfg = ScenarioConfig::builder()
//!     .motion(Motion::Stationary)
//!     .duration(SimDuration::from_secs(5))
//!     .build()?;
//! let campaign = Campaign::builder().config(cfg).workers(2).build()?;
//! let cache = FlowCache::new(CacheConfig::memory_only());
//! let cold = campaign.run_with_cache(&cache)?;
//! let warm = campaign.run_with_cache(&cache)?;
//! assert_eq!(warm.report.cache_hits, 1); // no re-simulation
//! assert!(cold.summaries().eq(warm.summaries())); // bit-identical
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod engine;
pub mod error;
pub mod parallel;
pub mod shard;

pub use cache::{
    migrate_disk_tier, CacheConfig, CacheKey, CacheStats, FlowCache, MigrateStats, ENGINE_VERSION,
};
#[cfg(any(test, feature = "chaos"))]
pub use engine::ChaosInjection;
pub use engine::{
    run_dataset, run_stationary_baseline, Campaign, CampaignBuilder, CampaignOutput,
    CampaignReport, FlowRun,
};
pub use error::{CacheError, EngineError};
pub use shard::{
    merge_shards, read_shard_report, run_shard, shard_file_name, shard_indices, shard_len,
    write_shard_report, CampaignResult, ShardReport,
};

/// Convenient glob-import surface: `use hsm_runtime::prelude::*;`.
pub mod prelude {
    pub use crate::cache::{
        migrate_disk_tier, CacheConfig, CacheKey, CacheStats, FlowCache, MigrateStats,
        ENGINE_VERSION,
    };
    pub use crate::engine::{
        run_dataset, run_stationary_baseline, Campaign, CampaignBuilder, CampaignOutput,
        CampaignReport, FlowRun,
    };
    pub use crate::error::{CacheError, EngineError};
    pub use crate::parallel::{
        pairwise_sum, par_map, par_map_workers, par_mean, par_mean_workers, try_par_map_workers,
    };
    pub use crate::shard::{
        merge_shards, read_shard_report, run_shard, shard_file_name, shard_indices, shard_len,
        write_shard_report, CampaignResult, ShardReport,
    };
}
