//! The sharded, memoizing campaign engine.
//!
//! A [`Campaign`] is an ordered set of [`ScenarioConfig`]s executed across
//! a self-scheduling worker pool: each worker first executes a small
//! round-robin *reserved prefix* of flow indices it alone owns, then
//! pulls remaining indices from a shared atomic counter (idle workers
//! automatically take over remaining work). The reserved prefix exists
//! for warm replays: cache hits return in microseconds, so with a bare
//! shared counter the first worker to spin up drained the entire
//! campaign before the rest of the pool finished spawning — every warm
//! `worker_flows` histogram read `[n, 0, 0, ...]`. Reserving the first
//! few rounds per worker guarantees each worker a slice of the campaign
//! regardless of spawn order, without giving up work-stealing for the
//! (expensive, uneven) simulated remainder.
//!
//! Workers stream each flow through `run_scenario`/`analyze_flow`, and
//! drop the raw `FlowTrace` immediately — only the compact
//! [`FlowSummary`] survives — so campaigns of tens of thousands of flows
//! run in near-constant memory. Opting into
//! [`CampaignBuilder::keep_outcomes`] retains the full
//! [`ScenarioOutcome`] for figure generators that need the packet
//! records.
//!
//! Each worker owns a [`Scratch`] (simulation engine, recorder, capture
//! slab) reused across every flow it handles, and writes each result
//! into the flow's own pre-allocated slot — flow `i` goes to slot `i`,
//! no channel, no post-hoc sort. Completed flows are memoized in a
//! sharded [`FlowCache`]; the slot vector *is* index order, so the
//! summary stream is **bit-identical** for any worker count and any
//! cache state (cold, warm memory, warm disk). Wall-clock and
//! utilization telemetry lives only in the [`CampaignReport`], never in
//! the result stream.

use crate::cache::{CacheConfig, CacheKey, FlowCache, ENGINE_VERSION};
use crate::error::EngineError;
use hsm_scenario::dataset::{plan_dataset, plan_stationary_baseline, DatasetConfig, DatasetFlow};
use hsm_scenario::runner::{try_run_scenario_with, ScenarioConfig, ScenarioOutcome, Scratch};
use hsm_simnet::event::QueueStats;
use hsm_trace::summary::FlowSummary;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Rounds of the per-worker reserved prefix (see the module docs): each
/// worker owns this many flow indices before the pool falls back to the
/// shared counter. Large enough to pin a visible slice of warm replays
/// on every worker, small enough that an unlucky reserved assignment of
/// expensive flows cannot meaningfully unbalance a cold campaign.
const RESERVED_ROUNDS: usize = 8;

/// One executed (or cache-served) flow of a campaign.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// The configuration that produced it.
    pub config: ScenarioConfig,
    /// The model-ready summary (identical whether simulated or cached).
    pub summary: FlowSummary,
    /// True when the flow was served from the cache without simulating.
    pub cache_hit: bool,
    /// Wall-clock seconds spent simulating (0 for cache hits).
    pub sim_wall_s: f64,
    /// Simulator events processed (0 for cache hits).
    pub events: u64,
    /// Event-queue telemetry of the simulation (zeroed for cache hits —
    /// a served flow schedules nothing).
    pub queue: QueueStats,
    /// Index of the worker that handled the flow.
    pub worker: usize,
    /// The full outcome, retained only under `keep_outcomes`.
    pub outcome: Option<Box<ScenarioOutcome>>,
}

/// Structured per-campaign telemetry, serialized by `repro` as
/// `BENCH_campaign.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Engine version that executed the campaign.
    pub engine_version: String,
    /// Flows in the campaign.
    pub flows: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Flows served from the cache (memory or disk tier).
    pub cache_hits: usize,
    /// Flows that had to be simulated.
    pub cache_misses: usize,
    /// Cache hits served by the disk tier specifically.
    pub disk_hits: u64,
    /// Disk entries rejected by the integrity check (then re-simulated).
    pub corrupt_entries: u64,
    /// Total simulator events processed across all simulated flows.
    pub events_processed: u64,
    /// End-to-end campaign wall-clock, seconds.
    pub wall_clock_s: f64,
    /// Summed per-flow simulation wall-clock, seconds.
    pub sim_wall_s: f64,
    /// Flows handled per worker.
    pub worker_flows: Vec<usize>,
    /// Busy seconds per worker.
    pub worker_busy_s: Vec<f64>,
    /// Event-queue telemetry aggregated over all simulated flows.
    ///
    /// Not serialized: the campaign report's JSON shape (and the
    /// byte-identity guarantees of chaos reports and shard merges built
    /// on it) predates this field; the bench harness surfaces the
    /// aggregate through `BENCH_simnet.json` instead.
    #[serde(skip)]
    pub queue: QueueStats,
}

/// Equality covers the serialized report shape only — `queue` is local
/// telemetry (`#[serde(skip)]`), so a deserialized report must still
/// compare equal to the in-memory one that produced it.
impl PartialEq for CampaignReport {
    fn eq(&self, other: &Self) -> bool {
        self.engine_version == other.engine_version
            && self.flows == other.flows
            && self.workers == other.workers
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.disk_hits == other.disk_hits
            && self.corrupt_entries == other.corrupt_entries
            && self.events_processed == other.events_processed
            && self.wall_clock_s == other.wall_clock_s
            && self.sim_wall_s == other.sim_wall_s
            && self.worker_flows == other.worker_flows
            && self.worker_busy_s == other.worker_busy_s
    }
}

impl CampaignReport {
    /// Mean fraction of the campaign wall-clock each worker spent busy
    /// (1.0 = perfectly utilized pool).
    pub fn worker_utilization(&self) -> f64 {
        if self.wall_clock_s <= 0.0 || self.worker_busy_s.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy_s.iter().sum();
        busy / (self.wall_clock_s * self.worker_busy_s.len() as f64)
    }

    /// Simulator events processed per second of campaign wall-clock.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_clock_s <= 0.0 {
            0.0
        } else {
            self.events_processed as f64 / self.wall_clock_s
        }
    }
}

/// Everything a campaign run produces.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Per-flow results, in campaign (index) order.
    pub runs: Vec<FlowRun>,
    /// Aggregate telemetry.
    pub report: CampaignReport,
}

impl CampaignOutput {
    /// The deterministic summary stream, in campaign order.
    pub fn summaries(&self) -> impl Iterator<Item = &FlowSummary> {
        self.runs.iter().map(|r| &r.summary)
    }
}

/// Deterministic fault plan injected beneath the worker pool — the
/// campaign-level half of the `hsm-chaos` harness.
///
/// Only compiled under `cfg(test)` or the `chaos` feature; production
/// builds without the feature carry none of these hooks. Every fault is
/// keyed on the flow *index*, so a plan is exactly reproducible for any
/// worker count.
#[cfg(any(test, feature = "chaos"))]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosInjection {
    /// The worker that claims this flow index panics before executing it
    /// (worker death mid-campaign). The campaign must surface
    /// [`EngineError::WorkerLost`] instead of hanging or propagating the
    /// panic.
    pub kill_worker_at: Option<usize>,
    /// Flow indices that report a simulated engine failure
    /// ([`EngineError::FlowFailed`]). With several indices racing on
    /// different workers, the campaign must deterministically report the
    /// lowest one.
    pub fail_flows: Vec<usize>,
    /// Poisons the worker's scratch before every flow, proving that
    /// scratch reuse cannot leak state between flows.
    pub poison_scratch: bool,
}

#[cfg(any(test, feature = "chaos"))]
impl ChaosInjection {
    /// Applies the pre-flow faults for flow `i` on the claiming worker.
    fn before_flow(&self, i: usize, scratch: &mut Scratch) {
        if self.poison_scratch {
            scratch.poison();
        }
        if self.kill_worker_at == Some(i) {
            panic!("chaos: worker killed at flow {i}");
        }
    }

    /// True when flow `i` is scheduled to fail with a simulated engine
    /// error.
    fn fails(&self, i: usize) -> bool {
        self.fail_flows.contains(&i)
    }
}

/// Validated step-by-step construction of a [`Campaign`].
#[derive(Debug, Clone, Default)]
pub struct CampaignBuilder {
    configs: Vec<ScenarioConfig>,
    workers: Option<usize>,
    cache: Option<CacheConfig>,
    keep_outcomes: bool,
    #[cfg(any(test, feature = "chaos"))]
    chaos: ChaosInjection,
}

impl CampaignBuilder {
    /// Appends one scenario.
    pub fn config(mut self, config: ScenarioConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Appends any number of scenarios.
    pub fn configs(mut self, configs: impl IntoIterator<Item = ScenarioConfig>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Appends the full Table-I dataset plan for `cfg`.
    pub fn dataset(mut self, cfg: &DatasetConfig) -> Self {
        self.configs
            .extend(plan_dataset(cfg).into_iter().map(|(_, c)| c));
        self
    }

    /// Sets the worker count (defaults to the machine's parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the cache configuration (defaults to
    /// [`CacheConfig::memory_only`]).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Retains the full [`ScenarioOutcome`] (trace included) per flow.
    ///
    /// This trades the engine's near-constant memory for raw packet
    /// records, and bypasses the cache — outcomes are never memoized,
    /// only summaries are.
    pub fn keep_outcomes(mut self, keep: bool) -> Self {
        self.keep_outcomes = keep;
        self
    }

    /// Installs a deterministic fault plan beneath the worker pool (see
    /// [`ChaosInjection`]). Test/`chaos`-feature builds only.
    #[cfg(any(test, feature = "chaos"))]
    pub fn chaos(mut self, injection: ChaosInjection) -> Self {
        self.chaos = injection;
        self
    }

    /// Validates every configuration and the worker count.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for the first scenario that
    /// fails validation, or [`EngineError::ZeroWorkers`] for an explicit
    /// worker count of 0.
    pub fn build(self) -> Result<Campaign, EngineError> {
        if self.workers == Some(0) {
            return Err(EngineError::ZeroWorkers);
        }
        for (index, config) in self.configs.iter().enumerate() {
            config
                .validate()
                .map_err(|source| EngineError::InvalidConfig { index, source })?;
        }
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(4)
        });
        Ok(Campaign {
            configs: self.configs,
            workers,
            cache: self.cache.unwrap_or_else(CacheConfig::memory_only),
            keep_outcomes: self.keep_outcomes,
            #[cfg(any(test, feature = "chaos"))]
            chaos: self.chaos,
        })
    }
}

/// A validated, executable set of scenarios.
#[derive(Debug, Clone)]
pub struct Campaign {
    configs: Vec<ScenarioConfig>,
    workers: usize,
    cache: CacheConfig,
    keep_outcomes: bool,
    #[cfg(any(test, feature = "chaos"))]
    chaos: ChaosInjection,
}

impl Campaign {
    /// Starts a builder.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// The scenarios, in campaign order.
    pub fn configs(&self) -> &[ScenarioConfig] {
        &self.configs
    }

    /// The worker count the campaign will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the campaign against a fresh cache built from the campaign's
    /// own [`CacheConfig`] (a disk tier still makes reruns warm).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from workers or the cache's disk tier.
    pub fn run(&self) -> Result<CampaignOutput, EngineError> {
        self.run_with_cache(&FlowCache::new(self.cache.clone()))
    }

    /// Runs the campaign against a caller-owned cache, so repeated runs
    /// (or several campaigns sharing flows) stay warm in memory.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from workers or the cache's disk tier.
    pub fn run_with_cache(&self, cache: &FlowCache) -> Result<CampaignOutput, EngineError> {
        let started = Instant::now();
        let stats_before = cache.stats();
        let n = self.configs.len();
        let workers = self.workers.clamp(1, n.max(1));
        // Round-robin reserved prefix: worker `w` alone owns indices
        // `{w, w + workers, ...}` for the first `reserved_rounds` rounds,
        // so every worker is guaranteed a slice of the campaign even when
        // cache hits make flows cheaper than thread spawns (see the
        // module docs). The remainder stays self-scheduling.
        let reserved_rounds = (n / workers).min(RESERVED_ROUNDS);
        let next = AtomicUsize::new(reserved_rounds * workers);
        let worker_stats: Mutex<Vec<(usize, f64)>> = Mutex::new(vec![(0, 0.0); workers]);
        // One write-once slot per flow: worker claiming index `i` is the
        // only writer of slot `i`, so the vector is already in campaign
        // order when the pool drains — no channel, no sort.
        let slots: Vec<OnceLock<Result<FlowRun, EngineError>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        let abort = AtomicBool::new(false);
        // Lowest failed index seen so far (`usize::MAX` = none). Workers
        // keep executing indices at or below the floor and skip the rest,
        // which guarantees every index up to the final floor has a
        // filled slot — that is what makes "lowest failure wins" exact
        // under the reserved prefix, where aborting outright could leave
        // a lower failing index unexecuted on another worker.
        let fail_floor = AtomicUsize::new(usize::MAX);

        std::thread::scope(|scope| {
            let configs = &self.configs;
            let next = &next;
            let worker_stats = &worker_stats;
            let slots = &slots;
            let abort = &abort;
            let fail_floor = &fail_floor;
            for worker in 0..workers {
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut flows = 0usize;
                    let mut busy = 0.0f64;
                    let mut round = 0usize;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = if round < reserved_rounds {
                            let i = worker + round * workers;
                            round += 1;
                            i
                        } else {
                            next.fetch_add(1, Ordering::Relaxed)
                        };
                        if i >= n {
                            break;
                        }
                        if i > fail_floor.load(Ordering::Relaxed) {
                            // A lower index already failed; this flow's
                            // result could never surface. Leave its slot
                            // empty instead of simulating it.
                            continue;
                        }
                        let t0 = Instant::now();
                        // A worker that panics mid-flow counts as dead:
                        // catch the unwind so the pool degrades to a
                        // structured WorkerLost error (its slot stays
                        // unfilled) instead of tearing down the scope.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            #[cfg(any(test, feature = "chaos"))]
                            self.chaos.before_flow(i, &mut scratch);
                            self.execute_one(i, worker, configs, cache, &mut scratch)
                        }));
                        busy += t0.elapsed().as_secs_f64();
                        let Ok(run) = run else {
                            abort.store(true, Ordering::Relaxed);
                            break;
                        };
                        flows += 1;
                        if run.is_err() {
                            fail_floor.fetch_min(i, Ordering::Relaxed);
                        }
                        let claimed = slots[i].set(run).is_ok();
                        debug_assert!(claimed, "flow index {i} claimed twice");
                    }
                    let mut stats = worker_stats.lock().expect("worker stats lock");
                    stats[worker] = (flows, busy);
                });
            }
        });

        let mut runs: Vec<FlowRun> = Vec::with_capacity(n);
        let mut lost = false;
        let mut failure: Option<EngineError> = None;
        for slot in slots {
            match slot.into_inner() {
                Some(Ok(run)) => runs.push(run),
                Some(Err(e)) => {
                    // Lowest-index failure wins: every index below the
                    // final fail floor was executed, so the first error
                    // met in slot order is the lowest on every
                    // interleaving.
                    failure = Some(e);
                    break;
                }
                None => lost = true,
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        if lost || runs.len() != n {
            return Err(EngineError::WorkerLost);
        }

        let stats_after = cache.stats();
        let worker_stats = worker_stats.into_inner().expect("worker stats lock");
        let cache_hits = runs.iter().filter(|r| r.cache_hit).count();
        let report = CampaignReport {
            engine_version: ENGINE_VERSION.to_owned(),
            flows: n,
            workers,
            cache_hits,
            cache_misses: n - cache_hits,
            disk_hits: stats_after.disk_hits - stats_before.disk_hits,
            corrupt_entries: stats_after.corrupt_entries - stats_before.corrupt_entries,
            events_processed: runs.iter().map(|r| r.events).sum(),
            queue: runs.iter().fold(QueueStats::default(), |mut acc, r| {
                acc.merge(&r.queue);
                acc
            }),
            wall_clock_s: started.elapsed().as_secs_f64(),
            sim_wall_s: runs.iter().map(|r| r.sim_wall_s).sum(),
            worker_flows: worker_stats.iter().map(|(f, _)| *f).collect(),
            worker_busy_s: worker_stats.iter().map(|(_, b)| *b).collect(),
        };
        Ok(CampaignOutput { runs, report })
    }

    /// Executes (or serves from cache) flow `i` through the worker's
    /// reusable scratch.
    fn execute_one(
        &self,
        i: usize,
        worker: usize,
        configs: &[ScenarioConfig],
        cache: &FlowCache,
        scratch: &mut Scratch,
    ) -> Result<FlowRun, EngineError> {
        let config = &configs[i];
        #[cfg(any(test, feature = "chaos"))]
        if self.chaos.fails(i) {
            // A simulated mid-flow engine failure, shaped exactly like a
            // real bookkeeping-corruption abort.
            return Err(EngineError::FlowFailed {
                index: i,
                source: hsm_scenario::runner::ScenarioError::Engine(
                    hsm_simnet::error::SimError::QueueInconsistent {
                        at: hsm_simnet::time::SimTime::ZERO,
                    },
                ),
            });
        }
        let key = CacheKey::of(config);
        if !self.keep_outcomes {
            if let Some(summary) = cache.lookup(key) {
                return Ok(FlowRun {
                    config: config.clone(),
                    summary,
                    cache_hit: true,
                    sim_wall_s: 0.0,
                    events: 0,
                    queue: QueueStats::default(),
                    worker,
                    outcome: None,
                });
            }
        }
        let t0 = Instant::now();
        let outcome = try_run_scenario_with(scratch, config)
            .map_err(|source| EngineError::FlowFailed { index: i, source })?;
        let sim_wall_s = t0.elapsed().as_secs_f64();
        let summary = outcome.analysis.summary.clone();
        let events = outcome.outcome.events_processed;
        let queue = outcome.outcome.queue;
        if !self.keep_outcomes {
            cache.insert(key, &summary)?;
        }
        Ok(FlowRun {
            config: config.clone(),
            summary,
            cache_hit: false,
            sim_wall_s,
            events,
            queue,
            worker,
            // The trace is dropped right here unless the caller asked to
            // keep it — this is what bounds campaign memory.
            outcome: self.keep_outcomes.then(|| Box::new(outcome)),
        })
    }
}

/// Generates the Table-I dataset through the engine, retaining full
/// outcomes (the experiment harness needs raw traces).
///
/// The campaign-index tags of [`plan_dataset`] are re-attached to the
/// engine's index-ordered output, so this is a drop-in replacement for
/// `hsm_scenario::dataset::generate_dataset` with telemetry on top.
///
/// # Errors
///
/// Propagates [`EngineError`] from the engine.
pub fn run_dataset(cfg: &DatasetConfig) -> Result<(Vec<DatasetFlow>, CampaignReport), EngineError> {
    let plans = plan_dataset(cfg);
    let campaigns: Vec<usize> = plans.iter().map(|(c, _)| *c).collect();
    let campaign = Campaign::builder()
        .configs(plans.into_iter().map(|(_, c)| c))
        .keep_outcomes(true)
        .build()?;
    let output = campaign.run()?;
    let report = output.report.clone();
    let flows = campaigns
        .into_iter()
        .zip(output.runs)
        .map(|(campaign, run)| DatasetFlow {
            campaign,
            outcome: *run.outcome.expect("keep_outcomes retains every outcome"),
        })
        .collect();
    Ok((flows, report))
}

/// Generates the stationary baseline through the engine, retaining full
/// outcomes.
///
/// # Errors
///
/// Propagates [`EngineError`] from the engine.
pub fn run_stationary_baseline(
    cfg: &DatasetConfig,
    n: u32,
) -> Result<(Vec<DatasetFlow>, CampaignReport), EngineError> {
    let campaign = Campaign::builder()
        .configs(plan_stationary_baseline(cfg, n))
        .keep_outcomes(true)
        .build()?;
    let output = campaign.run()?;
    let report = output.report.clone();
    let flows = output
        .runs
        .into_iter()
        .map(|run| DatasetFlow {
            campaign: usize::MAX,
            outcome: *run.outcome.expect("keep_outcomes retains every outcome"),
        })
        .collect();
    Ok((flows, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_scenario::runner::{Motion, ScenarioError};
    use hsm_simnet::time::SimDuration;

    fn short(seed: u64) -> ScenarioConfig {
        ScenarioConfig::builder()
            .motion(Motion::Stationary)
            .seed(seed)
            .duration(SimDuration::from_secs(5))
            .flow(seed as u32)
            .build()
            .expect("valid")
    }

    #[test]
    fn builder_rejects_bad_campaigns() {
        let err = Campaign::builder()
            .config(ScenarioConfig {
                w_m: 0,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::InvalidConfig {
                index: 0,
                source: ScenarioError::ZeroWindow
            }
        );
        assert_eq!(
            Campaign::builder().workers(0).build().unwrap_err(),
            EngineError::ZeroWorkers
        );
    }

    /// Worker death mid-campaign: the pool must degrade to a structured
    /// `WorkerLost` (never a hang, never a propagated panic), and a clean
    /// rerun of the same campaign shape must produce the full stream.
    #[test]
    fn worker_death_mid_campaign_is_detected_as_worker_lost() {
        let configs: Vec<ScenarioConfig> = (0..6).map(short).collect();
        let dying = Campaign::builder()
            .configs(configs.clone())
            .workers(2)
            .chaos(ChaosInjection {
                kill_worker_at: Some(5),
                ..Default::default()
            })
            .build()
            .unwrap();
        assert_eq!(dying.run().unwrap_err(), EngineError::WorkerLost);

        let clean = Campaign::builder()
            .configs(configs)
            .workers(2)
            .build()
            .unwrap();
        let out = clean.run().expect("no fault plan, no loss");
        assert_eq!(out.runs.len(), 6);
    }

    /// Two flows failing concurrently on different workers: the reported
    /// failure must be the lowest index on every interleaving.
    #[test]
    fn concurrent_flow_failures_report_the_lowest_index() {
        let campaign = Campaign::builder()
            .configs((0..8).map(short))
            .workers(2)
            .chaos(ChaosInjection {
                fail_flows: vec![2, 5],
                ..Default::default()
            })
            .build()
            .unwrap();
        for round in 0..20 {
            match campaign.run().unwrap_err() {
                EngineError::FlowFailed { index, .. } => {
                    assert_eq!(index, 2, "round {round}: lowest index must win");
                }
                other => panic!("round {round}: expected FlowFailed, got {other:?}"),
            }
        }
    }

    /// Scratch poisoning between reuses must be invisible: the per-flow
    /// reset has to clear every piece of poisoned state.
    #[test]
    fn poisoned_scratch_streams_are_bit_identical() {
        let configs: Vec<ScenarioConfig> = (0..3).map(short).collect();
        let reference = Campaign::builder()
            .configs(configs.clone())
            .workers(1)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let poisoned = Campaign::builder()
            .configs(configs)
            .workers(1)
            .chaos(ChaosInjection {
                poison_scratch: true,
                ..Default::default()
            })
            .build()
            .unwrap()
            .run()
            .unwrap();
        for (a, b) in reference.summaries().zip(poisoned.summaries()) {
            assert_eq!(a, b, "poisoned-scratch flow diverged");
        }
    }

    #[test]
    fn campaign_runs_and_memoizes() {
        let campaign = Campaign::builder()
            .configs([short(1), short(2)])
            .workers(2)
            .build()
            .unwrap();
        let cache = FlowCache::new(CacheConfig::memory_only());
        let cold = campaign.run_with_cache(&cache).unwrap();
        assert_eq!(cold.report.cache_hits, 0);
        assert_eq!(cold.report.cache_misses, 2);
        assert!(cold.report.events_processed > 0);
        assert_eq!(cold.runs.len(), 2);
        assert!(cold.runs[0].outcome.is_none(), "traces dropped by default");

        let warm = campaign.run_with_cache(&cache).unwrap();
        assert_eq!(warm.report.cache_hits, 2, "warm rerun must not re-simulate");
        assert_eq!(warm.report.cache_misses, 0);
        assert_eq!(warm.report.events_processed, 0);
        for (a, b) in cold.summaries().zip(warm.summaries()) {
            assert_eq!(a, b);
        }
    }

    /// Warm multi-worker replays must spread flows across the whole
    /// pool. Before the reserved prefix, a cache hit returned faster
    /// than the pool finished spawning, so the first worker drained all
    /// 2k+ flows of a warm campaign and `worker_flows` read `[n, 0, 0,
    /// 0]` — the skew this test pins the fix for.
    #[test]
    fn warm_replay_distributes_flows_across_all_workers() {
        let configs: Vec<ScenarioConfig> = (0..32).map(short).collect();
        let cache = FlowCache::new(CacheConfig::memory_only());
        let cold = Campaign::builder()
            .configs(configs.clone())
            .workers(4)
            .build()
            .unwrap()
            .run_with_cache(&cache)
            .unwrap();
        for workers in [2usize, 4] {
            let warm = Campaign::builder()
                .configs(configs.clone())
                .workers(workers)
                .build()
                .unwrap()
                .run_with_cache(&cache)
                .unwrap();
            assert_eq!(warm.report.cache_hits, 32, "replay must stay warm");
            assert_eq!(warm.report.worker_flows.len(), workers);
            for (w, &f) in warm.report.worker_flows.iter().enumerate() {
                assert!(
                    f >= RESERVED_ROUNDS,
                    "worker {w} handled {f} warm flows ({workers} workers): {:?}",
                    warm.report.worker_flows
                );
            }
            for (a, b) in cold.summaries().zip(warm.summaries()) {
                assert_eq!(a, b, "warm stream must stay bit-identical");
            }
        }
    }

    #[test]
    fn keep_outcomes_retains_traces_and_bypasses_cache() {
        let campaign = Campaign::builder()
            .config(short(3))
            .keep_outcomes(true)
            .workers(1)
            .build()
            .unwrap();
        let cache = FlowCache::new(CacheConfig::memory_only());
        let out = campaign.run_with_cache(&cache).unwrap();
        let outcome = out.runs[0].outcome.as_ref().expect("outcome kept");
        assert!(!outcome.outcome.trace.records.is_empty());
        assert!(cache.is_empty(), "keep_outcomes never memoizes");
        let again = campaign.run_with_cache(&cache).unwrap();
        assert_eq!(again.report.cache_hits, 0);
    }

    #[test]
    fn report_telemetry_is_consistent() {
        let campaign = Campaign::builder()
            .configs((0..4).map(short))
            .workers(2)
            .build()
            .unwrap();
        let out = campaign.run().unwrap();
        let r = &out.report;
        assert_eq!(r.flows, 4);
        assert_eq!(r.workers, 2);
        assert_eq!(r.worker_flows.iter().sum::<usize>(), 4);
        assert!(r.wall_clock_s > 0.0);
        assert!(r.worker_utilization() > 0.0 && r.worker_utilization() <= 1.0 + 1e-9);
        assert!(r.events_per_sec() > 0.0);
        let json = serde_json::to_string(r).expect("report serializes");
        let back: CampaignReport = serde_json::from_str(&json).expect("report round-trips");
        assert_eq!(&back, r);
    }
}
