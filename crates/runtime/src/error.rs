//! Failure surface of the campaign engine.

use hsm_scenario::runner::ScenarioError;
use std::fmt;
use std::path::PathBuf;

/// Failures of the flow cache's disk tier.
///
/// Corrupt entries are *not* errors: the engine detects them via the
/// payload hash, counts them in the [`CampaignReport`](crate::engine::CampaignReport)
/// and re-simulates — only real I/O and encoding failures surface here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Reading or writing a disk-tier entry failed.
    Io {
        /// The entry path involved.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// A summary could not be encoded for the disk tier.
    Encode(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, message } => {
                write!(f, "cache I/O failure at {}: {message}", path.display())
            }
            CacheError::Encode(msg) => write!(f, "cache encoding failure: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Failures of campaign construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A scenario configuration in the campaign failed validation.
    InvalidConfig {
        /// Index of the offending configuration within the campaign.
        index: usize,
        /// The validation failure.
        source: ScenarioError,
    },
    /// A flow aborted mid-simulation — the engine reported internal
    /// bookkeeping corruption for that run.
    FlowFailed {
        /// Index of the flow within the campaign.
        index: usize,
        /// The underlying scenario/engine failure.
        source: ScenarioError,
    },
    /// The campaign was built with a zero worker count.
    ZeroWorkers,
    /// A worker thread stopped before delivering all of its results.
    WorkerLost,
    /// The cache's disk tier failed.
    Cache(CacheError),
    /// Sharded execution or the shard merge failed: bad partition
    /// indices, missing/duplicate/inconsistent shard reports, or shard
    /// file I/O.
    ShardMerge {
        /// Human-readable description naming the offending shard or file.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { index, source } => {
                write!(f, "campaign config #{index} is invalid: {source}")
            }
            EngineError::FlowFailed { index, source } => {
                write!(f, "campaign flow #{index} aborted: {source}")
            }
            EngineError::ZeroWorkers => write!(f, "campaign worker count must be >= 1"),
            EngineError::WorkerLost => {
                write!(f, "a campaign worker exited before delivering its results")
            }
            EngineError::Cache(e) => write!(f, "{e}"),
            EngineError::ShardMerge { detail } => write!(f, "shard merge failure: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidConfig { source, .. } => Some(source),
            EngineError::FlowFailed { source, .. } => Some(source),
            EngineError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for EngineError {
    fn from(e: CacheError) -> Self {
        EngineError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::InvalidConfig {
            index: 3,
            source: ScenarioError::ZeroWindow,
        };
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("w_m"));
        let c = CacheError::Io {
            path: PathBuf::from("/tmp/x"),
            message: "denied".into(),
        };
        assert!(EngineError::from(c).to_string().contains("denied"));
        let s = EngineError::ShardMerge {
            detail: "shard 2 of 4 missing".into(),
        };
        assert!(s.to_string().contains("shard 2 of 4 missing"));
    }
}
