//! Versioned, length-prefixed binary encoding of disk-tier cache entries.
//!
//! The disk tier originally stored one JSON document per flow. Encoding
//! and — far more often, on warm reruns — decoding those documents
//! dominated warm-replay wall-clock: every hit parsed the full JSON
//! entry, then *re-serialized* the summary to check the payload hash.
//! This module replaces the payload with a fixed-layout binary format
//! that decodes with a single forward pass over the buffer and verifies
//! integrity with a CRC-32 over the raw bytes (no re-encoding):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HSMF"
//! 4       1     format version (currently 1)
//! 5       4     body length, u32 LE (= number of bytes that follow)
//! 9       ...   body:
//!                 key              u64 LE (cache-key echo)
//!                 engine_version   varint length + UTF-8 bytes
//!                 flow summary     fixed-width fields in declaration
//!                                  order; strings varint-prefixed;
//!                                  f64 as IEEE-754 bits, LE
//!                 crc32            u32 LE over body[..len-4]
//! ```
//!
//! Integers are little-endian and fixed-width; variable-length sequences
//! (the two labels and the engine version) carry a LEB128 length prefix.
//! Floats round-trip bit-exactly — the binary tier preserves the same
//! "cache hit ≡ fresh simulation" guarantee the shortest-round-trip JSON
//! encoding provided, without any float formatting at all.
//!
//! Decoding is zero-copy in the `s2n-codec` style: a [`Reader`] cursor
//! hands out sub-slices of the input buffer, and the only allocations on
//! a hit are the two owned `String` labels of the returned summary. Any
//! structural defect — short buffer, bad magic, unknown version, length
//! mismatch, CRC mismatch, invalid UTF-8, trailing bytes — decodes to
//! `None`, which the cache reports as a corrupt entry.
//!
//! Legacy JSON entries remain readable ([`is_binary_entry`] sniffs the
//! magic), so tiers written before this format keep hitting; `repro
//! cache migrate` rewrites such tiers in place.

use crate::cache::ENGINE_VERSION;
use hsm_trace::summary::FlowSummary;

/// File magic of a binary disk-tier entry.
pub const MAGIC: [u8; 4] = *b"HSMF";

/// Current binary format version.
pub const FORMAT_VERSION: u8 = 1;

/// Fixed bytes before the body: magic + version + body length.
const HEADER_LEN: usize = 9;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Table-driven CRC-32 over `bytes` (IEEE polynomial, `0xFFFFFFFF`
/// initial value and final XOR — the `cksum`/zlib convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// True when `bytes` starts with the binary-entry magic (a JSON entry
/// starts with `{`, so one 4-byte comparison routes the two formats).
pub fn is_binary_entry(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Appends `v` as an unsigned LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a varint-length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Forward-only zero-copy cursor over an entry buffer. Every accessor
/// returns `None` instead of panicking when the buffer is too short, so
/// a truncated or bit-flipped entry can never crash the reader.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Varint-length-prefixed UTF-8 string, borrowed from the buffer.
    fn str_slice(&mut self) -> Option<&'a str> {
        let len = self.varint()?;
        let len = usize::try_from(len).ok()?;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Encodes one complete disk-tier entry (header, key echo, engine
/// version, summary payload, CRC) ready to publish atomically.
pub fn encode_entry(key: u64, summary: &FlowSummary) -> Vec<u8> {
    // Fixed-width fields are 4/8 bytes each; the varint prefixes and
    // labels are small. 256 bytes of headroom avoids regrowth.
    let mut out = Vec::with_capacity(
        HEADER_LEN
            + 8
            + ENGINE_VERSION.len()
            + summary.provider.len()
            + summary.scenario.len()
            + 256,
    );
    out.extend_from_slice(&MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&[0u8; 4]); // body length, patched below
    let body_start = out.len();
    out.extend_from_slice(&key.to_le_bytes());
    put_str(&mut out, ENGINE_VERSION);
    put_summary(&mut out, summary);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let body_len = (out.len() - body_start) as u32;
    out[body_start - 4..body_start].copy_from_slice(&body_len.to_le_bytes());
    out
}

/// Serializes the summary fields in declaration order.
fn put_summary(out: &mut Vec<u8>, s: &FlowSummary) {
    out.extend_from_slice(&s.flow.to_le_bytes());
    put_str(out, &s.provider);
    put_str(out, &s.scenario);
    out.extend_from_slice(&s.rtt_s.to_bits().to_le_bytes());
    out.extend_from_slice(&s.p_d.to_bits().to_le_bytes());
    out.extend_from_slice(&s.data_sent.to_le_bytes());
    out.extend_from_slice(&s.p_a.to_bits().to_le_bytes());
    out.extend_from_slice(&s.p_a_burst.to_bits().to_le_bytes());
    out.extend_from_slice(&s.acks_per_round.to_bits().to_le_bytes());
    out.extend_from_slice(&s.q_hat.to_bits().to_le_bytes());
    out.extend_from_slice(&s.timeouts.to_le_bytes());
    out.extend_from_slice(&s.spurious_timeouts.to_le_bytes());
    out.extend_from_slice(&s.timeout_sequences.to_le_bytes());
    out.extend_from_slice(&s.mean_recovery_s.to_bits().to_le_bytes());
    out.extend_from_slice(&s.t_rto_s.to_bits().to_le_bytes());
    out.extend_from_slice(&s.loss_indications.to_le_bytes());
    out.extend_from_slice(&s.fast_retransmissions.to_le_bytes());
    out.extend_from_slice(&s.w_m.to_le_bytes());
    out.extend_from_slice(&s.b.to_le_bytes());
    out.extend_from_slice(&s.throughput_sps.to_bits().to_le_bytes());
    out.extend_from_slice(&s.goodput_sps.to_bits().to_le_bytes());
    out.extend_from_slice(&s.duration_s.to_bits().to_le_bytes());
}

/// Decodes and integrity-checks one binary entry, returning the echoed
/// cache key and the summary. `None` means the entry is corrupt, a
/// different format version, or was written by a different engine
/// version — in every case the caller treats it as a miss.
pub fn decode_entry(bytes: &[u8]) -> Option<(u64, FlowSummary)> {
    let mut r = Reader { buf: bytes };
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u8()? != FORMAT_VERSION {
        return None;
    }
    let body_len = r.u32()? as usize;
    if r.buf.len() != body_len || body_len < 4 {
        return None;
    }
    let body = &bytes[HEADER_LEN..];
    let (payload, crc_bytes) = body.split_at(body_len - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(payload) != stored_crc {
        return None;
    }
    let mut r = Reader { buf: payload };
    let key = r.u64()?;
    if r.str_slice()? != ENGINE_VERSION {
        return None;
    }
    let summary = take_summary(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    Some((key, summary))
}

/// Deserializes the summary fields in declaration order.
fn take_summary(r: &mut Reader<'_>) -> Option<FlowSummary> {
    Some(FlowSummary {
        flow: r.u32()?,
        provider: r.str_slice()?.to_owned(),
        scenario: r.str_slice()?.to_owned(),
        rtt_s: r.f64()?,
        p_d: r.f64()?,
        data_sent: r.u64()?,
        p_a: r.f64()?,
        p_a_burst: r.f64()?,
        acks_per_round: r.f64()?,
        q_hat: r.f64()?,
        timeouts: r.u32()?,
        spurious_timeouts: r.u32()?,
        timeout_sequences: r.u32()?,
        mean_recovery_s: r.f64()?,
        t_rto_s: r.f64()?,
        loss_indications: r.u32()?,
        fast_retransmissions: r.u32()?,
        w_m: r.u32()?,
        b: r.u32()?,
        throughput_sps: r.f64()?,
        goodput_sps: r.f64()?,
        duration_s: r.f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(flow: u32) -> FlowSummary {
        FlowSummary {
            flow,
            provider: "China Mobile".into(),
            scenario: "high-speed".into(),
            rtt_s: 0.065,
            p_d: 0.0075,
            data_sent: 123_456,
            p_a: 0.006,
            p_a_burst: 0.05,
            acks_per_round: 12.5,
            q_hat: 0.27,
            timeouts: 4,
            spurious_timeouts: 2,
            timeout_sequences: 3,
            mean_recovery_s: 5.0,
            t_rto_s: 0.8,
            loss_indications: 5,
            fast_retransmissions: 2,
            w_m: 48,
            b: 2,
            throughput_sps: 321.5,
            goodput_sps: 300.25,
            duration_s: 120.0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value of the standard test string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_bit_exactly() {
        let s = summary(7);
        let bytes = encode_entry(0xDEAD_BEEF, &s);
        assert!(is_binary_entry(&bytes));
        let (key, back) = decode_entry(&bytes).expect("decodes");
        assert_eq!(key, 0xDEAD_BEEF);
        assert_eq!(back, s);
    }

    #[test]
    fn round_trips_extreme_values() {
        let s = FlowSummary {
            flow: u32::MAX,
            provider: String::new(),
            scenario: "αβγ — utf-8 labels".into(),
            rtt_s: f64::MIN_POSITIVE,
            p_d: -0.0,
            data_sent: u64::MAX,
            duration_s: 1e300,
            ..summary(0)
        };
        let bytes = encode_entry(u64::MAX, &s);
        let (key, back) = decode_entry(&bytes).expect("decodes");
        assert_eq!(key, u64::MAX);
        assert_eq!(back, s);
        // -0.0 must survive as -0.0, not 0.0.
        assert!(back.p_d.is_sign_negative());
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let bytes = encode_entry(42, &summary(1));
        for len in 0..bytes.len() {
            assert_eq!(decode_entry(&bytes[..len]), None, "truncated at {len}");
        }
        assert!(decode_entry(&bytes).is_some());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode_entry(42, &summary(1));
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert_eq!(
                    decode_entry(&bad),
                    None,
                    "flip of byte {i} bit {bit} must not verify"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_entry(42, &summary(1));
        bytes.push(0);
        assert_eq!(decode_entry(&bytes), None);
    }

    #[test]
    fn foreign_engine_version_is_rejected() {
        // Hand-build an entry whose version string differs; the CRC is
        // valid, so only the version check can reject it.
        let s = summary(3);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&[0u8; 4]);
        let body_start = out.len();
        out.extend_from_slice(&7u64.to_le_bytes());
        put_str(&mut out, "hsm-runtime/999");
        put_summary(&mut out, &s);
        let crc = crc32(&out[body_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        let body_len = (out.len() - body_start) as u32;
        out[body_start - 4..body_start].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(decode_entry(&out), None);
    }

    #[test]
    fn unknown_format_version_is_rejected() {
        let mut bytes = encode_entry(42, &summary(1));
        bytes[4] = FORMAT_VERSION + 1;
        assert_eq!(decode_entry(&bytes), None);
    }

    #[test]
    fn json_entries_are_not_binary() {
        assert!(!is_binary_entry(b"{\"key\":1}"));
        assert!(!is_binary_entry(b""));
        assert!(!is_binary_entry(b"HSM"));
    }

    #[test]
    fn varints_cover_multi_byte_lengths() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut r = Reader { buf: &out };
            assert_eq!(r.varint(), Some(v));
            assert!(r.is_empty());
        }
    }
}
