//! Parallel repetition helpers (promoted from `hsm-bench`).
//!
//! Repetition-based experiments (Fig. 12, the extension ablations) average
//! over many independent simulated rides; this fans the rides out over CPU
//! cores, preserving determinism (each ride is a pure function of its
//! index, results are re-assembled in index order, and means are reduced
//! with a fixed-shape pairwise sum — so the numbers are bit-identical for
//! any worker count).

use crate::error::EngineError;

/// Maps `f` over `0..n` in parallel, returning results in index order.
pub fn par_map<T: Send>(n: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4);
    par_map_workers(n, workers, f)
}

/// [`par_map`] with an explicit worker count (≥ 1); the result is the same
/// for every worker count, only the wall-clock changes.
///
/// # Panics
///
/// Panics in the *calling* thread when a worker is lost (see
/// [`try_par_map_workers`] for the fallible twin — workers themselves
/// never panic on a closed channel).
pub fn par_map_workers<T: Send>(n: u64, workers: usize, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    try_par_map_workers(n, workers, f).unwrap_or_else(|e| panic!("parallel map failed: {e}"))
}

/// Fallible [`par_map_workers`]: lost workers surface as an error at the
/// call site instead of a panic inside the worker thread.
///
/// Each result is written straight into its index's pre-allocated slot —
/// the worker claiming index `i` is the only writer of slot `i` — so the
/// output is assembled in order without a channel or a final sort.
/// (A per-slot mutex rather than a write-once cell keeps the bound at
/// `T: Send`; the lock is uncontended by construction.)
///
/// A worker that panics inside `f` counts as lost: the panic is caught
/// in the worker, the remaining workers abort instead of draining the
/// index space, and the call returns [`EngineError::WorkerLost`] — it
/// never re-raises the panic in the calling thread.
///
/// # Errors
///
/// Returns [`EngineError::WorkerLost`] when a slot ends up unfilled — a
/// worker panicked or disappeared without producing its claimed result.
pub fn try_par_map_workers<T: Send>(
    n: u64,
    workers: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Result<Vec<T>, EngineError> {
    let workers = workers.clamp(1, n.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let next = &next;
        let abort = &abort;
        let slots = &slots;
        for _ in 0..workers {
            scope.spawn(move || loop {
                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(value) => {
                        *slots[i as usize].lock().expect("slot lock") = Some(value);
                    }
                    Err(_payload) => {
                        // This worker is dead: leave its slot unfilled
                        // (the collection loop reports WorkerLost) and
                        // stop the others from pulling more work.
                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    let mut results: Vec<T> = Vec::with_capacity(n as usize);
    for slot in slots {
        match slot.into_inner().expect("slot lock") {
            Some(v) => results.push(v),
            None => return Err(EngineError::WorkerLost),
        }
    }
    Ok(results)
}

/// Sums in index order with a balanced pairwise tree.
///
/// The reduction shape depends only on `xs.len()`, never on how the values
/// were produced, so the rounding — and therefore the result — is
/// bit-reproducible across worker counts (and far more accurate than a
/// left-to-right fold on long inputs).
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
        }
    }
}

/// Parallel mean of `f` over `0..n`; 0.0 when `n == 0`.
pub fn par_mean(n: u64, f: impl Fn(u64) -> f64 + Sync) -> f64 {
    par_mean_workers(
        n,
        std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(4),
        f,
    )
}

/// [`par_mean`] with an explicit worker count; bit-identical for every
/// worker count thanks to the index-ordered pairwise reduction.
pub fn par_mean_workers(n: u64, workers: usize, f: impl Fn(u64) -> f64 + Sync) -> f64 {
    if n == 0 {
        return 0.0;
    }
    pairwise_sum(&par_map_workers(n, workers, f)) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn fallible_twin_succeeds_on_the_happy_path() {
        let out = try_par_map_workers(10, 3, |i| i + 1).expect("no worker loss");
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    /// A panic on the *last* slot: every other slot is already filled, so
    /// only the unfilled-slot path can catch this — and it must, as a
    /// structured error rather than a propagated panic.
    #[test]
    fn panic_on_the_last_slot_surfaces_as_worker_lost() {
        let err = try_par_map_workers(8, 3, |i| {
            if i == 7 {
                panic!("chaos: worker death on the last slot");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err, EngineError::WorkerLost);
    }

    /// Two workers dying concurrently (different indices, racing abort
    /// stores) must still collapse to the same structured error on every
    /// interleaving.
    #[test]
    fn two_workers_panicking_concurrently_is_deterministically_lost() {
        for round in 0..20 {
            let err = try_par_map_workers(16, 4, |i| {
                if i == 2 || i == 11 {
                    panic!("chaos: concurrent worker death");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err, EngineError::WorkerLost, "round {round}");
        }
    }

    /// When `f` returns `Result`s and two workers *error* concurrently,
    /// the slots still fill in index order, so a caller scanning for the
    /// first failure always sees the lowest index — regardless of which
    /// racing worker stored its error first.
    #[test]
    fn concurrent_worker_errors_resolve_lowest_index_first() {
        for round in 0..20 {
            let out: Vec<Result<u64, u64>> =
                try_par_map_workers(16, 4, |i| if i == 3 || i == 12 { Err(i) } else { Ok(i) })
                    .expect("errors are values, no worker is lost");
            let first_err = out.iter().find_map(|r| r.as_ref().err());
            assert_eq!(first_err, Some(&3), "round {round}");
        }
    }

    #[test]
    fn mean_of_constants() {
        assert!((par_mean(64, |_| 2.5) - 2.5).abs() < 1e-12);
        assert_eq!(par_mean(0, |_| 1.0), 0.0);
    }

    #[test]
    fn pairwise_sum_matches_exact_small_cases() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[1.5]), 1.5);
        assert_eq!(pairwise_sum(&[1.0, 2.0, 3.0, 4.0, 5.0]), 15.0);
    }

    #[test]
    fn mean_bit_identical_across_worker_counts() {
        // Values whose naive accumulation order visibly changes the
        // rounding: alternating magnitudes spanning ~16 decimal digits.
        let f = |i: u64| {
            if i.is_multiple_of(2) {
                1e16
            } else {
                (i as f64).mul_add(1e-3, 3.7)
            }
        };
        let reference = par_mean_workers(501, 1, f);
        for workers in [2, 3, 8, 64] {
            let m = par_mean_workers(501, workers, f);
            assert_eq!(m.to_bits(), reference.to_bits(), "workers = {workers}");
        }
    }

    #[test]
    fn pairwise_is_more_accurate_than_naive_fold_here() {
        // 1e16 + many small terms: the naive fold loses them one by one;
        // the pairwise tree sums the small terms together first.
        let mut xs = vec![1e16];
        xs.extend(std::iter::repeat_n(1.0, 4096));
        let naive: f64 = xs.iter().sum();
        let exact = 1e16 + 4096.0;
        let pair = pairwise_sum(&xs);
        assert!((pair - exact).abs() <= (naive - exact).abs());
        assert!(
            (pair - exact).abs() < 1.0,
            "pairwise error {}",
            pair - exact
        );
    }
}
