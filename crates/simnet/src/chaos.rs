//! Deterministic link-impairment storms — the simnet-layer fault hooks of
//! the `hsm-chaos` harness.
//!
//! A [`StormPlan`] is a seed-derived schedule of impairment episodes on
//! one link: delay *flaps* (sudden extra propagation delay, as when a
//! handoff stalls the radio link) and *burst-loss* windows (a high
//! superimposed loss probability, as when the train crosses a coverage
//! hole). The [`StormInjector`] agent replays the plan with ordinary
//! engine timers and mutates the target [`Link`](crate::link::Link)
//! through [`Ctx::link_mut`], so a storm is part of the simulation itself:
//! fully deterministic, replayable from the seed, and covered by the
//! engine's packet-conservation invariant like any other traffic.
//!
//! Episodes restore the link's previous impairment when they end, so a
//! plan leaves the link exactly as it found it.

use crate::agent::Agent;
use crate::engine::Ctx;
use crate::link::LinkId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// What one storm episode does to the link while it is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StormKind {
    /// A delay flap: `extra_delay` jumps by this much for the episode.
    Flap(SimDuration),
    /// A burst-loss window: this probability is superimposed on the
    /// link's loss model (`ChannelLoss::set_extra`) for the episode.
    BurstLoss(f64),
}

/// One scheduled impairment window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormEpisode {
    /// When the impairment switches on.
    pub at: SimTime,
    /// How long it stays on.
    pub duration: SimDuration,
    /// The impairment applied.
    pub kind: StormKind,
}

/// A seed-derived schedule of non-overlapping storm episodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StormPlan {
    /// The episodes, in start-time order.
    pub episodes: Vec<StormEpisode>,
}

/// SplitMix64 step — the same tiny generator the chaos harness seeds its
/// fuzzing from; kept local so `hsm-simnet` stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StormPlan {
    /// Derives a storm schedule covering `[0, horizon)` from `seed`:
    /// alternating flap and burst-loss episodes with seed-dependent
    /// spacing, length, spike size and loss intensity. Identical seeds
    /// produce identical plans.
    pub fn from_seed(seed: u64, horizon: SimDuration) -> StormPlan {
        let mut state = seed ^ 0x5747_4f52_4d21_2121; // "STORM!!"
        let mut episodes = Vec::new();
        let horizon_us = horizon.as_micros();
        // Start after a short calm; march windows until the horizon.
        let mut cursor_us: u64 = 200_000 + splitmix64(&mut state) % 300_000;
        while cursor_us < horizon_us {
            let len_us = 50_000 + splitmix64(&mut state) % 400_000;
            let kind = if splitmix64(&mut state).is_multiple_of(2) {
                StormKind::Flap(SimDuration::from_micros(
                    20_000 + splitmix64(&mut state) % 180_000,
                ))
            } else {
                StormKind::BurstLoss(0.3 + (splitmix64(&mut state) % 60) as f64 / 100.0)
            };
            episodes.push(StormEpisode {
                at: SimTime::ZERO + SimDuration::from_micros(cursor_us),
                duration: SimDuration::from_micros(len_us),
                kind,
            });
            // Calm gap before the next episode.
            cursor_us = cursor_us + len_us + 100_000 + splitmix64(&mut state) % 800_000;
        }
        StormPlan { episodes }
    }
}

/// Timer tags: episode `i` starts at `2 * i` and ends at `2 * i + 1`.
fn start_tag(i: usize) -> u64 {
    2 * i as u64
}
fn end_tag(i: usize) -> u64 {
    2 * i as u64 + 1
}

/// An agent that replays a [`StormPlan`] against one link.
///
/// Register it on the engine alongside the traffic agents; it schedules
/// one timer per episode boundary and applies/restores the impairment in
/// the timer callbacks. Restoration is exact: the pre-episode
/// `extra_delay` / superimposed-loss values are saved when the episode
/// starts and written back when it ends.
#[derive(Debug)]
pub struct StormInjector {
    /// The link under storm.
    pub link: LinkId,
    /// The schedule to replay.
    pub plan: StormPlan,
    /// Episodes applied so far (telemetry for tests).
    pub applied: u64,
    /// Saved `extra_delay` to restore after a flap.
    saved_delay: SimDuration,
    /// Saved superimposed loss to restore after a burst window.
    saved_extra_loss: f64,
}

impl StormInjector {
    /// Creates an injector replaying `plan` against `link`.
    pub fn new(link: LinkId, plan: StormPlan) -> StormInjector {
        StormInjector {
            link,
            plan,
            applied: 0,
            saved_delay: SimDuration::ZERO,
            saved_extra_loss: 0.0,
        }
    }
}

impl Agent for StormInjector {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, ep) in self.plan.episodes.iter().enumerate() {
            ctx.schedule_at(ep.at, start_tag(i));
            ctx.schedule_at(ep.at + ep.duration, end_tag(i));
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
        // The injector is not an endpoint; traffic never addresses it.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let i = (tag / 2) as usize;
        let Some(ep) = self.plan.episodes.get(i).copied() else {
            return;
        };
        let starting = tag.is_multiple_of(2);
        let link = ctx.link_mut(self.link);
        match (ep.kind, starting) {
            (StormKind::Flap(spike), true) => {
                self.saved_delay = link.extra_delay;
                link.extra_delay = self.saved_delay + spike;
                self.applied += 1;
            }
            (StormKind::Flap(_), false) => {
                link.extra_delay = self.saved_delay;
            }
            (StormKind::BurstLoss(p), true) => {
                self.saved_extra_loss = link.loss.extra();
                link.loss.set_extra(p);
                self.applied += 1;
            }
            (StormKind::BurstLoss(_), false) => {
                link.loss.set_extra(self.saved_extra_loss);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;
    use crate::engine::Engine;
    use crate::link::LinkSpec;
    use crate::packet::{FlowId, SeqNo};

    /// Fixed-rate sender: one packet per millisecond onto one link.
    #[derive(Debug)]
    struct Pinger {
        out: LinkId,
        sent: u64,
        budget: u64,
    }

    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_in(SimDuration::from_micros(1), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            if self.sent >= self.budget {
                return;
            }
            ctx.send(self.out, Packet::data(FlowId(1), SeqNo(self.sent), false));
            self.sent += 1;
            ctx.schedule_in(SimDuration::from_millis(1), 0);
        }
    }

    fn storm_run(seed: u64) -> (u64, u64, u64, u64) {
        let mut eng = Engine::new(seed);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let wire = eng.add_link(
            LinkSpec::new(sink, "storm-wire")
                .bandwidth_bps(100_000_000)
                .prop_delay(SimDuration::from_millis(5)),
        );
        let pinger = eng.add_agent(Box::new(Pinger {
            out: wire,
            sent: 0,
            budget: 3000,
        }));
        let plan = StormPlan::from_seed(seed, SimDuration::from_secs(3));
        assert!(!plan.episodes.is_empty(), "seed {seed} produced no storm");
        let injector = eng.add_agent(Box::new(StormInjector::new(wire, plan)));
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let applied = eng
            .agent_mut::<StormInjector>(injector)
            .expect("injector")
            .applied;
        let sent = eng.agent_mut::<Pinger>(pinger).expect("pinger").sent;
        let link = eng.link(wire);
        (applied, sent, link.delivered, link.channel_drops)
    }

    #[test]
    fn storms_apply_and_restore_deterministically() {
        let a = storm_run(11);
        let b = storm_run(11);
        assert_eq!(a, b, "identical seeds must replay identical storms");
        assert!(a.0 >= 2, "expected several episodes, got {}", a.0);
        assert_eq!(a.1, 3000);
        // Every packet is accounted for (delivered or dropped) and the
        // storm actually bit: burst windows drop traffic a calm link
        // would deliver.
        let calm_delivery = {
            let mut eng = Engine::new(11);
            let sink = eng.add_agent(Box::new(NullAgent::new()));
            let wire = eng.add_link(
                LinkSpec::new(sink, "calm-wire")
                    .bandwidth_bps(100_000_000)
                    .prop_delay(SimDuration::from_millis(5)),
            );
            eng.add_agent(Box::new(Pinger {
                out: wire,
                sent: 0,
                budget: 3000,
            }));
            eng.run_until(SimTime::ZERO + SimDuration::from_secs(5));
            eng.link(wire).delivered
        };
        assert_eq!(calm_delivery, 3000);
        assert!(
            a.2 < calm_delivery && a.3 > 0,
            "storm must drop packets: delivered {} drops {}",
            a.2,
            a.3
        );
    }

    #[test]
    fn different_seeds_storm_differently() {
        assert_ne!(
            StormPlan::from_seed(1, SimDuration::from_secs(3)),
            StormPlan::from_seed(2, SimDuration::from_secs(3))
        );
    }

    /// The conservation invariant keeps watching during a storm: corrupt
    /// the ledger mid-storm and the post-run check must fire.
    #[test]
    #[should_panic(expected = "packet conservation violated")]
    fn conservation_check_fires_during_a_storm() {
        let mut eng = Engine::new(7);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let wire = eng.add_link(LinkSpec::new(sink, "storm-wire"));
        eng.add_agent(Box::new(Pinger {
            out: wire,
            sent: 0,
            budget: 100,
        }));
        let plan = StormPlan::from_seed(7, SimDuration::from_secs(1));
        eng.add_agent(Box::new(StormInjector::new(wire, plan)));
        eng.link_mut(wire).inject_conservation_violation();
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    }
}
