//! Retired slab-indexed binary min-heap event queue, kept as a reference
//! implementation for the timing wheel in [`crate::event`].
//!
//! The wheel replaced this queue for throughput (`O(1)` schedule/cancel
//! versus `O(log n)` sifts), but the heap's ordering behaviour is trivial
//! to audit: a strict `(firing time, insertion sequence)` comparator.
//! That makes it the oracle for the standing differential proptest
//! (`tests/queue_differential.rs`), which feeds randomized
//! schedule/cancel/pop interleavings through both queues and asserts
//! identical pop streams and identical [`EventId`] assignments. The
//! criterion microbenches (`queue_churn_heap` vs `queue_churn_wheel`)
//! also build against it to keep the perf delta measured, not remembered.
//!
//! Compiled only for tests and under the `heap-reference` feature — it is
//! not part of the production simulator.

use crate::event::{Event, EventId};
use crate::time::SimTime;

/// Compact heap entry: the ordering key plus the slab address.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapEntry {
    /// Strict total order: earlier time first, then insertion sequence.
    #[inline]
    fn before(&self, other: &HeapEntry) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// One slab slot: the event payload plus the generation that validates
/// heap entries pointing at it.
#[derive(Debug)]
struct Slot {
    gen: u32,
    event: Option<Event>,
}

/// The retired binary-heap future event list (reference oracle).
///
/// API-compatible with the core operations of
/// [`EventQueue`](crate::event::EventQueue): `schedule`, `cancel`,
/// `is_pending`, `peek_time`, `pop`, `pop_before`, `len`, `is_empty`,
/// `reset` — and it issues bit-identical [`EventId`]s for identical
/// operation histories, which the differential test checks.
#[derive(Debug, Default)]
pub struct HeapEventQueue {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    /// Firing time of the most recently popped event; see the wheel's
    /// monotonicity invariant — the oracle enforces the same one.
    #[cfg(any(debug_assertions, test))]
    last_popped: SimTime,
}

impl HeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` and returns its cancellation handle.
    pub fn schedule(&mut self, event: Event) -> EventId {
        let at = event.at;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].event = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.push_heap(HeapEntry { at, seq, slot, gen });
        EventId::new(slot, gen)
    }

    /// Schedule/cancel counters (zeroed stub for engine A/B swaps).
    pub fn stats(&self) -> crate::event::QueueStats {
        crate::event::QueueStats::default()
    }

    /// Clears the queue for reuse, keeping every allocation.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.next_seq = 0;
        #[cfg(any(debug_assertions, test))]
        {
            self.last_popped = SimTime::ZERO;
        }
    }

    /// Cancels a previously scheduled event; the heap entry is left
    /// behind and skipped lazily when it reaches the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot()) {
            Some(slot) if slot.gen == id.gen() && slot.event.is_some() => {
                slot.event = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(id.slot() as u32);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// True if `id` has been scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot())
            .is_some_and(|s| s.gen == id.gen() && s.event.is_some())
    }

    /// Firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.first().map(|e| e.at)
    }

    /// Pops the next live event.
    pub fn pop(&mut self) -> Option<(EventId, Event)> {
        self.pop_before(SimTime::MAX)
    }

    /// Drains all live events sharing the next firing instant (if at or
    /// before `deadline`) into `out`, mirroring
    /// [`EventQueue::pop_batch_before`](crate::event::EventQueue::pop_batch_before)
    /// so benches and the differential suite can drive both queues
    /// through the engine's batch-dispatch access pattern.
    pub fn pop_batch_before(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(EventId, Event)>,
    ) -> usize {
        let Some(first) = self.pop_before(deadline) else {
            return 0;
        };
        let t = first.1.at;
        out.push(first);
        let mut n = 1;
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked live entry"));
            n += 1;
        }
        n
    }

    /// Pops the next live event if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(EventId, Event)> {
        loop {
            let entry = *self.heap.first()?;
            let slot = &mut self.slots[entry.slot as usize];
            if slot.gen != entry.gen || slot.event.is_none() {
                // Stale (cancelled) entry: discard and keep looking.
                self.pop_heap();
                continue;
            }
            if entry.at > deadline {
                return None;
            }
            let event = slot.event.take().expect("checked live above");
            slot.gen = slot.gen.wrapping_add(1);
            self.pop_heap();
            self.free.push(entry.slot);
            self.live -= 1;
            #[cfg(any(debug_assertions, test))]
            {
                assert!(
                    entry.at >= self.last_popped,
                    "event-queue time monotonicity violated: popping event at {:?} \
                     after already firing one at {:?}",
                    entry.at,
                    self.last_popped,
                );
                self.last_popped = entry.at;
            }
            return Some((EventId::new(entry.slot, entry.gen), event));
        }
    }

    /// Drops stale (cancelled) entries off the top of the heap.
    fn skip_stale(&mut self) {
        while let Some(top) = self.heap.first() {
            let slot = &self.slots[top.slot as usize];
            if slot.gen == top.gen && slot.event.is_some() {
                return;
            }
            self.pop_heap();
        }
    }

    /// Standard binary-heap sift-up insertion.
    fn push_heap(&mut self, entry: HeapEntry) {
        let mut i = self.heap.len();
        self.heap.push(entry);
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Removes the heap root (swap-remove + sift-down).
    fn pop_heap(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.truncate(last);
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let mut child = l;
            if r < len && self.heap[r].before(&self.heap[l]) {
                child = r;
            }
            if self.heap[child].before(&self.heap[i]) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentId;
    use crate::event::EventKind;

    fn ev(at_us: u64, tag: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            dst: AgentId::from_raw(0),
            kind: EventKind::Timer { tag },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { tag } => tag,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn heap_reference_pops_time_then_fifo_order() {
        let mut q = HeapEventQueue::new();
        q.schedule(ev(30, 3));
        q.schedule(ev(10, 1));
        q.schedule(ev(10, 2));
        let dead = q.schedule(ev(20, 9));
        assert!(q.cancel(dead));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn heap_reference_issues_same_ids_as_wheel() {
        // The differential contract includes EventId equality; spot-check
        // it here so a drift fails fast even without the proptest.
        let mut heap = HeapEventQueue::new();
        let mut wheel = crate::event::EventQueue::new();
        for t in [40u64, 10, 10, 700_000] {
            assert_eq!(heap.schedule(ev(t, t)), wheel.schedule(ev(t, t)));
        }
        for _ in 0..4 {
            let (hid, he) = heap.pop().unwrap();
            let (wid, we) = wheel.pop().unwrap();
            assert_eq!(hid, wid);
            assert_eq!(he.at, we.at);
            assert_eq!(tag_of(&he), tag_of(&we));
        }
        assert!(heap.pop().is_none() && wheel.pop().is_none());
    }
}
