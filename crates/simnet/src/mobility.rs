//! Train mobility.
//!
//! A [`Trajectory`] maps simulated time to position and speed along a 1-D
//! railway line. The default profile accelerates at a constant rate, cruises
//! (300 km/h for the Beijing–Tianjin line), and brakes symmetrically; short
//! routes that never reach cruise speed fall back to a triangular profile.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Converts km/h to m/s.
pub fn kmh_to_ms(kmh: f64) -> f64 {
    kmh / 3.6
}

/// Converts m/s to km/h.
pub fn ms_to_kmh(ms: f64) -> f64 {
    ms * 3.6
}

/// A 1-D train trajectory: accelerate, cruise, brake (or stand still).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    route_m: f64,
    cruise_ms: f64,
    accel_ms2: f64,
    /// Position on the line where this ride starts (captures taken
    /// mid-journey start mid-route).
    #[serde(default)]
    start_m: f64,
    // Derived, cached at construction:
    t_accel: f64,
    d_accel: f64,
    t_cruise: f64,
    peak_ms: f64,
}

impl Trajectory {
    /// A train standing still at position 0 (stationary measurement
    /// scenario).
    pub fn stationary() -> Trajectory {
        Trajectory {
            route_m: 0.0,
            cruise_ms: 0.0,
            accel_ms2: 1.0,
            start_m: 0.0,
            t_accel: 0.0,
            d_accel: 0.0,
            t_cruise: 0.0,
            peak_ms: 0.0,
        }
    }

    /// Builds a trajectory.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or not finite.
    pub fn new(route_km: f64, cruise_kmh: f64, accel_ms2: f64) -> Trajectory {
        assert!(
            route_km.is_finite() && route_km > 0.0,
            "invalid route length"
        );
        assert!(
            cruise_kmh.is_finite() && cruise_kmh > 0.0,
            "invalid cruise speed"
        );
        assert!(
            accel_ms2.is_finite() && accel_ms2 > 0.0,
            "invalid acceleration"
        );
        let route_m = route_km * 1_000.0;
        let v = kmh_to_ms(cruise_kmh);
        let mut t_accel = v / accel_ms2;
        let mut d_accel = 0.5 * accel_ms2 * t_accel * t_accel;
        let peak_ms;
        let t_cruise;
        if 2.0 * d_accel <= route_m {
            peak_ms = v;
            t_cruise = (route_m - 2.0 * d_accel) / v;
        } else {
            // Triangular profile: never reaches cruise speed.
            d_accel = route_m / 2.0;
            t_accel = (2.0 * d_accel / accel_ms2).sqrt();
            peak_ms = accel_ms2 * t_accel;
            t_cruise = 0.0;
        }
        Trajectory {
            route_m,
            cruise_ms: v,
            accel_ms2,
            start_m: 0.0,
            t_accel,
            d_accel,
            t_cruise,
            peak_ms,
        }
    }

    /// Shifts the ride to start `km` into the line (builder style): every
    /// reported position is offset by `km`, so cell layouts and coverage
    /// holes defined in absolute route coordinates apply to mid-journey
    /// captures.
    pub fn starting_at_km(mut self, km: f64) -> Trajectory {
        assert!(km.is_finite() && km >= 0.0, "invalid start offset");
        self.start_m = km * 1_000.0;
        self
    }

    /// The ride's starting position on the line, metres.
    pub fn start_m(&self) -> f64 {
        self.start_m
    }

    /// The Beijing–Tianjin Intercity Railway profile used throughout the
    /// paper: 120 km at a steady 300 km/h (≈ 33-minute one-way trip with
    /// 0.5 m/s² acceleration).
    pub fn beijing_tianjin() -> Trajectory {
        Trajectory::new(120.0, 300.0, 0.5)
    }

    /// A constant-speed trajectory: the train is already cruising when the
    /// flow starts (the paper's per-flow captures are taken "when the
    /// train is running at a constant speed around 300 km/h").
    pub fn cruising(route_km: f64, kmh: f64) -> Trajectory {
        // A huge acceleration makes the ramp phases negligible (< 0.1 s).
        Trajectory::new(route_km, kmh, 1e6)
    }

    /// Total trip duration.
    pub fn duration(&self) -> SimTime {
        SimTime::from_secs_f64(2.0 * self.t_accel + self.t_cruise)
    }

    /// Route length in metres.
    pub fn route_m(&self) -> f64 {
        self.route_m
    }

    /// Peak speed in m/s (cruise speed, or less on short routes).
    pub fn peak_ms(&self) -> f64 {
        self.peak_ms
    }

    /// Position along the line at `t`, metres (including any start
    /// offset), clamped to the ride's end.
    pub fn position_m(&self, t: SimTime) -> f64 {
        if self.route_m == 0.0 {
            return self.start_m;
        }
        let s = t.as_secs_f64();
        let a = self.accel_ms2;
        let rel = if s <= self.t_accel {
            0.5 * a * s * s
        } else if s <= self.t_accel + self.t_cruise {
            self.d_accel + self.peak_ms * (s - self.t_accel)
        } else {
            let td = (s - self.t_accel - self.t_cruise).min(self.t_accel);
            let base = self.d_accel + self.peak_ms * self.t_cruise;
            (base + self.peak_ms * td - 0.5 * a * td * td).min(self.route_m)
        };
        self.start_m + rel
    }

    /// Speed at `t`, m/s (0 once arrived).
    pub fn speed_ms(&self, t: SimTime) -> f64 {
        if self.route_m == 0.0 {
            return 0.0;
        }
        let s = t.as_secs_f64();
        let a = self.accel_ms2;
        if s <= self.t_accel {
            a * s
        } else if s <= self.t_accel + self.t_cruise {
            self.peak_ms
        } else {
            let td = s - self.t_accel - self.t_cruise;
            (self.peak_ms - a * td).max(0.0)
        }
    }

    /// True once the train has reached the end of the route.
    pub fn arrived(&self, t: SimTime) -> bool {
        self.route_m == 0.0 || t >= self.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert!((kmh_to_ms(300.0) - 83.333).abs() < 0.001);
        assert!((ms_to_kmh(kmh_to_ms(217.0)) - 217.0).abs() < 1e-9);
    }

    #[test]
    fn btr_duration_is_about_33_minutes() {
        let t = Trajectory::beijing_tianjin();
        let mins = t.duration().as_secs_f64() / 60.0;
        // 120 km at 300 km/h is 24 min in pure cruise; acceleration phases
        // stretch it. The paper quotes 33 min including station dwell; we
        // only require the same order.
        assert!((20.0..36.0).contains(&mins), "trip {mins} min");
        assert!((t.peak_ms() - kmh_to_ms(300.0)).abs() < 1e-9);
    }

    #[test]
    fn position_monotone_and_bounded() {
        let t = Trajectory::beijing_tianjin();
        let mut last = -1.0;
        let end = t.duration().as_secs_f64() as u64 + 100;
        for s in (0..end).step_by(7) {
            let p = t.position_m(SimTime::from_secs(s));
            assert!(p >= last, "position went backwards at {s}s");
            assert!(p <= t.route_m() + 1e-6);
            last = p;
        }
        assert!(
            (t.position_m(t.duration() + crate::time::SimDuration::from_secs(60)) - t.route_m())
                .abs()
                < 1.0
        );
    }

    #[test]
    fn speed_profile_shape() {
        let t = Trajectory::beijing_tianjin();
        assert_eq!(t.speed_ms(SimTime::ZERO), 0.0);
        let mid = SimTime::from_secs_f64(t.duration().as_secs_f64() / 2.0);
        assert!((t.speed_ms(mid) - kmh_to_ms(300.0)).abs() < 1e-6);
        assert!(t.speed_ms(t.duration()) < 1.0);
    }

    #[test]
    fn short_route_triangular() {
        // 1 km at 300 km/h with 0.5 m/s^2 never reaches cruise speed.
        let t = Trajectory::new(1.0, 300.0, 0.5);
        assert!(t.peak_ms() < kmh_to_ms(300.0));
        assert!((t.position_m(t.duration()) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn stationary_never_moves() {
        let t = Trajectory::stationary();
        assert_eq!(t.position_m(SimTime::from_secs(1000)), 0.0);
        assert_eq!(t.speed_ms(SimTime::from_secs(1000)), 0.0);
        assert!(t.arrived(SimTime::ZERO));
    }

    #[test]
    fn consistency_position_integral_of_speed() {
        // Numerically integrate speed; should match position closely.
        let t = Trajectory::new(40.0, 250.0, 0.7);
        let dt = 0.05;
        let mut pos = 0.0;
        let mut s = 0.0;
        while s < t.duration().as_secs_f64() {
            pos += t.speed_ms(SimTime::from_secs_f64(s)) * dt;
            s += dt;
        }
        let expect = t.position_m(t.duration());
        assert!((pos - expect).abs() / expect < 0.01, "{pos} vs {expect}");
    }
}
