//! Packet-loss models.
//!
//! The paper's transport-layer findings hinge on *how* packets are lost,
//! not just how often:
//!
//! * a small independent background loss produces the ~0.75 % lifetime
//!   data-loss rate;
//! * *bursty* loss (handoff outages, deep fades) produces ACK-burst loss —
//!   all ACKs of a round lost — which triggers spurious timeouts, and the
//!   very high retransmission loss rate `q` inside timeout recovery.
//!
//! [`LossModel`] is the extension point; [`Bernoulli`] models independent
//! loss, [`GilbertElliott`] models two-state bursty loss, and every link
//! additionally supports a time-bounded [`Outage`] overlay that the
//! cellular handoff process drives.

use crate::rng::SimRng;
use crate::time::SimTime;
use std::fmt::Debug;

/// Decides, per packet, whether the channel destroys it.
pub trait LossModel: Debug + Send {
    /// Returns `true` if a packet entering the channel at `now` is lost.
    fn is_lost(&mut self, now: SimTime, rng: &mut SimRng) -> bool;

    /// Long-run average loss probability, if the model can state one
    /// (used for reporting and calibration checks).
    fn steady_state_rate(&self) -> Option<f64> {
        None
    }
}

/// Independent (Bernoulli) loss with fixed probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates an independent-loss model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability out of range: {p}"
        );
        Bernoulli { p }
    }

    /// A loss-free channel.
    pub fn lossless() -> Self {
        Bernoulli { p: 0.0 }
    }

    /// The per-packet loss probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LossModel for Bernoulli {
    fn is_lost(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        rng.chance(self.p)
    }

    fn steady_state_rate(&self) -> Option<f64> {
        Some(self.p)
    }
}

/// Two-state Gilbert–Elliott burst-loss model.
///
/// The channel alternates between a *good* state with loss `p_good` and a
/// *bad* state with loss `p_bad`; transitions happen per packet with
/// probabilities `g2b` (good→bad) and `b2g` (bad→good). Expected burst
/// length in packets is `1/b2g`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    p_good: f64,
    p_bad: f64,
    g2b: f64,
    b2g: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates a Gilbert–Elliott model starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_good: f64, p_bad: f64, g2b: f64, b2g: f64) -> Self {
        for (name, v) in [
            ("p_good", p_good),
            ("p_bad", p_bad),
            ("g2b", g2b),
            ("b2g", b2g),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} out of range: {v}");
        }
        GilbertElliott {
            p_good,
            p_bad,
            g2b,
            b2g,
            in_bad: false,
        }
    }

    /// True while the channel is in the bad (bursty) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Stationary probability of being in the bad state.
    pub fn bad_state_fraction(&self) -> f64 {
        if self.g2b + self.b2g == 0.0 {
            0.0
        } else {
            self.g2b / (self.g2b + self.b2g)
        }
    }
}

impl LossModel for GilbertElliott {
    fn is_lost(&mut self, _now: SimTime, rng: &mut SimRng) -> bool {
        // Transition first, then draw loss from the (new) state; this makes
        // a g2b transition immediately lossy, which is what a fade onset
        // looks like.
        if self.in_bad {
            if rng.chance(self.b2g) {
                self.in_bad = false;
            }
        } else if rng.chance(self.g2b) {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.p_bad } else { self.p_good };
        rng.chance(p)
    }

    fn steady_state_rate(&self) -> Option<f64> {
        let pi_bad = self.bad_state_fraction();
        Some(pi_bad * self.p_bad + (1.0 - pi_bad) * self.p_good)
    }
}

/// A time-bounded overlay that raises loss to `probability` during
/// `[from, until)` — how handoff outages are imposed on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Start of the outage window.
    pub from: SimTime,
    /// End of the outage window (exclusive).
    pub until: SimTime,
    /// Loss probability while the window is active.
    pub probability: f64,
}

impl Outage {
    /// Creates an outage window.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or the window is empty.
    pub fn new(from: SimTime, until: SimTime, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "outage probability out of range"
        );
        assert!(until > from, "empty outage window");
        Outage {
            from,
            until,
            probability,
        }
    }

    /// True if `now` falls inside the window.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// Per-link loss state: a base model plus an optional outage overlay.
///
/// A packet is lost if the overlay (when active) says so, *or* the base
/// model says so — the overlay models an additional impairment, not a
/// replacement.
#[derive(Debug)]
pub struct ChannelLoss {
    base: Box<dyn LossModel>,
    overlay: Option<Outage>,
    extra: f64,
    /// Packets offered to this channel.
    pub offered: u64,
    /// Packets destroyed by this channel.
    pub lost: u64,
}

impl ChannelLoss {
    /// Wraps a base loss model.
    pub fn new(base: Box<dyn LossModel>) -> Self {
        ChannelLoss {
            base,
            overlay: None,
            extra: 0.0,
            offered: 0,
            lost: 0,
        }
    }

    /// A loss-free channel.
    pub fn lossless() -> Self {
        ChannelLoss::new(Box::new(Bernoulli::lossless()))
    }

    /// Installs (or replaces) the outage overlay.
    pub fn set_outage(&mut self, outage: Option<Outage>) {
        self.overlay = outage;
    }

    /// Replaces the base loss model.
    pub fn set_base(&mut self, base: Box<dyn LossModel>) {
        self.base = base;
    }

    /// The currently installed overlay, if any.
    pub fn outage(&self) -> Option<Outage> {
        self.overlay
    }

    /// Sets an additional independent loss probability applied on top of
    /// the base model — the channel process uses this for slowly varying
    /// spatial effects (cell-edge fading, coverage holes).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_extra(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "extra loss out of range: {p}");
        self.extra = p;
    }

    /// The current additional independent loss probability.
    pub fn extra(&self) -> f64 {
        self.extra
    }

    /// Decides the fate of a packet entering the channel at `now`.
    pub fn is_lost(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        self.offered += 1;
        let by_overlay = match self.overlay {
            Some(o) if o.active_at(now) => rng.chance(o.probability),
            _ => false,
        };
        // Always consult the base model so its internal state (e.g. GE
        // transitions) advances at the same packet cadence regardless of
        // overlay activity.
        let by_base = self.base.is_lost(now, rng);
        let by_extra = self.extra > 0.0 && rng.chance(self.extra);
        let lost = by_overlay || by_base || by_extra;
        if lost {
            self.lost += 1;
        }
        lost
    }

    /// Empirical loss rate observed so far.
    pub fn observed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }

    /// Steady-state rate of the base model, if known.
    pub fn base_steady_state(&self) -> Option<f64> {
        self.base.steady_state_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        let mut never = Bernoulli::new(0.0);
        let mut always = Bernoulli::new(1.0);
        for _ in 0..100 {
            assert!(!never.is_lost(SimTime::ZERO, &mut r));
            assert!(always.is_lost(SimTime::ZERO, &mut r));
        }
        assert_eq!(never.steady_state_rate(), Some(0.0));
    }

    #[test]
    fn bernoulli_long_run_rate() {
        let mut r = rng();
        let mut m = Bernoulli::new(0.0075);
        let n = 400_000;
        let lost = (0..n).filter(|_| m.is_lost(SimTime::ZERO, &mut r)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.0075).abs() < 0.001, "rate {rate}");
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_invalid() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn gilbert_elliott_steady_state_matches_simulation() {
        let mut r = rng();
        let mut m = GilbertElliott::new(0.001, 0.5, 0.01, 0.2);
        let expect = m.steady_state_rate().unwrap();
        let n = 600_000;
        let lost = (0..n).filter(|_| m.is_lost(SimTime::ZERO, &mut r)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        // With a very lossy bad state, consecutive losses should appear far
        // more often than under independent loss at the same average rate.
        let mut r = rng();
        let mut ge = GilbertElliott::new(0.0, 0.9, 0.02, 0.2);
        let avg = ge.steady_state_rate().unwrap();
        let n = 200_000;
        let outcomes: Vec<bool> = (0..n).map(|_| ge.is_lost(SimTime::ZERO, &mut r)).collect();
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let losses = outcomes.iter().filter(|&&l| l).count() as f64;
        let p_loss_given_loss = pairs / losses;
        assert!(
            p_loss_given_loss > 3.0 * avg,
            "burstiness: P(loss|loss)={p_loss_given_loss} vs avg={avg}"
        );
    }

    #[test]
    fn bad_state_fraction() {
        let m = GilbertElliott::new(0.0, 1.0, 0.1, 0.3);
        assert!((m.bad_state_fraction() - 0.25).abs() < 1e-12);
        let frozen = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        assert_eq!(frozen.bad_state_fraction(), 0.0);
    }

    #[test]
    fn outage_window_membership() {
        let o = Outage::new(SimTime::from_secs(1), SimTime::from_secs(2), 1.0);
        assert!(!o.active_at(SimTime::from_millis(999)));
        assert!(o.active_at(SimTime::from_secs(1)));
        assert!(o.active_at(SimTime::from_millis(1999)));
        assert!(!o.active_at(SimTime::from_secs(2)));
    }

    #[test]
    fn channel_overlay_dominates_during_window() {
        let mut r = rng();
        let mut ch = ChannelLoss::lossless();
        ch.set_outage(Some(Outage::new(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            1.0,
        )));
        assert!(!ch.is_lost(SimTime::from_millis(500), &mut r));
        assert!(ch.is_lost(SimTime::from_millis(1500), &mut r));
        assert!(!ch.is_lost(SimTime::from_millis(2500), &mut r));
        assert_eq!(ch.offered, 3);
        assert_eq!(ch.lost, 1);
        assert!((ch.observed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn channel_base_still_applies_outside_overlay() {
        let mut r = rng();
        let mut ch = ChannelLoss::new(Box::new(Bernoulli::new(1.0)));
        ch.set_outage(Some(Outage::new(
            SimTime::from_secs(5),
            SimTime::from_secs(6),
            0.0,
        )));
        assert!(ch.is_lost(SimTime::ZERO, &mut r));
    }

    #[test]
    fn observed_rate_empty_channel() {
        let ch = ChannelLoss::lossless();
        assert_eq!(ch.observed_rate(), 0.0);
        assert_eq!(ch.extra(), 0.0);
    }

    #[test]
    fn extra_loss_applies_everywhere() {
        let mut r = rng();
        let mut ch = ChannelLoss::lossless();
        ch.set_extra(1.0);
        assert!(ch.is_lost(SimTime::ZERO, &mut r));
        ch.set_extra(0.0);
        assert!(!ch.is_lost(SimTime::from_secs(9), &mut r));
    }

    #[test]
    #[should_panic]
    fn extra_loss_validated() {
        let mut ch = ChannelLoss::lossless();
        ch.set_extra(2.0);
    }
}
