//! Deterministic random-number streams.
//!
//! Every stochastic element of the simulator (loss models, jitter, flow
//! start offsets, …) draws from a [`SimRng`] derived from a single master
//! seed, so a simulation run is exactly reproducible from its seed alone.
//!
//! Streams are derived with [`RngFactory::stream`] using a label, so adding
//! a new consumer does not perturb the draws seen by existing consumers —
//! the classic "common random numbers" discipline for comparable
//! experiments (e.g. the Fig. 12 TCP-vs-MPTCP pairing).
//!
//! The generator is an inline xoshiro256++ (the same family `rand`'s
//! `SmallRng` uses on 64-bit targets) seeded through SplitMix64, so the
//! crate carries no external RNG dependency and the streams are identical
//! on every platform.

/// A seedable, splittable RNG stream used across the simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream directly from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64 random bits (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            let x = lo + (hi - lo) * self.unit();
            // `unit() < 1` but the scaling can round up to `hi`.
            if x >= hi {
                lo
            } else {
                x
            }
        }
    }

    /// Uniform integer draw in `[lo, hi)`; returns `lo` when empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// Uniform draw in `(0, 1]`, for logarithms.
    fn unit_open_low(&mut self) -> f64 {
        1.0 - self.unit()
    }

    /// Exponentially distributed draw with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite or not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean: {mean}"
        );
        -mean * self.unit_open_low().ln()
    }

    /// Standard-normal draw via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit_open_low();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation, truncated
    /// below at `floor`.
    pub fn normal_clamped(&mut self, mean: f64, sd: f64, floor: f64) -> f64 {
        (mean + sd * self.standard_normal()).max(floor)
    }

    /// Derives an independent child stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

/// Derives labelled, mutually independent [`SimRng`] streams from one
/// master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory {
            master: master_seed,
        }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the stream for `label`. The same `(seed, label)` pair always
    /// yields an identical stream.
    pub fn stream(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the master seed via
        // SplitMix64-style finalization. Stable across platforms & runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = h ^ self.master.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn labelled_streams_are_independent_and_stable() {
        let f = RngFactory::new(7);
        let mut x1 = f.stream("loss.data");
        let mut x2 = f.stream("loss.data");
        let mut y = f.stream("loss.ack");
        let a: Vec<u64> = (0..16).map(|_| (x1.unit() * 1e9) as u64).collect();
        let b: Vec<u64> = (0..16).map(|_| (x2.unit() * 1e9) as u64).collect();
        let c: Vec<u64> = (0..16).map(|_| (y.unit() * 1e9) as u64).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_long_run_rate() {
        let mut r = SimRng::seed_from_u64(123);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.normal_clamped(0.0, 10.0, -1.0) >= -1.0);
        }
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = SimRng::seed_from_u64(11);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| (a.unit() * 1e9) as u64).collect();
        let ys: Vec<u64> = (0..8).map(|_| (b.unit() * 1e9) as u64).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn range_edges() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
        assert_eq!(r.range_u64(5, 5), 5);
        let v = r.range_u64(1, 10);
        assert!((1..10).contains(&v));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = SimRng::seed_from_u64(77);
        for _ in 0..100_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit draw {u}");
        }
    }
}
