//! Cellular layout and the handoff-driven channel process.
//!
//! At 300 km/h a train crosses a cell roughly every 25–60 s. Each crossing
//! triggers a handoff, which at the transport layer manifests as a short
//! *outage* (bursty loss on both directions, often asymmetric) and a
//! latency spike. The paper attributes the long timeout-recovery phases and
//! the ACK-burst losses precisely to these windows.
//!
//! [`ChannelProcess`] is an [`Agent`] that ticks along a [`Trajectory`],
//! detects cell-boundary crossings in a [`CellLayout`], and drives the
//! downlink/uplink [`ChannelLoss`](crate::loss::ChannelLoss) state (outage overlays, extra delay,
//! cell-edge extra loss, coverage holes).

use crate::agent::Agent;
use crate::engine::Ctx;
use crate::link::LinkId;
use crate::loss::Outage;
use crate::mobility::Trajectory;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A stretch of the route with degraded coverage (e.g. the paper notes
/// China Telecom's 3G barely covers the Beijing–Tianjin corridor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageHole {
    /// Start of the hole along the route, metres.
    pub from_m: f64,
    /// End of the hole, metres.
    pub to_m: f64,
    /// Additional independent loss probability inside the hole.
    pub extra_loss: f64,
}

impl CoverageHole {
    /// True if `pos_m` lies inside the hole.
    pub fn contains(&self, pos_m: f64) -> bool {
        pos_m >= self.from_m && pos_m < self.to_m
    }
}

/// Base stations every `spacing_m` along the line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLayout {
    /// Distance between adjacent cell boundaries, metres.
    pub spacing_m: f64,
    /// Offset of the first boundary from position 0, metres.
    pub offset_m: f64,
    /// Additional loss applied near cell edges (worst at the boundary,
    /// zero at the centre).
    pub edge_extra_loss: f64,
    /// Coverage holes along the route.
    pub holes: Vec<CoverageHole>,
}

impl CellLayout {
    /// A typical LTE rail corridor: cells every 2 km, mild edge effect.
    pub fn rail_corridor(spacing_m: f64, edge_extra_loss: f64) -> CellLayout {
        assert!(spacing_m > 0.0, "cell spacing must be positive");
        CellLayout {
            spacing_m,
            offset_m: spacing_m / 2.0,
            edge_extra_loss,
            holes: Vec::new(),
        }
    }

    /// Adds a coverage hole (builder style).
    pub fn with_hole(mut self, hole: CoverageHole) -> CellLayout {
        self.holes.push(hole);
        self
    }

    /// Index of the serving cell at `pos_m`.
    pub fn cell_index(&self, pos_m: f64) -> i64 {
        ((pos_m + self.offset_m) / self.spacing_m).floor() as i64
    }

    /// Distance from `pos_m` to the centre of its serving cell, normalized
    /// to `[0, 1]` where 1 is the cell edge.
    pub fn edge_proximity(&self, pos_m: f64) -> f64 {
        let rel = (pos_m + self.offset_m) / self.spacing_m;
        let frac = rel - rel.floor();
        // frac = 0 at one boundary, 1 at the next; centre is at 0.5.
        ((frac - 0.5).abs() * 2.0).clamp(0.0, 1.0)
    }

    /// Extra independent loss at `pos_m` (edge effect + coverage holes).
    pub fn extra_loss_at(&self, pos_m: f64) -> f64 {
        let edge = self.edge_extra_loss * self.edge_proximity(pos_m).powi(2);
        let hole: f64 = self
            .holes
            .iter()
            .filter(|h| h.contains(pos_m))
            .map(|h| h.extra_loss)
            .sum();
        (edge + hole).clamp(0.0, 1.0)
    }
}

/// Transport-layer footprint of one handoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandoffParams {
    /// Mean outage duration.
    pub outage_mean: SimDuration,
    /// Standard deviation of the outage duration.
    pub outage_sd: SimDuration,
    /// Loss probability on the *downlink* during the outage.
    pub down_loss: f64,
    /// Loss probability on the *uplink* during the outage. ACKs travel the
    /// uplink; the paper's ACK-burst losses require this to be high.
    pub up_loss: f64,
    /// Extra one-way delay imposed while the outage lasts.
    pub extra_delay: SimDuration,
    /// Probability the handoff fails and the outage is `failure_factor`×
    /// longer (radio-link failure → reattach).
    pub failure_prob: f64,
    /// Multiplier applied to the outage duration on failure.
    pub failure_factor: f64,
}

impl HandoffParams {
    /// Typical LTE rail handoff: ~0.4 s outage, occasional failures.
    pub fn lte_rail() -> HandoffParams {
        HandoffParams {
            outage_mean: SimDuration::from_millis(400),
            outage_sd: SimDuration::from_millis(150),
            down_loss: 0.9,
            up_loss: 0.9,
            extra_delay: SimDuration::from_millis(60),
            failure_prob: 0.15,
            failure_factor: 4.0,
        }
    }
}

/// Counters exported by the channel process after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Handoffs performed.
    pub handoffs: u64,
    /// Handoffs that failed (long outage).
    pub failed_handoffs: u64,
}

/// The agent driving link impairments along the journey.
#[derive(Debug)]
pub struct ChannelProcess {
    downlink: LinkId,
    uplink: LinkId,
    trajectory: Trajectory,
    layout: CellLayout,
    handoff: HandoffParams,
    tick: SimDuration,
    serving_cell: Option<i64>,
    outage_until: SimTime,
    /// Statistics for reporting.
    pub stats: ChannelStats,
}

const TAG_TICK: u64 = 1;
const TAG_OUTAGE_END: u64 = 2;

impl ChannelProcess {
    /// Creates the process; register it with the engine like any agent.
    pub fn new(
        downlink: LinkId,
        uplink: LinkId,
        trajectory: Trajectory,
        layout: CellLayout,
        handoff: HandoffParams,
    ) -> ChannelProcess {
        ChannelProcess {
            downlink,
            uplink,
            trajectory,
            layout,
            handoff,
            tick: SimDuration::from_millis(100),
            serving_cell: None,
            outage_until: SimTime::ZERO,
            stats: ChannelStats::default(),
        }
    }

    fn begin_handoff(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mean = self.handoff.outage_mean.as_secs_f64();
        let sd = self.handoff.outage_sd.as_secs_f64();
        let mut dur = ctx.rng().normal_clamped(mean, sd, 0.05);
        let failed = ctx.rng().chance(self.handoff.failure_prob);
        if failed {
            dur *= self.handoff.failure_factor;
            self.stats.failed_handoffs += 1;
        }
        self.stats.handoffs += 1;
        let until = now + SimDuration::from_secs_f64(dur);
        self.outage_until = until;
        let (dl, ul, delay) = (
            self.handoff.down_loss,
            self.handoff.up_loss,
            self.handoff.extra_delay,
        );
        {
            let link = ctx.link_mut(self.downlink);
            link.loss.set_outage(Some(Outage::new(now, until, dl)));
            link.extra_delay = delay;
        }
        {
            let link = ctx.link_mut(self.uplink);
            link.loss.set_outage(Some(Outage::new(now, until, ul)));
            link.extra_delay = delay;
        }
        ctx.schedule_at(until, TAG_OUTAGE_END);
    }

    fn end_outage(&mut self, ctx: &mut Ctx<'_>) {
        // Another handoff may have started meanwhile; only clear if this
        // is the newest outage.
        if ctx.now() >= self.outage_until {
            for link_id in [self.downlink, self.uplink] {
                let link = ctx.link_mut(link_id);
                link.loss.set_outage(None);
                link.extra_delay = SimDuration::ZERO;
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let pos = self.trajectory.position_m(ctx.now());
        let cell = self.layout.cell_index(pos);
        match self.serving_cell {
            None => self.serving_cell = Some(cell),
            Some(prev) if prev != cell => {
                self.serving_cell = Some(cell);
                self.begin_handoff(ctx);
            }
            _ => {}
        }
        let extra = self.layout.extra_loss_at(pos);
        ctx.link_mut(self.downlink).loss.set_extra(extra);
        ctx.link_mut(self.uplink).loss.set_extra(extra);
        if !self.trajectory.arrived(ctx.now()) {
            ctx.schedule_in(self.tick, TAG_TICK);
        }
    }
}

impl Agent for ChannelProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_in(SimDuration::ZERO, TAG_TICK);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
        // The channel process receives no packets.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TAG_TICK => self.on_tick(ctx),
            TAG_OUTAGE_END => self.end_outage(ctx),
            other => unreachable!("unknown channel-process timer tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;
    use crate::engine::Engine;
    use crate::link::LinkSpec;

    #[test]
    fn cell_index_advances_with_position() {
        let layout = CellLayout::rail_corridor(2_000.0, 0.0);
        assert_eq!(layout.cell_index(0.0), 0);
        assert_eq!(layout.cell_index(999.0), 0);
        assert_eq!(layout.cell_index(1_000.0), 1);
        assert_eq!(layout.cell_index(2_999.0), 1);
        assert_eq!(layout.cell_index(3_000.0), 2);
    }

    #[test]
    fn edge_proximity_peaks_at_boundaries() {
        let layout = CellLayout::rail_corridor(2_000.0, 0.1);
        // Boundaries at 1000, 3000, …; centres at 0, 2000, ….
        assert!(layout.edge_proximity(0.0) < 1e-9);
        assert!((layout.edge_proximity(1_000.0) - 1.0).abs() < 1e-9);
        assert!((layout.edge_proximity(500.0) - 0.5).abs() < 1e-9);
        // Extra loss is edge^2-weighted.
        assert!((layout.extra_loss_at(1_000.0) - 0.1).abs() < 1e-9);
        assert!(layout.extra_loss_at(0.0) < 1e-12);
    }

    #[test]
    fn coverage_holes_add_loss() {
        let layout = CellLayout::rail_corridor(2_000.0, 0.0).with_hole(CoverageHole {
            from_m: 100.0,
            to_m: 200.0,
            extra_loss: 0.4,
        });
        assert_eq!(layout.extra_loss_at(150.0), 0.4);
        assert_eq!(layout.extra_loss_at(250.0), 0.0);
        assert!(layout.holes[0].contains(100.0));
        assert!(!layout.holes[0].contains(200.0));
    }

    #[test]
    fn process_performs_handoffs_along_the_route() {
        let mut eng = Engine::new(5);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let down = eng.add_link(LinkSpec::new(sink, "down"));
        let up = eng.add_link(LinkSpec::new(sink, "up"));
        // 10 km route, cells every 1 km -> ~10 boundary crossings.
        let traj = Trajectory::new(10.0, 300.0, 0.5);
        let layout = CellLayout::rail_corridor(1_000.0, 0.05);
        let proc_id = eng.add_agent(Box::new(ChannelProcess::new(
            down,
            up,
            traj,
            layout,
            HandoffParams::lte_rail(),
        )));
        eng.run_until_idle();
        let stats = eng.agent_mut::<ChannelProcess>(proc_id).unwrap().stats;
        assert!(
            (8..=12).contains(&stats.handoffs),
            "expected ~10 handoffs, got {}",
            stats.handoffs
        );
    }

    #[test]
    fn outage_clears_after_window() {
        let mut eng = Engine::new(9);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let down = eng.add_link(LinkSpec::new(sink, "down"));
        let up = eng.add_link(LinkSpec::new(sink, "up"));
        let traj = Trajectory::new(3.0, 300.0, 0.5);
        let layout = CellLayout::rail_corridor(1_000.0, 0.0);
        let mut params = HandoffParams::lte_rail();
        params.failure_prob = 0.0;
        eng.add_agent(Box::new(ChannelProcess::new(
            down, up, traj, layout, params,
        )));
        eng.run_until_idle();
        // After the trip everything must be back to normal.
        assert!(
            eng.link(down).loss.outage().is_none()
                || !eng.link(down).loss.outage().unwrap().active_at(eng.now())
        );
        assert_eq!(eng.link(down).extra_delay, SimDuration::ZERO);
        assert_eq!(eng.link(up).extra_delay, SimDuration::ZERO);
    }

    #[test]
    fn stationary_trajectory_never_hands_off() {
        let mut eng = Engine::new(1);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let down = eng.add_link(LinkSpec::new(sink, "down"));
        let up = eng.add_link(LinkSpec::new(sink, "up"));
        let proc_id = eng.add_agent(Box::new(ChannelProcess::new(
            down,
            up,
            Trajectory::stationary(),
            CellLayout::rail_corridor(2_000.0, 0.0),
            HandoffParams::lte_rail(),
        )));
        eng.run_until(SimTime::from_secs(100));
        let stats = eng.agent_mut::<ChannelProcess>(proc_id).unwrap().stats;
        assert_eq!(stats.handoffs, 0);
    }
}
