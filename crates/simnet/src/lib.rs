//! # hsm-simnet — discrete-event network simulator substrate
//!
//! This crate is the measurement substrate of the `hsm` workspace, which
//! reproduces *"Measurement, Modeling, and Analysis of TCP in High-Speed
//! Mobility Scenarios"* (ICDCS 2016). The paper's raw input — 40 GB of
//! packet traces captured on the Beijing–Tianjin high-speed railway — is
//! proprietary, so this simulator regenerates statistically equivalent
//! transport-layer conditions:
//!
//! * a deterministic [`engine::Engine`] (seeded, reproducible runs),
//! * [`link::Link`]s with bandwidth, delay, jitter and drop-tail queues,
//! * [`loss`] models including bursty Gilbert–Elliott channels and
//!   time-bounded outages,
//! * a 300 km/h train [`mobility::Trajectory`] and a handoff-driven
//!   [`cellular::ChannelProcess`] that impose the outages and loss spikes
//!   the paper observes,
//! * [`observer`] hooks that watch every packet like endpoint `tcpdump`s.
//!
//! TCP itself lives in the `hsm-tcp` crate; analyses in `hsm-trace`.
//!
//! # Quick example
//!
//! ```
//! use hsm_simnet::prelude::*;
//!
//! // A sink agent that counts deliveries.
//! #[derive(Default)]
//! struct Sink { got: u64 }
//! impl Agent for Sink {
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) { self.got += 1; }
//! }
//!
//! let mut eng = Engine::new(7);
//! let sink = eng.add_agent(Box::new(Sink::default()));
//! let wire = eng.add_link(LinkSpec::new(sink, "wire").prop_delay(SimDuration::from_millis(30)));
//! for seq in 0..10 {
//!     eng.inject(wire, Packet::data(FlowId(0), SeqNo(seq), false));
//! }
//! eng.run_until_idle();
//! assert_eq!(eng.agent_mut::<Sink>(sink).unwrap().got, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod arena;
pub mod cellular;
pub mod chaos;
pub mod engine;
pub mod error;
pub mod event;
#[cfg(any(test, feature = "heap-reference"))]
pub mod event_heap;
pub mod link;
pub mod loss;
pub mod loss_ext;
pub mod mobility;
pub mod observer;
pub mod packet;
pub mod rng;
pub mod time;

/// Convenient glob-import surface: `use hsm_simnet::prelude::*;`.
pub mod prelude {
    pub use crate::agent::{Agent, AgentId, NullAgent, RelayAgent};
    pub use crate::arena::PacketArena;
    pub use crate::cellular::{CellLayout, ChannelProcess, CoverageHole, HandoffParams};
    pub use crate::chaos::{StormEpisode, StormInjector, StormKind, StormPlan};
    pub use crate::engine::{Ctx, Engine};
    pub use crate::error::SimError;
    pub use crate::event::{EventId, QueueStats};
    pub use crate::link::{LinkId, LinkSpec, QueuedPacket};
    pub use crate::loss::{Bernoulli, ChannelLoss, GilbertElliott, LossModel, Outage};
    pub use crate::loss_ext::{PeriodicOutage, Scripted, TraceDriven};
    pub use crate::mobility::Trajectory;
    pub use crate::observer::{
        AnyObserver, DeliveryLog, DropCause, Observer, ObserverSet, PacketEvent, PacketEventKind,
        VecRecorder,
    };
    pub use crate::packet::{FlowId, Packet, PacketId, PacketKind, SeqNo};
    pub use crate::rng::{RngFactory, SimRng};
    pub use crate::time::{SimDuration, SimTime};
}
