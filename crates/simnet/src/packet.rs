//! Packets.
//!
//! The simulator moves [`Packet`]s — either TCP data segments or
//! (cumulative) ACKs. Sequence numbers are counted in MSS-sized segments,
//! exactly the unit the Padhye-family models reason in.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identity (unique per engine run, across flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// Flow identity; one TCP connection (or MPTCP subflow) per flow id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u32);

/// Segment sequence number, in MSS units.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The first sequence number of a flow.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Raw value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The transport-level meaning of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data segment carrying one MSS of payload.
    Data {
        /// Segment sequence number.
        seq: SeqNo,
        /// True when this is a retransmission of an earlier segment —
        /// needed to classify spurious timeouts at the receiver.
        retransmit: bool,
    },
    /// A cumulative acknowledgment.
    Ack {
        /// Next expected sequence number (everything below is received).
        cum: SeqNo,
        /// How many data segments this ACK acknowledges (`b` in the model);
        /// 1 without delayed ACKs.
        acked_count: u32,
    },
}

impl PacketKind {
    /// True for data segments.
    pub fn is_data(&self) -> bool {
        matches!(self, PacketKind::Data { .. })
    }

    /// True for ACKs.
    pub fn is_ack(&self) -> bool {
        matches!(self, PacketKind::Ack { .. })
    }
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id (assigned by the engine when sent).
    pub id: PacketId,
    /// Owning flow.
    pub flow: FlowId,
    /// Data or ACK semantics.
    pub kind: PacketKind,
    /// On-wire size in bytes (headers included).
    pub size_bytes: u32,
    /// Time the packet entered its first link (stamped by the engine).
    pub sent_at: SimTime,
    /// Free-form sender bookkeeping (e.g. MPTCP subflow index).
    pub tag: u64,
}

impl Packet {
    /// Default MSS-sized data packet length on the wire, bytes.
    pub const DATA_BYTES: u32 = 1460 + 40;
    /// Default ACK length on the wire, bytes.
    pub const ACK_BYTES: u32 = 40;

    /// Builds a data segment (id/sent_at are stamped by the engine).
    pub fn data(flow: FlowId, seq: SeqNo, retransmit: bool) -> Packet {
        Packet {
            id: PacketId(0),
            flow,
            kind: PacketKind::Data { seq, retransmit },
            size_bytes: Self::DATA_BYTES,
            sent_at: SimTime::ZERO,
            tag: 0,
        }
    }

    /// Builds a cumulative ACK (id/sent_at are stamped by the engine).
    pub fn ack(flow: FlowId, cum: SeqNo, acked_count: u32) -> Packet {
        Packet {
            id: PacketId(0),
            flow,
            kind: PacketKind::Ack { cum, acked_count },
            size_bytes: Self::ACK_BYTES,
            sent_at: SimTime::ZERO,
            tag: 0,
        }
    }

    /// Sets the sender bookkeeping tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> Packet {
        self.tag = tag;
        self
    }

    /// Sequence number if this is a data segment.
    pub fn data_seq(&self) -> Option<SeqNo> {
        match self.kind {
            PacketKind::Data { seq, .. } => Some(seq),
            PacketKind::Ack { .. } => None,
        }
    }

    /// Cumulative-ACK value if this is an ACK.
    pub fn ack_cum(&self) -> Option<SeqNo> {
        match self.kind {
            PacketKind::Ack { cum, .. } => Some(cum),
            PacketKind::Data { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify() {
        let d = Packet::data(FlowId(1), SeqNo(5), false);
        assert!(d.kind.is_data());
        assert!(!d.kind.is_ack());
        assert_eq!(d.data_seq(), Some(SeqNo(5)));
        assert_eq!(d.ack_cum(), None);
        assert_eq!(d.size_bytes, Packet::DATA_BYTES);

        let a = Packet::ack(FlowId(1), SeqNo(6), 2);
        assert!(a.kind.is_ack());
        assert_eq!(a.ack_cum(), Some(SeqNo(6)));
        assert_eq!(a.data_seq(), None);
        assert_eq!(a.size_bytes, Packet::ACK_BYTES);
    }

    #[test]
    fn seqno_next_increments() {
        assert_eq!(SeqNo::ZERO.next(), SeqNo(1));
        assert_eq!(SeqNo(41).next().as_u64(), 42);
        assert_eq!(format!("{}", SeqNo(7)), "#7");
    }

    #[test]
    fn tag_builder() {
        let p = Packet::data(FlowId(0), SeqNo(0), false).with_tag(3);
        assert_eq!(p.tag, 3);
    }

    #[test]
    fn serde_round_trip() {
        let p = Packet::data(FlowId(2), SeqNo(9), true);
        let json = serde_json::to_string(&p).unwrap();
        let back: Packet = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
