//! Arena-backed struct-of-arrays packet storage.
//!
//! The engine stamps every sent packet into a [`PacketArena`]: one dense
//! column per field, indexed by [`PacketId`]. Ids are minted sequentially,
//! so a packet's id **is** its arena index — nothing is ever freed within
//! a run, and [`PacketArena::clear`] recycles the columns (capacity kept)
//! when the engine resets.
//!
//! Everything downstream of the stamp then moves a 16-byte handle instead
//! of the full packet: link queues and in-flight slots hold
//! [`QueuedPacket`](crate::link::QueuedPacket)s, and `Deliver` events carry
//! a bare [`PacketId`]. The event loop walks dense arrays; the full
//! [`Packet`] is materialized from the columns only at the edges (observer
//! callbacks and [`Agent::on_packet`](crate::agent::Agent::on_packet)),
//! and analyzers that want bulk access can read the columns directly.

use crate::packet::{FlowId, Packet, PacketId, PacketKind, SeqNo};
use crate::time::SimTime;

/// Column tag: a first-transmission data segment.
const KIND_DATA: u8 = 0;
/// Column tag: a retransmitted data segment.
const KIND_DATA_RETX: u8 = 1;
/// Column tag: a cumulative ACK.
const KIND_ACK: u8 = 2;

/// Struct-of-arrays store of every packet stamped by an engine run.
///
/// Indexed by [`PacketId`]; see the module docs for the layout rationale.
#[derive(Debug, Default)]
pub struct PacketArena {
    flow: Vec<u32>,
    kind: Vec<u8>,
    /// `seq` for data segments, `cum` for ACKs.
    word: Vec<u64>,
    /// `acked_count` for ACKs, 0 for data segments.
    count: Vec<u32>,
    size: Vec<u32>,
    sent_at: Vec<SimTime>,
    tag: Vec<u64>,
}

impl PacketArena {
    /// Creates an empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Number of packets stamped so far (equals the next packet id).
    pub fn len(&self) -> usize {
        self.flow.len()
    }

    /// True before the first packet is stamped.
    pub fn is_empty(&self) -> bool {
        self.flow.is_empty()
    }

    /// Forgets every packet while keeping the column allocations, so a
    /// recycled engine stamps its first packet without touching the
    /// allocator.
    pub fn clear(&mut self) {
        self.flow.clear();
        self.kind.clear();
        self.word.clear();
        self.count.clear();
        self.size.clear();
        self.sent_at.clear();
        self.tag.clear();
    }

    /// Stores `packet`'s fields in the next arena row and returns the id
    /// (== row index) it must travel under. The caller stamps `id` and
    /// `sent_at` on the packet before pushing; `packet.id` is not read.
    pub fn push(&mut self, packet: &Packet) -> PacketId {
        let id = PacketId(self.flow.len() as u64);
        let (kind, word, count) = match packet.kind {
            PacketKind::Data { seq, retransmit } => (
                if retransmit {
                    KIND_DATA_RETX
                } else {
                    KIND_DATA
                },
                seq.0,
                0,
            ),
            PacketKind::Ack { cum, acked_count } => (KIND_ACK, cum.0, acked_count),
        };
        self.flow.push(packet.flow.0);
        self.kind.push(kind);
        self.word.push(word);
        self.count.push(count);
        self.size.push(packet.size_bytes);
        self.sent_at.push(packet.sent_at);
        self.tag.push(packet.tag);
        id
    }

    /// Materializes the full [`Packet`] stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted by this arena since the last clear.
    pub fn get(&self, id: PacketId) -> Packet {
        let i = id.0 as usize;
        let kind = match self.kind[i] {
            KIND_ACK => PacketKind::Ack {
                cum: SeqNo(self.word[i]),
                acked_count: self.count[i],
            },
            retx => PacketKind::Data {
                seq: SeqNo(self.word[i]),
                retransmit: retx == KIND_DATA_RETX,
            },
        };
        Packet {
            id,
            flow: FlowId(self.flow[i]),
            kind,
            size_bytes: self.size[i],
            sent_at: self.sent_at[i],
            tag: self.tag[i],
        }
    }

    /// On-wire size of packet `id`, bytes.
    pub fn size_bytes(&self, id: PacketId) -> u32 {
        self.size[id.0 as usize]
    }

    /// Owning flow of packet `id`.
    pub fn flow(&self, id: PacketId) -> FlowId {
        FlowId(self.flow[id.0 as usize])
    }

    /// Send time of packet `id`.
    pub fn sent_at(&self, id: PacketId) -> SimTime {
        self.sent_at[id.0 as usize]
    }

    /// True if packet `id` is a data segment (original or retransmission).
    pub fn is_data(&self, id: PacketId) -> bool {
        self.kind[id.0 as usize] != KIND_ACK
    }

    /// Dense per-packet flow column (index == packet id) for bulk readers.
    pub fn flows(&self) -> &[u32] {
        &self.flow
    }

    /// Dense per-packet size column (index == packet id) for bulk readers.
    pub fn sizes(&self) -> &[u32] {
        &self.size
    }

    /// Dense per-packet send-time column (index == packet id).
    pub fn sent_ats(&self) -> &[SimTime] {
        &self.sent_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(mut p: Packet, id: u64, at_ms: u64) -> Packet {
        p.id = PacketId(id);
        p.sent_at = SimTime::from_millis(at_ms);
        p
    }

    #[test]
    fn ids_are_dense_row_indices() {
        let mut arena = PacketArena::new();
        for i in 0..10u64 {
            let p = stamped(Packet::data(FlowId(3), SeqNo(i), i % 2 == 1), i, i);
            assert_eq!(arena.push(&p), PacketId(i));
        }
        assert_eq!(arena.len(), 10);
        assert!(!arena.is_empty());
    }

    #[test]
    fn round_trips_data_and_ack_packets() {
        let mut arena = PacketArena::new();
        let d = stamped(Packet::data(FlowId(1), SeqNo(41), true).with_tag(9), 0, 5);
        let a = stamped(Packet::ack(FlowId(2), SeqNo(7), 2), 1, 6);
        arena.push(&d);
        arena.push(&a);
        assert_eq!(arena.get(PacketId(0)), d);
        assert_eq!(arena.get(PacketId(1)), a);
        assert_eq!(arena.size_bytes(PacketId(0)), Packet::DATA_BYTES);
        assert_eq!(arena.size_bytes(PacketId(1)), Packet::ACK_BYTES);
        assert_eq!(arena.flow(PacketId(1)), FlowId(2));
        assert_eq!(arena.sent_at(PacketId(0)), SimTime::from_millis(5));
        assert!(arena.is_data(PacketId(0)));
        assert!(!arena.is_data(PacketId(1)));
    }

    #[test]
    fn clear_recycles_rows_and_restarts_ids() {
        let mut arena = PacketArena::new();
        arena.push(&stamped(Packet::data(FlowId(0), SeqNo(0), false), 0, 0));
        arena.clear();
        assert!(arena.is_empty());
        let p = stamped(Packet::ack(FlowId(5), SeqNo(3), 1), 0, 1);
        assert_eq!(arena.push(&p), PacketId(0));
        assert_eq!(arena.get(PacketId(0)), p);
    }

    #[test]
    fn bulk_columns_expose_the_same_rows() {
        let mut arena = PacketArena::new();
        arena.push(&stamped(Packet::data(FlowId(4), SeqNo(0), false), 0, 2));
        arena.push(&stamped(Packet::ack(FlowId(6), SeqNo(1), 1), 1, 3));
        assert_eq!(arena.flows(), &[4, 6]);
        assert_eq!(arena.sizes(), &[Packet::DATA_BYTES, Packet::ACK_BYTES]);
        assert_eq!(
            arena.sent_ats(),
            &[SimTime::from_millis(2), SimTime::from_millis(3)]
        );
    }
}
