//! Agents: the active entities of a simulation.
//!
//! An [`Agent`] is anything that reacts to packets and timers — TCP
//! senders, receivers, channel processes. Agents are registered with the
//! [`Engine`](crate::engine::Engine) and interact with the world only
//! through the [`Ctx`] handed to their callbacks, which
//! keeps ownership simple and the simulation deterministic.

use crate::engine::Ctx;
use crate::packet::Packet;
use std::any::Any;

/// Identity of a registered agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(u32);

impl AgentId {
    /// Builds an id from a raw index. Only the engine should mint these;
    /// exposed for tests and wiring code.
    pub fn from_raw(raw: u32) -> AgentId {
        AgentId(raw)
    }

    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// An active simulation entity.
///
/// The `Any` supertrait allows the engine to hand back concrete agent types
/// after a run (see [`Engine::agent_mut`](crate::engine::Engine::agent_mut)),
/// which is how experiments extract final metrics.
pub trait Agent: Any {
    /// Called once when the simulation starts, before any event fires.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to this agent arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet);

    /// A timer previously scheduled by this agent fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// An agent that drops every packet and ignores timers; useful as a sink
/// endpoint in link-level tests.
#[derive(Debug, Default)]
pub struct NullAgent {
    /// Number of packets that reached this sink.
    pub received: u64,
}

impl NullAgent {
    /// Creates a sink agent.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Agent for NullAgent {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
        self.received += 1;
    }
}

/// An agent that forwards every packet onto another link — the building
/// block of multi-hop paths (server → internet → core → radio → phone).
#[derive(Debug)]
pub struct RelayAgent {
    /// The next hop. Set by wiring code (a placeholder is fine until the
    /// simulation starts).
    pub out: crate::link::LinkId,
    /// Packets forwarded.
    pub forwarded: u64,
}

impl RelayAgent {
    /// Creates a relay forwarding onto `out`.
    pub fn new(out: crate::link::LinkId) -> Self {
        RelayAgent { out, forwarded: 0 }
    }
}

impl Agent for RelayAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.forwarded += 1;
        ctx.send(self.out, packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::packet::{FlowId, SeqNo};
    use crate::prelude::Engine;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn agent_id_round_trips() {
        let id = AgentId::from_raw(7);
        assert_eq!(id.as_usize(), 7);
        assert_eq!(id, AgentId::from_raw(7));
        assert!(AgentId::from_raw(1) < AgentId::from_raw(2));
    }

    #[test]
    fn relay_builds_a_two_hop_path() {
        // source --hop1--> relay --hop2--> sink: delivery time is the sum
        // of both hops' delays (plus transmission times).
        let mut eng = Engine::new(1);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let hop2 = eng.add_link(
            LinkSpec::new(sink, "hop2")
                .bandwidth_bps(12_000_000)
                .prop_delay(SimDuration::from_millis(20)),
        );
        let relay = eng.add_agent(Box::new(RelayAgent::new(hop2)));
        let hop1 = eng.add_link(
            LinkSpec::new(relay, "hop1")
                .bandwidth_bps(12_000_000)
                .prop_delay(SimDuration::from_millis(10)),
        );
        eng.inject(hop1, Packet::data(FlowId(0), SeqNo(0), false));
        eng.run_until_idle();
        // 1 ms tx + 10 ms + 1 ms tx + 20 ms = 32 ms.
        assert_eq!(eng.now(), SimTime::from_millis(32));
        assert_eq!(eng.agent_mut::<RelayAgent>(relay).unwrap().forwarded, 1);
        assert_eq!(eng.agent_mut::<NullAgent>(sink).unwrap().received, 1);
    }
}
