//! Structured engine failures.
//!
//! The engine's internal bookkeeping invariants (event-queue consistency,
//! link transmit state, delivery counters) were historically enforced by
//! `expect`/panic. A panic inside a campaign worker tears the whole
//! process down; [`SimError`] instead surfaces the corruption as a value
//! so `hsm-runtime` can fail the one campaign and report it through
//! `hsm::Error`.

use crate::link::LinkId;
use crate::time::SimTime;
use std::fmt;

/// An engine-internal invariant violation detected while stepping the
/// simulation.
///
/// Any of these means the engine's own bookkeeping is corrupt — they are
/// never caused by agent behaviour, and a run that returns one must be
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The event queue reported a next firing time but produced no event
    /// when popped.
    QueueInconsistent {
        /// The firing time the queue advertised.
        at: SimTime,
    },
    /// A `LinkReady` event fired for a link with no in-flight packet.
    LinkIdle {
        /// The link whose transmit state is corrupt.
        link: LinkId,
    },
    /// A `Deliver` event fired for a link with no deliveries pending.
    DeliverUnderflow {
        /// The link whose delivery ledger is corrupt.
        link: LinkId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QueueInconsistent { at } => {
                write!(
                    f,
                    "event queue inconsistent: peeked firing time {at:?} but no event popped"
                )
            }
            SimError::LinkIdle { link } => {
                write!(
                    f,
                    "link {} signalled ready with no in-flight packet",
                    link.as_usize()
                )
            }
            SimError::DeliverUnderflow { link } => {
                write!(
                    f,
                    "link {} delivered a packet with no delivery pending",
                    link.as_usize()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_link() {
        let e = SimError::LinkIdle {
            link: LinkId::from_raw(3),
        };
        assert!(e.to_string().contains('3'));
        let e = SimError::DeliverUnderflow {
            link: LinkId::from_raw(7),
        };
        assert!(e.to_string().contains('7'));
        let e = SimError::QueueInconsistent {
            at: SimTime::from_millis(5),
        };
        assert!(e.to_string().contains("event queue"));
    }
}
