//! The discrete-event engine.
//!
//! [`Engine`] owns the clock, the future event list, all [`Link`]s, all
//! [`Agent`]s and all observers. Agents interact with the world through
//! the [`Ctx`] passed to their callbacks: sending packets onto links,
//! scheduling/cancelling timers, drawing random numbers and adjusting link
//! impairments (the channel process uses the latter to impose handoff
//! outages).
//!
//! # Hot path
//!
//! The per-event loop is engineered to avoid allocation entirely and to
//! walk dense memory:
//!
//! * packet fields live in a struct-of-arrays
//!   [`PacketArena`](crate::arena::PacketArena) — ids are arena indices,
//!   links queue 16-byte [`QueuedPacket`](crate::link::QueuedPacket)
//!   handles, `Deliver` events carry a bare id, and the full
//!   [`Packet`] is materialized from the columns only at the edges
//!   (observer callbacks and [`Agent::on_packet`]);
//! * link labels are interned as `Arc<str>` at registration, so observer
//!   callbacks and recorded events share one allocation per link;
//! * observers live in an enum-dispatched
//!   [`ObserverSet`]: with no observer the
//!   engine skips event materialization altogether, and the single-
//!   recorder case is a direct (non-virtual) call;
//! * the [`EventQueue`] is a hierarchical timing wheel over a payload
//!   slab — `O(1)` schedule and cancel, no hash map anywhere on the
//!   schedule/pop path (see the `event` module docs);
//! * dispatch is batched per instant: all events sharing one `SimTime`
//!   are drained from the wheel in a single walk into a reusable scratch
//!   buffer, so the queue's slot/bitmap bookkeeping and the clock update
//!   are paid once per instant instead of once per event. An agent
//!   cancelling a same-instant sibling mid-batch tombstones the drained
//!   entry, preserving exact single-pop cancellation semantics.
//!
//! # Failure model
//!
//! Internal bookkeeping corruption (a vanished queue entry, a ready link
//! with nothing in flight, a delivery with none pending) surfaces as a
//! structured [`SimError`] from [`Engine::try_run_until`] instead of
//! panicking, so campaign runners can fail one flow and keep the process
//! alive. The infallible [`Engine::run_until`] wrapper panics on those
//! errors and is fine for tests and examples.
//!
//! # Examples
//!
//! ```
//! use hsm_simnet::prelude::*;
//!
//! #[derive(Default)]
//! struct Echo { got: u64 }
//! impl Agent for Echo {
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) { self.got += 1; }
//! }
//!
//! let mut eng = Engine::new(42);
//! let echo = eng.add_agent(Box::new(Echo::default()));
//! let link = eng.add_link(LinkSpec::new(echo, "wire"));
//! eng.inject(link, Packet::data(FlowId(0), SeqNo(0), false));
//! eng.run_until_idle();
//! assert_eq!(eng.agent_mut::<Echo>(echo).unwrap().got, 1);
//! ```

use crate::agent::{Agent, AgentId};
use crate::arena::PacketArena;
use crate::error::SimError;
use crate::event::{Event, EventId, EventKind, EventQueue, QueueStats};
use crate::link::{Accept, Link, LinkId, LinkSpec, QueuedPacket};
use crate::observer::{
    AnyObserver, DeliveryLog, DropCause, Observer, ObserverSet, PacketEventKind, VecRecorder,
};
use crate::packet::{Packet, PacketId};
use crate::rng::{RngFactory, SimRng};
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Everything an agent may touch from inside a callback.
pub struct Ctx<'a> {
    core: &'a mut Core,
    id: AgentId,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the agent being called.
    pub fn agent_id(&self) -> AgentId {
        self.id
    }

    /// Sends `packet` onto `link`. The engine stamps the packet id and send
    /// time. Returns the stamped id.
    pub fn send(&mut self, link: LinkId, packet: Packet) -> PacketId {
        self.core.send_packet(link, packet)
    }

    /// Schedules a timer for this agent `after` from now; `tag` is returned
    /// verbatim in [`Agent::on_timer`].
    pub fn schedule_in(&mut self, after: SimDuration, tag: u64) -> EventId {
        let at = self.core.now + after;
        self.core.queue.schedule(Event {
            at,
            dst: self.id,
            kind: EventKind::Timer { tag },
        })
    }

    /// Schedules a timer for this agent at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, tag: u64) -> EventId {
        assert!(at >= self.core.now, "scheduling into the past");
        self.core.queue.schedule(Event {
            at,
            dst: self.id,
            kind: EventKind::Timer { tag },
        })
    }

    /// Cancels a pending timer. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel_timer(&mut self, id: EventId) -> bool {
        if self.core.queue.cancel(id) {
            return true;
        }
        // The timer may share this instant with the event being dispatched:
        // already drained into the scratch batch but not yet fired.
        // Tombstoning the batch entry preserves the pre-batching semantics,
        // where the entry would still have been in the queue.
        let from = self.core.batch_pos + 1;
        if let Some(i) = self.core.batch[from.min(self.core.batch.len())..]
            .iter()
            .position(|(bid, _)| *bid == id)
        {
            let i = from + i;
            if !self.core.batch_dead[i] {
                self.core.batch_dead[i] = true;
                return true;
            }
        }
        false
    }

    /// This agent's private random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.agent_rngs[self.id.as_usize()]
    }

    /// Immutable view of a link (to read labels, delay, loss counters).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.as_usize()]
    }

    /// Mutable view of a link — the channel process uses this to install
    /// outages, change base loss and extra delay.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.core.links[id.as_usize()]
    }

    /// Requests the engine stop after the current event.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }
}

struct Core {
    now: SimTime,
    queue: EventQueue,
    links: Vec<Link>,
    observers: ObserverSet,
    agent_rngs: Vec<SimRng>,
    link_rngs: Vec<SimRng>,
    rng_factory: RngFactory,
    /// Struct-of-arrays store of every stamped packet; ids are row
    /// indices, so `arena.len()` is also the next packet id.
    arena: PacketArena,
    stop_requested: bool,
    events_processed: u64,
    /// Reusable scratch buffer for same-instant batch dispatch: all events
    /// sharing the next firing time are drained here in one queue walk.
    batch: Vec<(EventId, Event)>,
    /// Tombstones for `batch` entries cancelled by an earlier event of the
    /// same batch (parallel to `batch`, reset per batch).
    batch_dead: Vec<bool>,
    /// Index of the batch entry currently dispatching; `cancel_timer` only
    /// tombstones entries strictly after it.
    batch_pos: usize,
    /// Queue buffers of links retired by [`Engine::reset`], handed back to
    /// links registered after the reset so a recycled engine wires itself
    /// without reallocating.
    spare_queues: Vec<std::collections::VecDeque<QueuedPacket>>,
}

impl Core {
    fn send_packet(&mut self, link_id: LinkId, mut packet: Packet) -> PacketId {
        packet.id = PacketId(self.arena.len() as u64);
        packet.sent_at = self.now;
        let idx = link_id.as_usize();
        if !self.observers.is_none() {
            self.observers.emit(
                PacketEventKind::Sent,
                self.now,
                link_id,
                &self.links[idx].label,
                &packet,
            );
        }
        let handle = QueuedPacket {
            id: self.arena.push(&packet),
            size_bytes: packet.size_bytes,
        };
        debug_assert_eq!(handle.id, packet.id, "arena row diverged from id");
        let link = &mut self.links[idx];
        match link.offer(handle) {
            Accept::StartTx => {
                let at = self.now + link.tx_time(handle.size_bytes);
                let dst = link.to;
                self.queue.schedule(Event {
                    at,
                    dst,
                    kind: EventKind::LinkReady(link_id),
                });
            }
            Accept::Queued => {}
            Accept::DroppedOverflow(dropped) => {
                if !self.observers.is_none() {
                    let dropped = self.arena.get(dropped.id);
                    self.observers.emit(
                        PacketEventKind::Dropped(DropCause::QueueOverflow),
                        self.now,
                        link_id,
                        &self.links[idx].label,
                        &dropped,
                    );
                }
            }
        }
        handle.id
    }

    fn link_ready(&mut self, link_id: LinkId) -> Result<(), SimError> {
        let idx = link_id.as_usize();
        let link = &mut self.links[idx];
        let Some((done, next)) = link.try_complete_tx() else {
            return Err(SimError::LinkIdle { link: link_id });
        };
        // Chain the next transmission, if any.
        if let Some(next) = next {
            let at = self.now + link.tx_time(next.size_bytes);
            let dst = link.to;
            self.queue.schedule(Event {
                at,
                dst,
                kind: EventKind::LinkReady(link_id),
            });
        }
        // Decide the fate of the completed packet.
        let lost = {
            let rng = &mut self.link_rngs[idx];
            self.links[idx].loss.is_lost(self.now, rng)
        };
        if lost {
            self.links[idx].channel_drops += 1;
            if !self.observers.is_none() {
                let dropped = self.arena.get(done.id);
                self.observers.emit(
                    PacketEventKind::Dropped(DropCause::Channel),
                    self.now,
                    link_id,
                    &self.links[idx].label,
                    &dropped,
                );
            }
            return Ok(());
        }
        let latency = {
            let rng = &mut self.link_rngs[idx];
            self.links[idx].sample_latency(self.now, rng)
        };
        // FIFO: jitter must not let packets overtake each other.
        let at = (self.now + latency).max(self.links[idx].last_delivery);
        self.links[idx].last_delivery = at;
        self.links[idx].deliver_pending += 1;
        let dst = self.links[idx].to;
        self.queue.schedule(Event {
            at,
            dst,
            kind: EventKind::Deliver {
                packet: done.id,
                link: link_id,
            },
        });
        Ok(())
    }
}

/// The simulation engine. See the module docs for an example.
pub struct Engine {
    core: Core,
    agents: Vec<Option<Box<dyn Agent>>>,
    started: bool,
}

impl Engine {
    /// Creates an engine whose every random stream derives from
    /// `master_seed`.
    pub fn new(master_seed: u64) -> Engine {
        Engine {
            core: Core {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                links: Vec::new(),
                observers: ObserverSet::default(),
                agent_rngs: Vec::new(),
                link_rngs: Vec::new(),
                rng_factory: RngFactory::new(master_seed),
                arena: PacketArena::new(),
                stop_requested: false,
                events_processed: 0,
                batch: Vec::new(),
                batch_dead: Vec::new(),
                batch_pos: 0,
                spare_queues: Vec::new(),
            },
            agents: Vec::new(),
            started: false,
        }
    }

    /// Returns the engine to its just-constructed state under a new master
    /// seed while keeping every recyclable allocation: the event queue's
    /// slab/heap capacity, the packet arena's columns, link queue buffers,
    /// and the agent/link/RNG vectors' capacity.
    ///
    /// All agents, links and observers are dropped (re-register them), and
    /// every random stream re-derives from `master_seed` — a reset engine
    /// replays a fresh `Engine::new(master_seed)` bit for bit. Campaign
    /// workers lean on this to reuse one engine across thousands of flows.
    pub fn reset(&mut self, master_seed: u64) {
        self.core.now = SimTime::ZERO;
        self.core.queue.reset();
        self.core
            .spare_queues
            .extend(self.core.links.drain(..).map(Link::into_queue_buffer));
        self.core.observers = ObserverSet::default();
        self.core.agent_rngs.clear();
        self.core.link_rngs.clear();
        self.core.rng_factory = RngFactory::new(master_seed);
        self.core.arena.clear();
        self.core.stop_requested = false;
        self.core.events_processed = 0;
        self.core.batch.clear();
        self.core.batch_dead.clear();
        self.core.batch_pos = 0;
        self.agents.clear();
        self.started = false;
    }

    /// Registers an agent and returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId::from_raw(self.agents.len() as u32);
        let label = format!("agent.{}", id.as_usize());
        self.core
            .agent_rngs
            .push(self.core.rng_factory.stream(&label));
        self.agents.push(Some(agent));
        id
    }

    /// Registers a link and returns its id. The spec's label is interned
    /// here; per-event uses share the allocation.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        let id = LinkId::from_raw(self.core.links.len() as u32);
        let label = format!("link.{}", id.as_usize());
        self.core
            .link_rngs
            .push(self.core.rng_factory.stream(&label));
        let queue = self.core.spare_queues.pop().unwrap_or_default();
        self.core
            .links
            .push(Link::from_spec_with_queue(spec, queue));
        id
    }

    /// Registers a boxed packet-event observer (dynamic dispatch).
    ///
    /// For a [`VecRecorder`], prefer [`Engine::add_recorder`] — it takes
    /// the allocation-free fast path.
    pub fn add_observer(&mut self, obs: Box<dyn Observer>) {
        self.core.observers.push(AnyObserver::Dyn(obs));
    }

    /// Registers a [`VecRecorder`] on the non-virtual fast path. The
    /// recorder's clone-shared storage keeps the caller's handle live.
    pub fn add_recorder(&mut self, rec: VecRecorder) {
        self.core.observers.push(AnyObserver::Recorder(rec));
    }

    /// Registers a [`DeliveryLog`] — the cheapest useful observer. Only
    /// `Delivered` events are stored (two words each); everything else a
    /// capture needs already lives in the packet arena, so the trace
    /// layer can rebuild full per-flow traces from `arena + log`.
    pub fn add_delivery_log(&mut self, log: DeliveryLog) {
        self.core.observers.push(AnyObserver::Deliveries(log));
    }

    /// Injects a packet onto a link from outside any agent (used by tests
    /// and wiring code before the simulation starts).
    pub fn inject(&mut self, link: LinkId, packet: Packet) -> PacketId {
        self.core.send_packet(link, packet)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Event-queue telemetry for this run: schedule/cancel volume, peak
    /// and mean live depth. Campaign runners aggregate it into the simnet
    /// bench baseline so timer-churn regressions are visible.
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue.stats()
    }

    /// Read-only view of the packet arena: every packet stamped this run,
    /// stored as dense columns indexed by [`PacketId`]. Bulk analyzers can
    /// walk the columns directly instead of re-materializing packets.
    pub fn arena(&self) -> &PacketArena {
        &self.core.arena
    }

    /// Immutable view of a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.as_usize()]
    }

    /// Mutable view of a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.core.links[id.as_usize()]
    }

    /// Concrete-typed mutable access to an agent (after or between runs).
    ///
    /// Returns `None` if the id is unknown or the concrete type differs.
    pub fn agent_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let slot = self.agents.get_mut(id.as_usize())?;
        let agent = slot.as_mut()?;
        let any: &mut dyn Any = agent.as_mut();
        any.downcast_mut::<T>()
    }

    /// Runs until the event queue drains, `deadline` passes, or an agent
    /// calls [`Ctx::stop`]. Returns the number of events processed by this
    /// call.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the engine's internal bookkeeping is
    /// corrupt (see the module docs). The run must then be discarded.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<u64, SimError> {
        let mut processed = 0;
        if !self.started {
            self.started = true;
            for idx in 0..self.agents.len() {
                self.with_agent(AgentId::from_raw(idx as u32), |agent, ctx| {
                    agent.on_start(ctx)
                });
            }
        }
        'batches: while !self.core.stop_requested {
            // Same-instant batch dispatch: one wheel walk drains every
            // event sharing the next firing time (discarding stale
            // cancelled entries on the way), so queue bookkeeping and the
            // clock update are paid once per instant, not once per event.
            // This is also the engine's only queue read — the old
            // peek_time-then-pop double traversal is gone; use
            // `EventQueue::next_fire_time` if a read-only probe is ever
            // needed here again.
            self.core.batch.clear();
            self.core.batch_pos = 0;
            let n = self
                .core
                .queue
                .pop_batch_before(deadline, &mut self.core.batch);
            if n == 0 {
                break;
            }
            self.core.batch_dead.clear();
            self.core.batch_dead.resize(n, false);
            let at = self.core.batch[0].1.at;
            debug_assert!(at >= self.core.now, "event in the past");
            self.core.now = at;
            for i in 0..n {
                if self.core.stop_requested {
                    // Stop is terminal for this engine; undispatched
                    // drained events are dropped, exactly as they would
                    // have been left unpopped before batching.
                    break 'batches;
                }
                if self.core.batch_dead[i] {
                    // Cancelled mid-batch by an earlier sibling: not
                    // processed, not counted.
                    continue;
                }
                self.core.batch_pos = i;
                let (_id, event) = self.core.batch[i];
                self.core.events_processed += 1;
                processed += 1;
                match event.kind {
                    EventKind::LinkReady(link) => self.core.link_ready(link)?,
                    EventKind::Deliver { packet, link } => {
                        let l = &mut self.core.links[link.as_usize()];
                        l.deliver_pending = l
                            .deliver_pending
                            .checked_sub(1)
                            .ok_or(SimError::DeliverUnderflow { link })?;
                        l.delivered += 1;
                        let packet = self.core.arena.get(packet);
                        if !self.core.observers.is_none() {
                            self.core.observers.emit(
                                PacketEventKind::Delivered,
                                self.core.now,
                                link,
                                &self.core.links[link.as_usize()].label,
                                &packet,
                            );
                        }
                        self.with_agent(event.dst, |agent, ctx| agent.on_packet(ctx, packet));
                    }
                    EventKind::Timer { tag } => {
                        self.with_agent(event.dst, |agent, ctx| agent.on_timer(ctx, tag));
                    }
                }
            }
        }
        // Leftover batch state must not leak into the next run's
        // cancel_timer scans.
        self.core.batch.clear();
        self.core.batch_dead.clear();
        self.core.batch_pos = 0;
        // Cross-layer invariant: no link may have lost or duplicated a
        // packet. Cheap (one pass over the links), so we verify after every
        // run in debug/test builds.
        #[cfg(any(debug_assertions, test))]
        for link in &self.core.links {
            link.assert_conservation();
        }
        Ok(processed)
    }

    /// Infallible twin of [`Engine::try_run_until`].
    ///
    /// # Panics
    ///
    /// Panics if the engine reports a [`SimError`] — campaign runners that
    /// must survive a corrupt run use the fallible twin instead.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        match self.try_run_until(deadline) {
            Ok(processed) => processed,
            Err(e) => panic!("simulation engine invariant violated: {e}"),
        }
    }

    /// Runs until the event queue drains or an agent stops the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the engine's internal bookkeeping is
    /// corrupt (see the module docs).
    pub fn try_run_until_idle(&mut self) -> Result<u64, SimError> {
        self.try_run_until(SimTime::MAX)
    }

    /// Infallible twin of [`Engine::try_run_until_idle`].
    ///
    /// # Panics
    ///
    /// Panics if the engine reports a [`SimError`].
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// True once an agent has requested a stop.
    pub fn stopped(&self) -> bool {
        self.core.stop_requested
    }

    fn with_agent(&mut self, id: AgentId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let Some(slot) = self.agents.get_mut(id.as_usize()) else {
            return;
        };
        let Some(mut agent) = slot.take() else { return };
        let mut ctx = Ctx {
            core: &mut self.core,
            id,
        };
        f(agent.as_mut(), &mut ctx);
        self.agents[id.as_usize()] = Some(agent);
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.core.now)
            .field("agents", &self.agents.len())
            .field("links", &self.core.links.len())
            .field("pending_events", &self.core.queue.len())
            .field("events_processed", &self.core.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Bernoulli, ChannelLoss};
    use crate::observer::VecRecorder;
    use crate::packet::{FlowId, SeqNo};

    /// Sends `count` packets spaced by a timer, records delivery times.
    struct Pinger {
        link: LinkId,
        count: u64,
        sent: u64,
    }
    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_in(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
            if self.sent < self.count {
                ctx.send(self.link, Packet::data(FlowId(0), SeqNo(self.sent), false));
                self.sent += 1;
                ctx.schedule_in(SimDuration::from_millis(1), 0);
            }
        }
    }

    struct Sink {
        deliveries: Vec<SimTime>,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: Packet) {
            self.deliveries.push(ctx.now());
        }
    }

    fn build(seed: u64, loss_p: f64, count: u64) -> (Engine, AgentId, VecRecorder) {
        let mut eng = Engine::new(seed);
        let sink = eng.add_agent(Box::new(Sink {
            deliveries: Vec::new(),
        }));
        let link = eng.add_link(
            LinkSpec::new(sink, "wire")
                .bandwidth_bps(12_000_000)
                .prop_delay(SimDuration::from_millis(10))
                .loss(ChannelLoss::new(Box::new(Bernoulli::new(loss_p)))),
        );
        let pinger = eng.add_agent(Box::new(Pinger {
            link,
            count,
            sent: 0,
        }));
        let _ = pinger;
        let rec = VecRecorder::new();
        eng.add_recorder(rec.clone());
        (eng, sink, rec)
    }

    #[test]
    fn packets_arrive_after_tx_plus_prop_delay() {
        let (mut eng, sink, _rec) = build(1, 0.0, 1);
        eng.run_until_idle();
        let sink = eng.agent_mut::<Sink>(sink).unwrap();
        assert_eq!(sink.deliveries.len(), 1);
        // 1500 bytes at 12 Mbit/s = 1 ms tx + 10 ms prop = 11 ms.
        assert_eq!(sink.deliveries[0], SimTime::from_millis(11));
    }

    #[test]
    fn lossy_link_drops_roughly_expected_fraction() {
        let (mut eng, sink, rec) = build(7, 0.3, 3000);
        eng.run_until_idle();
        let delivered = eng.agent_mut::<Sink>(sink).unwrap().deliveries.len() as f64;
        let rate = 1.0 - delivered / 3000.0;
        assert!((rate - 0.3).abs() < 0.05, "loss rate {rate}");
        let drops = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, crate::observer::PacketEventKind::Dropped(_)))
            .count();
        assert_eq!(drops as f64 + delivered, 3000.0);
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let trace = |seed| {
            let (mut eng, sink, _r) = build(seed, 0.2, 500);
            eng.run_until_idle();
            eng.agent_mut::<Sink>(sink).unwrap().deliveries.clone()
        };
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn boxed_observer_and_recorder_fast_path_agree() {
        // The same run, observed through the dyn path and the fast path,
        // must record the same events in the same order.
        let run = |fast: bool| {
            let mut eng = Engine::new(5);
            let sink = eng.add_agent(Box::new(Sink {
                deliveries: Vec::new(),
            }));
            let link = eng.add_link(
                LinkSpec::new(sink, "wire")
                    .bandwidth_bps(12_000_000)
                    .prop_delay(SimDuration::from_millis(10))
                    .loss(ChannelLoss::new(Box::new(Bernoulli::new(0.2)))),
            );
            eng.add_agent(Box::new(Pinger {
                link,
                count: 200,
                sent: 0,
            }));
            let rec = VecRecorder::new();
            if fast {
                eng.add_recorder(rec.clone());
            } else {
                eng.add_observer(Box::new(rec.clone()));
            }
            eng.run_until_idle();
            rec.take_events()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn reset_engine_replays_a_fresh_engine_bit_for_bit() {
        // Same seed, same wiring: a recycled engine must reproduce a fresh
        // engine's full observable behaviour — delivery times, recorded
        // event streams, packet ids, event counts.
        let wire = |eng: &mut Engine| -> (AgentId, VecRecorder) {
            let sink = eng.add_agent(Box::new(Sink {
                deliveries: Vec::new(),
            }));
            let link = eng.add_link(
                LinkSpec::new(sink, "wire")
                    .bandwidth_bps(12_000_000)
                    .prop_delay(SimDuration::from_millis(10))
                    .loss(ChannelLoss::new(Box::new(Bernoulli::new(0.2)))),
            );
            eng.add_agent(Box::new(Pinger {
                link,
                count: 400,
                sent: 0,
            }));
            let rec = VecRecorder::new();
            eng.add_recorder(rec.clone());
            (sink, rec)
        };

        let mut fresh = Engine::new(42);
        let (sink, rec) = wire(&mut fresh);
        fresh.run_until_idle();
        let fresh_deliveries = fresh.agent_mut::<Sink>(sink).unwrap().deliveries.clone();
        let fresh_events = rec.take_events();
        let fresh_count = fresh.events_processed();

        // Dirty an engine with a different seed, then reset it to 42.
        let mut recycled = Engine::new(7);
        let _ = wire(&mut recycled);
        recycled.run_until(SimTime::from_millis(100));
        recycled.reset(42);
        assert_eq!(recycled.events_processed(), 0);
        assert_eq!(recycled.now(), SimTime::ZERO);
        let (sink2, rec2) = wire(&mut recycled);
        recycled.run_until_idle();
        assert_eq!(
            recycled.agent_mut::<Sink>(sink2).unwrap().deliveries,
            fresh_deliveries
        );
        assert_eq!(rec2.take_events(), fresh_events);
        assert_eq!(recycled.events_processed(), fresh_count);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut eng, _sink, _r) = build(1, 0.0, 100);
        eng.run_until(SimTime::from_millis(5));
        assert!(eng.now() <= SimTime::from_millis(5));
        let before = eng.events_processed();
        eng.run_until_idle();
        assert!(eng.events_processed() > before);
    }

    struct Stopper;
    impl Agent for Stopper {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_in(SimDuration::from_millis(1), 7);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            assert_eq!(tag, 7);
            ctx.stop();
        }
    }

    #[test]
    fn agent_can_stop_engine() {
        let mut eng = Engine::new(0);
        eng.add_agent(Box::new(Stopper));
        eng.run_until_idle();
        assert!(eng.stopped());
        assert_eq!(eng.now(), SimTime::from_millis(1));
    }

    #[test]
    fn timer_cancellation_prevents_firing() {
        struct Cancels {
            fired: bool,
        }
        impl Agent for Cancels {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let a = ctx.schedule_in(SimDuration::from_millis(1), 1);
                ctx.schedule_in(SimDuration::from_millis(2), 2);
                assert!(ctx.cancel_timer(a));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                assert_eq!(tag, 2, "cancelled timer fired");
                self.fired = true;
            }
        }
        let mut eng = Engine::new(0);
        let id = eng.add_agent(Box::new(Cancels { fired: false }));
        eng.run_until_idle();
        assert!(eng.agent_mut::<Cancels>(id).unwrap().fired);
    }

    #[test]
    fn same_instant_cancel_mid_batch_suppresses_sibling() {
        // Two timers at the same instant; the first one's callback cancels
        // the second. Under batch dispatch the sibling is already drained
        // into the scratch batch, so the cancel must tombstone it: it
        // neither fires nor counts as processed, and cancel reports true —
        // identical to the pre-batching single-pop semantics.
        struct SiblingCancel {
            second: Option<EventId>,
            fired: Vec<u64>,
            cancel_ok: Option<bool>,
        }
        impl Agent for SiblingCancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule_in(SimDuration::from_millis(1), 1);
                self.second = Some(ctx.schedule_in(SimDuration::from_millis(1), 2));
                ctx.schedule_in(SimDuration::from_millis(1), 3);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.push(tag);
                if tag == 1 {
                    let id = self.second.take().unwrap();
                    self.cancel_ok = Some(ctx.cancel_timer(id));
                    assert!(!ctx.cancel_timer(id), "double cancel must be false");
                }
            }
        }
        let mut eng = Engine::new(0);
        let id = eng.add_agent(Box::new(SiblingCancel {
            second: None,
            fired: Vec::new(),
            cancel_ok: None,
        }));
        let processed = eng.run_until_idle();
        let agent = eng.agent_mut::<SiblingCancel>(id).unwrap();
        assert_eq!(agent.fired, vec![1, 3], "tombstoned timer must not fire");
        assert_eq!(agent.cancel_ok, Some(true), "mid-batch cancel succeeds");
        assert_eq!(processed, 2, "tombstoned event is not counted");
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn queue_stats_surface_schedule_and_cancel_counts() {
        let (mut eng, _sink, _rec) = build(1, 0.0, 10);
        eng.run_until_idle();
        let stats = eng.queue_stats();
        assert!(stats.schedules > 0);
        assert!(stats.max_depth >= 1);
        assert!(stats.mean_depth() > 0.0);
    }

    #[test]
    fn agent_mut_wrong_type_is_none() {
        let mut eng = Engine::new(0);
        let id = eng.add_agent(Box::new(Stopper));
        assert!(eng.agent_mut::<Sink>(id).is_none());
        assert!(eng.agent_mut::<Stopper>(id).is_some());
    }

    #[test]
    fn lossy_link_conserves_packets() {
        // injected = delivered + dropped, per link, after the queue drains.
        let (mut eng, _sink, _rec) = build(11, 0.25, 2000);
        eng.run_until_idle();
        let link = eng.link(LinkId::from_raw(0));
        assert_eq!(link.offered, 2000);
        assert_eq!(
            link.offered,
            link.delivered + link.channel_drops + link.overflow_drops
        );
        assert!(link.channel_drops > 0, "loss process never fired");
        assert_eq!(link.deliver_pending, 0);
    }

    #[test]
    #[should_panic(expected = "packet conservation violated")]
    fn conservation_check_fires_on_injected_violation() {
        let (mut eng, _sink, _rec) = build(1, 0.0, 5);
        eng.run_until_idle();
        eng.link_mut(LinkId::from_raw(0))
            .inject_conservation_violation();
        // Any subsequent run re-checks the ledger and must refuse it.
        eng.run_until_idle();
    }

    #[test]
    fn corrupt_delivery_ledger_is_a_structured_error() {
        // Violation injection for the fallible path: force deliver_pending
        // to underflow and check the engine reports DeliverUnderflow
        // instead of panicking.
        struct Corruptor {
            link: LinkId,
        }
        impl Agent for Corruptor {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(self.link, Packet::data(FlowId(0), SeqNo(0), false));
                ctx.schedule_in(SimDuration::from_millis(5), 0);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
                // The packet is propagating: a Deliver event is scheduled.
                // Zeroing the counter makes its arrival underflow.
                let link = ctx.link_mut(self.link);
                link.deliver_pending = 0;
                link.offered -= 1; // keep the conservation ledger quiet
            }
        }
        let mut eng = Engine::new(0);
        let sink = eng.add_agent(Box::new(Sink {
            deliveries: Vec::new(),
        }));
        let link =
            eng.add_link(LinkSpec::new(sink, "wire").prop_delay(SimDuration::from_millis(50)));
        eng.add_agent(Box::new(Corruptor { link }));
        let err = eng.try_run_until_idle().unwrap_err();
        assert_eq!(err, SimError::DeliverUnderflow { link });
    }

    #[test]
    fn delivery_reports_real_link_to_observers() {
        let (mut eng, _sink, rec) = build(2, 0.0, 3);
        eng.run_until_idle();
        let delivered: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, crate::observer::PacketEventKind::Delivered))
            .map(|e| (e.link, e.link_label.clone()))
            .collect();
        assert_eq!(delivered.len(), 3);
        assert!(delivered.iter().all(|(l, lbl)| *l == 0 && &**lbl == "wire"));
    }

    #[test]
    fn queueing_serializes_transmissions() {
        // Two back-to-back packets on a slow link: second arrives one full
        // tx time after the first.
        let mut eng = Engine::new(3);
        let sink = eng.add_agent(Box::new(Sink {
            deliveries: Vec::new(),
        }));
        let link = eng.add_link(
            LinkSpec::new(sink, "slow")
                .bandwidth_bps(1_200_000) // 1500B -> 10 ms tx
                .prop_delay(SimDuration::from_millis(5)),
        );
        eng.inject(link, Packet::data(FlowId(0), SeqNo(0), false));
        eng.inject(link, Packet::data(FlowId(0), SeqNo(1), false));
        eng.run_until_idle();
        let d = &eng.agent_mut::<Sink>(sink).unwrap().deliveries;
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], SimTime::from_millis(15));
        assert_eq!(d[1], SimTime::from_millis(25));
    }
}
