//! Future event list.
//!
//! A classic discrete-event simulation core, reworked for throughput: the
//! queue is a slab-indexed binary min-heap. Event payloads live in a slab
//! of reusable slots addressed by a `(slot, generation)` pair packed into
//! the [`EventId`]; the heap itself holds only compact 24-byte entries
//! `(time, sequence, slot, generation)`. Scheduling and popping therefore
//! never touch a hash map — the slab lookup is a single indexed read.
//!
//! # Ordering contract
//!
//! Events fire strictly ordered by `(firing time, insertion sequence)`:
//! earlier times first, and among events scheduled for the **same
//! instant**, strictly in the order `schedule` was called (FIFO). The
//! insertion sequence is a queue-global monotonic counter, so this
//! ordering is total, deterministic, and independent of cancellation
//! history — the property every bit-identical-replay test in the
//! workspace leans on.
//!
//! Cancellation is implemented by generation check: [`EventQueue::cancel`]
//! frees the slot and bumps its generation, so the stale heap entry is
//! recognized and skipped on pop. Scheduling and cancellation stay
//! `O(log n)` / `O(1)`.

use crate::agent::AgentId;
use crate::time::SimTime;

/// Unique handle of a scheduled event, usable for cancellation.
///
/// Internally packs the slab slot index and its generation; the raw value
/// is only meaningful for debugging/logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw numeric value (mostly for debugging/logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    fn new(slot: u32, gen: u32) -> EventId {
        EventId((u64::from(slot) << 32) | u64::from(gen))
    }

    fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }

    fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// What a fired event means to the destination agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A packet finished traversing a link and arrives at the agent.
    Deliver {
        /// Arena id of the arriving packet; the engine materializes the
        /// full [`Packet`](crate::packet::Packet) from its
        /// [`PacketArena`](crate::arena::PacketArena) at delivery time.
        packet: crate::packet::PacketId,
        /// The link it traversed — used for observer reporting and for the
        /// per-link packet-conservation invariant.
        link: crate::link::LinkId,
    },
    /// A timer set by the agent expired.
    Timer {
        /// Agent-defined tag passed back verbatim.
        tag: u64,
    },
    /// A link that was busy transmitting is ready for the next packet.
    LinkReady(crate::link::LinkId),
}

/// A scheduled event: at `at`, deliver `kind` to `dst`.
///
/// `Copy` by design: every payload is a compact handle (timer tag, link
/// id, packet arena id), so the slab stores and returns events without
/// moving heap data.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Firing time.
    pub at: SimTime,
    /// Destination agent (ignored for [`EventKind::LinkReady`]).
    pub dst: AgentId,
    /// Payload.
    pub kind: EventKind,
}

/// Compact heap entry: the ordering key plus the slab address.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapEntry {
    /// Strict total order: earlier time first, then insertion sequence.
    #[inline]
    fn before(&self, other: &HeapEntry) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// One slab slot: the event payload plus the generation that validates
/// heap entries pointing at it.
#[derive(Debug)]
struct Slot {
    gen: u32,
    event: Option<Event>,
}

/// The future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    /// Firing time of the most recently popped event. Simulated time must
    /// never run backwards: every pop checks the invariant in debug/test
    /// builds. A violation means someone scheduled an event in the past
    /// (relative to events already fired) — a logic bug that would silently
    /// corrupt every downstream timing statistic if allowed through.
    #[cfg(any(debug_assertions, test))]
    last_popped: SimTime,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` and returns its cancellation handle.
    pub fn schedule(&mut self, event: Event) -> EventId {
        let at = event.at;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].event = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.push_heap(HeapEntry { at, seq, slot, gen });
        EventId::new(slot, gen)
    }

    /// Clears the queue for reuse, keeping every allocation (heap, slab
    /// and free list capacity) so a recycled engine schedules its first
    /// events without touching the allocator.
    ///
    /// After `reset` the queue is indistinguishable from a freshly
    /// constructed one: the insertion sequence restarts at zero, all slots
    /// are forgotten, and previously issued [`EventId`]s are dead.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.next_seq = 0;
        #[cfg(any(debug_assertions, test))]
        {
            self.last_popped = SimTime::ZERO;
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled. The heap entry is left behind and
    /// skipped lazily when it reaches the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot()) {
            Some(slot) if slot.gen == id.gen() && slot.event.is_some() => {
                slot.event = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(id.slot() as u32);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// True if `id` has been scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot())
            .is_some_and(|s| s.gen == id.gen() && s.event.is_some())
    }

    /// Firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_stale();
        self.heap.first().map(|e| e.at)
    }

    /// Pops the next live event.
    ///
    /// # Panics
    ///
    /// In debug/test builds, panics if the popped event fires earlier than
    /// a previously popped one (time monotonicity violation — an event was
    /// scheduled in the simulated past).
    pub fn pop(&mut self) -> Option<(EventId, Event)> {
        self.pop_before(SimTime::MAX)
    }

    /// Pops the next live event if it fires at or before `deadline`;
    /// returns `None` (leaving the event queued) otherwise. This is the
    /// engine's single-pass fast path: one traversal discards stale heap
    /// entries, checks the deadline and extracts the payload, instead of
    /// a `peek_time` pass followed by a `pop` pass.
    ///
    /// # Panics
    ///
    /// Same monotonicity check as [`EventQueue::pop`] (debug/test builds).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(EventId, Event)> {
        loop {
            let entry = *self.heap.first()?;
            let slot = &mut self.slots[entry.slot as usize];
            if slot.gen != entry.gen || slot.event.is_none() {
                // Stale (cancelled) entry: discard and keep looking.
                self.pop_heap();
                continue;
            }
            if entry.at > deadline {
                return None;
            }
            let event = slot.event.take().expect("checked live above");
            slot.gen = slot.gen.wrapping_add(1);
            self.pop_heap();
            self.free.push(entry.slot);
            self.live -= 1;
            #[cfg(any(debug_assertions, test))]
            {
                assert!(
                    entry.at >= self.last_popped,
                    "event-queue time monotonicity violated: popping event at {:?} \
                     after already firing one at {:?}",
                    entry.at,
                    self.last_popped,
                );
                self.last_popped = entry.at;
            }
            return Some((EventId::new(entry.slot, entry.gen), event));
        }
    }

    /// Drops stale (cancelled) entries off the top of the heap.
    fn skip_stale(&mut self) {
        while let Some(top) = self.heap.first() {
            let slot = &self.slots[top.slot as usize];
            if slot.gen == top.gen && slot.event.is_some() {
                return;
            }
            self.pop_heap();
        }
    }

    /// Standard binary-heap sift-up insertion.
    fn push_heap(&mut self, entry: HeapEntry) {
        let mut i = self.heap.len();
        self.heap.push(entry);
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Removes the heap root (swap-remove + sift-down).
    fn pop_heap(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.truncate(last);
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let mut child = l;
            if r < len && self.heap[r].before(&self.heap[l]) {
                child = r;
            }
            if self.heap[child].before(&self.heap[i]) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, tag: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            dst: AgentId::from_raw(0),
            kind: EventKind::Timer { tag },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { tag } => tag,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ev(30, 3));
        q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(ev(500, tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert!(q.is_pending(a));
        assert!(q.cancel(a));
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
    }

    #[test]
    fn slot_reuse_does_not_resurrect_cancelled_events() {
        // Cancel an event, then schedule new ones until the freed slot is
        // reused: the stale heap entry must not fire the new occupant, and
        // the old id must stay dead.
        let mut q = EventQueue::new();
        let dead = q.schedule(ev(10, 1));
        assert!(q.cancel(dead));
        let alive = q.schedule(ev(20, 2)); // reuses the freed slot
        assert!(!q.is_pending(dead));
        assert!(q.is_pending(alive));
        assert!(!q.cancel(dead), "stale id must not cancel the reused slot");
        let (popped, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 2);
        assert_eq!(popped, alive);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fired_ids_are_not_pending_and_not_cancellable() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.pop().unwrap();
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "fired event must not cancel");
    }

    #[test]
    #[should_panic(expected = "time monotonicity")]
    fn scheduling_into_the_fired_past_trips_the_invariant() {
        // Violation injection: fire an event at t=10, then schedule one at
        // t=5. The queue itself cannot reorder history, so the monotonicity
        // check must refuse to pop it.
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(5, 2));
        q.pop();
    }

    #[test]
    fn monotonicity_allows_equal_times() {
        // Back-to-back events at the same instant are legal (FIFO order).
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(10, 2));
        assert!(q.pop().is_some());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn reset_queue_behaves_like_fresh() {
        // Fill, pop, cancel, then reset: the recycled queue must replay a
        // fresh queue's behaviour exactly (ids, FIFO order, monotonicity).
        let drive = |q: &mut EventQueue| -> Vec<(u64, u64)> {
            q.schedule(ev(10, 1));
            let b = q.schedule(ev(10, 2));
            q.schedule(ev(5, 0));
            assert!(q.cancel(b));
            std::iter::from_fn(|| q.pop())
                .map(|(id, e)| (id.as_u64(), tag_of(&e)))
                .collect()
        };

        let mut fresh = EventQueue::new();
        let fresh_run = drive(&mut fresh);

        let mut recycled = EventQueue::new();
        // Dirty it thoroughly: fired events, cancelled events, live leftovers.
        let dead = recycled.schedule(ev(7, 9));
        recycled.schedule(ev(1, 8));
        recycled.pop().unwrap();
        recycled.cancel(dead);
        recycled.schedule(ev(99, 7)); // still live at reset time
        recycled.reset();
        assert!(recycled.is_empty());
        assert!(!recycled.is_pending(dead), "pre-reset ids must be dead");
        assert_eq!(drive(&mut recycled), fresh_run);
    }

    #[test]
    fn interleaved_same_time_schedules_and_cancels_keep_fifo() {
        // FIFO among same-instant events must survive arbitrary cancel
        // patterns and slot reuse.
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..50).map(|tag| q.schedule(ev(100, tag))).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        for tag in 50..80 {
            q.schedule(ev(100, tag)); // reuses freed slots
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        let expected: Vec<u64> = (0..50u64).filter(|t| t % 3 != 0).chain(50..80).collect();
        assert_eq!(order, expected);
    }
}
