//! Future event list.
//!
//! A classic discrete-event simulation core: events are kept in a binary
//! heap ordered by firing time, with a monotonically increasing sequence
//! number breaking ties so that events scheduled earlier fire earlier
//! (FIFO among simultaneous events — crucial for determinism).
//!
//! Cancellation is implemented by lazy deletion: [`EventQueue::cancel`]
//! marks the event id dead, and dead entries are skipped on pop. This keeps
//! both scheduling and cancellation `O(log n)`/`O(1)`.

use crate::agent::AgentId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// Unique handle of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw numeric value (mostly for debugging/logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// What a fired event means to the destination agent.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A packet finished traversing a link and arrives at the agent.
    Deliver {
        /// The arriving packet.
        packet: crate::packet::Packet,
        /// The link it traversed — used for observer reporting and for the
        /// per-link packet-conservation invariant.
        link: crate::link::LinkId,
    },
    /// A timer set by the agent expired.
    Timer {
        /// Agent-defined tag passed back verbatim.
        tag: u64,
    },
    /// A link that was busy transmitting is ready for the next packet.
    LinkReady(crate::link::LinkId),
}

/// A scheduled event: at `at`, deliver `kind` to `dst`.
#[derive(Debug, Clone)]
pub struct Event {
    /// Firing time.
    pub at: SimTime,
    /// Destination agent (ignored for [`EventKind::LinkReady`]).
    pub dst: AgentId,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Debug)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    id: EventId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The future event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    live: HashMap<EventId, Event>,
    next_id: u64,
    next_seq: u64,
    /// Firing time of the most recently popped event. Simulated time must
    /// never run backwards: every pop checks the invariant in debug/test
    /// builds. A violation means someone scheduled an event in the past
    /// (relative to events already fired) — a logic bug that would silently
    /// corrupt every downstream timing statistic if allowed through.
    #[cfg(any(debug_assertions, test))]
    last_popped: SimTime,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `event` and returns its cancellation handle.
    pub fn schedule(&mut self, event: Event) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at: event.at, seq, id });
        self.live.insert(id, event);
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id).is_some()
    }

    /// True if `id` has been scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains_key(&id)
    }

    /// Firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next live event.
    ///
    /// # Panics
    ///
    /// In debug/test builds, panics if the popped event fires earlier than
    /// a previously popped one (time monotonicity violation — an event was
    /// scheduled in the simulated past).
    pub fn pop(&mut self) -> Option<(EventId, Event)> {
        loop {
            let entry = self.heap.pop()?;
            if let Entry::Occupied(occ) = self.live.entry(entry.id) {
                #[cfg(any(debug_assertions, test))]
                {
                    assert!(
                        entry.at >= self.last_popped,
                        "event-queue time monotonicity violated: popping event at {:?} \
                         after already firing one at {:?}",
                        entry.at,
                        self.last_popped,
                    );
                    self.last_popped = entry.at;
                }
                return Some((entry.id, occ.remove()));
            }
            // Dead (cancelled) entry: skip.
        }
    }

    fn skip_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains_key(&top.id) {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, tag: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            dst: AgentId::from_raw(0),
            kind: EventKind::Timer { tag },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { tag } => tag,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ev(30, 3));
        q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| tag_of(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(ev(500, tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| tag_of(&e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert!(q.is_pending(a));
        assert!(q.cancel(a));
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
    }

    #[test]
    #[should_panic(expected = "time monotonicity")]
    fn scheduling_into_the_fired_past_trips_the_invariant() {
        // Violation injection: fire an event at t=10, then schedule one at
        // t=5. The queue itself cannot reorder history, so the monotonicity
        // check must refuse to pop it.
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(5, 2));
        q.pop();
    }

    #[test]
    fn monotonicity_allows_equal_times() {
        // Back-to-back events at the same instant are legal (FIFO order).
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(10, 2));
        assert!(q.pop().is_some());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
