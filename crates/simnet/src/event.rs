//! Future event list.
//!
//! A classic discrete-event simulation core, reworked twice for
//! throughput: PR 3 replaced the naive queue with a slab-indexed binary
//! min-heap; this revision replaces the heap with a **hierarchical timing
//! wheel** (Varghese/Lauck style) so the dominant operations drop from
//! `O(log n)` to `O(1)`:
//!
//! * [`EventQueue::schedule`] hashes the firing time into one of eleven
//!   64-slot wheels (power-of-two slot granularity derived from the raw
//!   [`SimTime`] microsecond count: level *k* slots are `2^(6k)` µs wide;
//!   the level is the first radix-64 digit in which the firing time
//!   differs from the wheel cursor) and appends a 24-byte entry to that
//!   slot — no sift, no comparison.
//! * [`EventQueue::cancel`] is generation-check based, exactly as before,
//!   plus an in-place reclaim fast path: when the cancelled entry is the
//!   most recent push into its wheel slot (the dominant
//!   schedule-then-cancel RTO-timer pattern), the entry is physically
//!   removed right away, so churning timers leave no garbage behind.
//!   Otherwise the stale entry stays and is discarded lazily — a
//!   cancellation never cascades or re-sorts anything.
//! * [`EventQueue::pop`] walks per-level occupancy bitmaps (one `u64` per
//!   64-slot wheel) to the earliest occupied slot; level-0 slots are one
//!   microsecond wide, so a slot holds exactly one firing instant and
//!   pops in FIFO order by construction. Far-future levels cascade
//!   toward level 0 as simulated time approaches, an amortized `O(1)`
//!   per event per level it descends.
//!
//! Event payloads still live in a slab of reusable slots addressed by a
//! `(slot, generation)` pair packed into the [`EventId`]; wheel entries
//! are compact 24-byte `(time, sequence, slot, generation)` records, so
//! scheduling and popping never touch a hash map.
//!
//! # Ordering contract
//!
//! Events fire strictly ordered by `(firing time, insertion sequence)`:
//! earlier times first, and among events scheduled for the **same
//! instant**, strictly in the order `schedule` was called (FIFO). The
//! insertion sequence is a queue-global monotonic counter, so this
//! ordering is total, deterministic, and independent of cancellation
//! history — the property every bit-identical-replay test in the
//! workspace leans on.
//!
//! ## Proof sketch (see DESIGN.md §15 for the long form)
//!
//! The wheel maintains two invariants. First, **placement is by first
//! differing radix-64 digit**: an entry's level is the most significant
//! digit in which its firing time differs from the wheel cursor, so every
//! entry shares all higher digits with the cursor, slot indices map to
//! exactly one absolute window, and within a level ascending index *is*
//! ascending time (no rotation ambiguity). This holds because the cursor
//! never passes a live wheel entry's firing time: it advances only to
//! the firing time of a popped event or to a cascade-window start, and
//! both are bounded by the earliest wheel entry. The one schedule the
//! wheel cannot hash — an event below the cursor, legal because
//! schedules are only bounded below by the last *fired* time while a
//! missed pop deadline may have committed the cursor further — bypasses
//! the wheel into a tiny ordered backlog lane that always fires before
//! anything in the wheel (its entries are strictly below the cursor,
//! wheel entries never are). Second, **every slot
//! list is sorted by insertion sequence.** Direct schedules append the
//! globally largest sequence, so appends preserve it. A cascade drains
//! one higher-level slot (itself seq-sorted) and deposits each live entry
//! into a strictly lower level; deposits that would land behind a larger
//! sequence are placed by binary search instead
//! ([`VecDeque::partition_point`]), so target lists stay seq-sorted.
//! Because a level-0 slot is one microsecond wide, all its entries share
//! one firing time, and popping the slot front-to-back is exactly
//! `(time, seq)` order. Across slots, the occupancy-bitmap scan visits
//! slots in ascending firing-time order, and a higher-level slot is
//! always cascaded *before* any level-0 event at or beyond its window
//! start is popped (ties prefer the cascade), so no same-instant event
//! can be stranded in a coarser wheel while its siblings fire. The
//! retired binary-heap implementation is kept, feature-gated, as
//! `event_heap::HeapEventQueue`, and a standing differential
//! proptest (`tests/queue_differential.rs`) pops randomized
//! schedule/cancel interleavings through both queues and asserts
//! identical `(time, seq)` streams — the contract is proven, not assumed.

use crate::agent::AgentId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Unique handle of a scheduled event, usable for cancellation.
///
/// Internally packs the slab slot index and its generation; the raw value
/// is only meaningful for debugging/logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw numeric value (mostly for debugging/logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    pub(crate) fn new(slot: u32, gen: u32) -> EventId {
        EventId((u64::from(slot) << 32) | u64::from(gen))
    }

    pub(crate) fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }

    pub(crate) fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// What a fired event means to the destination agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A packet finished traversing a link and arrives at the agent.
    Deliver {
        /// Arena id of the arriving packet; the engine materializes the
        /// full [`Packet`](crate::packet::Packet) from its
        /// [`PacketArena`](crate::arena::PacketArena) at delivery time.
        packet: crate::packet::PacketId,
        /// The link it traversed — used for observer reporting and for the
        /// per-link packet-conservation invariant.
        link: crate::link::LinkId,
    },
    /// A timer set by the agent expired.
    Timer {
        /// Agent-defined tag passed back verbatim.
        tag: u64,
    },
    /// A link that was busy transmitting is ready for the next packet.
    LinkReady(crate::link::LinkId),
}

/// A scheduled event: at `at`, deliver `kind` to `dst`.
///
/// `Copy` by design: every payload is a compact handle (timer tag, link
/// id, packet arena id), so the slab stores and returns events without
/// moving heap data.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Firing time.
    pub at: SimTime,
    /// Destination agent (ignored for [`EventKind::LinkReady`]).
    pub dst: AgentId,
    /// Payload.
    pub kind: EventKind,
}

/// Cheap per-queue telemetry: schedule/cancel volume and live depth,
/// maintained with two adds and a compare per schedule.
///
/// Campaign runners aggregate these across flows into `BENCH_simnet.json`
/// so wheel-granularity choices are justified by measured timer churn and
/// regressions in it stay visible.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Events scheduled.
    pub schedules: u64,
    /// Events cancelled before firing.
    pub cancels: u64,
    /// Peak number of live (pending) events.
    pub max_depth: usize,
    /// Sum of the live depth sampled after every schedule; divide by
    /// `schedules` for the mean depth the queue operated at.
    pub depth_sum: u64,
}

impl QueueStats {
    /// Mean live depth over all schedules (0 when nothing was scheduled).
    pub fn mean_depth(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.schedules as f64
        }
    }

    /// Fraction of scheduled events that were cancelled before firing —
    /// the retransmission-timer churn ratio the wheel's lazy cancellation
    /// is designed around.
    pub fn cancel_ratio(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.cancels as f64 / self.schedules as f64
        }
    }

    /// Folds another queue's counters into this one (campaign
    /// aggregation across flows).
    pub fn merge(&mut self, other: &QueueStats) {
        self.schedules += other.schedules;
        self.cancels += other.cancels;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.depth_sum += other.depth_sum;
    }
}

/// log2 of the slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels. Eleven six-bit levels cover 66 bits — the entire
/// `SimTime` microsecond range, so there is no separate overflow list:
/// the top level *is* the far-future overflow, cascading (and, for
/// deposits that interleave with direct schedules, re-ordering by
/// `(at, seq)`) toward level 0 as time approaches.
const LEVELS: usize = 11;
/// Slot-index mask within a level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// Compact wheel entry: the ordering key plus the slab address.
#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// One wheel level: 64 slot lists plus an occupancy bitmap (bit *i* set
/// iff `slots[i]` is non-empty), so finding the next occupied slot is a
/// rotate plus a trailing-zeros count.
#[derive(Debug)]
struct Level {
    occ: u64,
    slots: Box<[VecDeque<WheelEntry>]>,
}

impl Level {
    fn new() -> Level {
        Level {
            occ: 0,
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Clears every occupied slot, keeping each deque's capacity.
    fn clear(&mut self) {
        let mut occ = self.occ;
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            self.slots[idx].clear();
            occ &= occ - 1;
        }
        self.occ = 0;
    }
}

/// One slab slot: the event payload, the generation that validates wheel
/// entries pointing at it, and the wheel coordinates the entry was
/// *scheduled* into, so `cancel` can try the in-place reclaim. Cascades
/// deliberately do not refresh the coordinates — the reclaim compares the
/// slot's newest entry by `(slot, gen)` before touching it, so stale
/// coordinates just skip the fast path (and the schedule-then-cancel RTO
/// pattern the fast path exists for cancels long before any cascade).
#[derive(Debug)]
struct Slot {
    gen: u32,
    lvl: u8,
    idx: u8,
    event: Option<Event>,
}

/// `Slot::lvl` sentinel for events parked in the backlog lane rather
/// than the wheel (no in-place reclaim; the lane scrubs lazily).
const BACKLOG_LVL: u8 = u8::MAX;

/// Wheel level for an event at absolute time `at`, relative to the wheel
/// cursor `cur`: the position of the most significant radix-64 digit in
/// which the two times differ (level 0 when they are equal).
///
/// Placing by first-differing-digit (rather than by raw distance) keeps a
/// crucial invariant: every entry shares all digits *above* its level
/// with the cursor, so each occupied slot denotes exactly one absolute
/// time window — there is no "this rotation or the next?" ambiguity, and
/// the per-level slot scan is a plain `trailing_zeros`. The invariant is
/// stable under cursor advancement because the cursor never passes a live
/// event's firing time, and any value between two numbers sharing a
/// binary prefix shares that prefix too.
#[inline]
fn level_for(at: u64, cur: u64) -> usize {
    let x = at ^ cur;
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
    }
}

/// The future event list.
#[derive(Debug)]
pub struct EventQueue {
    levels: Vec<Level>,
    /// Summary occupancy bitmap: bit *k* set iff level *k* has any
    /// occupied slot, so the per-pop candidate scan touches only
    /// non-empty levels (usually one or two) instead of all eleven.
    lvl_occ: u16,
    /// Wheel cursor in microseconds. Never exceeds the firing time of
    /// any wheel entry (live entries, that is; stale ones may lag
    /// behind), and never runs backwards. It advances when an event
    /// fires and when a deadline-bounded pop commits a cascade-window
    /// start — so it may legally end up *above* a later schedule's
    /// firing time; such events go to `backlog`, never into the wheel.
    cur: u64,
    /// Below-cursor side lane, ordered by `(time, seq)`. Strictly every
    /// entry here fires before anything in the wheel (backlog times are
    /// below the cursor, live wheel times never are), so pops take the
    /// backlog front first and never need to merge within an instant
    /// across lanes. Almost always empty: it only gains entries when a
    /// missed pop deadline committed the cursor past a later schedule.
    backlog: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    slab: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    /// Memoized exact next firing time (`None` = unknown, recompute).
    /// Kept exact: schedules fold in with `min`, a cancel or pop at the
    /// hinted instant invalidates. Lets deadline-bounded pops and peeks
    /// skip the slot scan on the hot path.
    next_hint: Option<SimTime>,
    stats: QueueStats,
    /// Firing time of the most recently popped event. Simulated time must
    /// never run backwards: every pop checks the invariant in debug/test
    /// builds. A violation means someone scheduled an event in the past
    /// (relative to events already fired) — a logic bug that would silently
    /// corrupt every downstream timing statistic if allowed through.
    #[cfg(any(debug_assertions, test))]
    last_popped: SimTime,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            lvl_occ: 0,
            backlog: BinaryHeap::new(),
            cur: 0,
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            next_hint: None,
            stats: QueueStats::default(),
            #[cfg(any(debug_assertions, test))]
            last_popped: SimTime::ZERO,
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule/cancel/depth counters since construction or [`reset`].
    ///
    /// [`reset`]: EventQueue::reset
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules `event` and returns its cancellation handle.
    pub fn schedule(&mut self, event: Event) -> EventId {
        #[cfg(any(debug_assertions, test))]
        assert!(
            event.at >= self.last_popped,
            "event-queue time monotonicity violated: scheduling an event at \
             {:?} after already firing one at {:?}",
            event.at,
            self.last_popped,
        );
        if let Some(m) = self.next_hint {
            self.next_hint = Some(m.min(event.at));
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize].event = Some(event);
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push(Slot {
                    gen: 0,
                    lvl: 0,
                    idx: 0,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slab[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.stats.schedules += 1;
        self.stats.depth_sum += self.live as u64;
        if self.live > self.stats.max_depth {
            self.stats.max_depth = self.live;
        }
        let entry = WheelEntry {
            at: event.at,
            seq,
            slot,
            gen,
        };
        let at_us = event.at.as_micros();
        if at_us < self.cur {
            // A missed pop deadline may have committed the cursor past
            // this (perfectly legal) firing time — the wheel cannot hash
            // below its cursor, so park the entry in the ordered side
            // lane instead.
            self.slab[slot as usize].lvl = BACKLOG_LVL;
            self.backlog.push(Reverse((at_us, seq, slot, gen)));
        } else {
            let (lvl, idx) = self.place(entry);
            let lane = &mut self.slab[slot as usize];
            lane.lvl = lvl as u8;
            lane.idx = idx as u8;
        }
        EventId::new(slot, gen)
    }

    /// Clears the queue for reuse, keeping every allocation (wheel slot
    /// deques, slab and free list capacity) so a recycled engine schedules
    /// its first events without touching the allocator.
    ///
    /// After `reset` the queue is indistinguishable from a freshly
    /// constructed one: the insertion sequence restarts at zero, all slots
    /// are forgotten, and previously issued [`EventId`]s are dead.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.lvl_occ = 0;
        self.backlog.clear();
        self.cur = 0;
        self.slab.clear();
        self.free.clear();
        self.live = 0;
        self.next_seq = 0;
        self.next_hint = None;
        self.stats = QueueStats::default();
        #[cfg(any(debug_assertions, test))]
        {
            self.last_popped = SimTime::ZERO;
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it already
    /// fired or was already cancelled. When the entry is the most recent
    /// push into its wheel slot — the dominant schedule-then-cancel RTO
    /// pattern — it is reclaimed in place; otherwise the stale entry is
    /// left behind and skipped lazily. A cancellation never cascades.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(lane) = self.slab.get_mut(id.slot()) else {
            return false;
        };
        if lane.gen != id.gen() || lane.event.is_none() {
            return false;
        }
        let at = lane.event.expect("checked above").at;
        lane.event = None;
        lane.gen = lane.gen.wrapping_add(1);
        let (lvl, idx) = (lane.lvl as usize, lane.idx as usize);
        self.free.push(id.slot() as u32);
        self.live -= 1;
        self.stats.cancels += 1;
        // The hint stays exact unless the cancelled event sat at the
        // hinted instant (another event there may or may not remain).
        if self.next_hint == Some(at) {
            self.next_hint = None;
        }
        // In-place reclaim fast path: drop the wheel entry now if it is
        // still the newest push into the slot it was scheduled into
        // (backlog entries and cascade-moved entries scrub lazily).
        if lvl < LEVELS {
            let level = &mut self.levels[lvl];
            let q = &mut level.slots[idx];
            if let Some(back) = q.back() {
                if back.slot as usize == id.slot() && back.gen == id.gen() {
                    q.pop_back();
                    if q.is_empty() {
                        level.occ &= !(1 << idx);
                        if level.occ == 0 {
                            self.lvl_occ &= !(1 << lvl);
                        }
                    }
                }
            }
        }
        true
    }

    /// True if `id` has been scheduled and has neither fired nor been
    /// cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slab
            .get(id.slot())
            .is_some_and(|s| s.gen == id.gen() && s.event.is_some())
    }

    /// Firing time of the next live event, if any.
    ///
    /// Takes `&mut self` to memoize the answer: the scan result is cached
    /// and reused by repeated peeks until a schedule, cancel or pop makes
    /// it stale. Peeking never cascades or advances the wheel cursor —
    /// all wheel maintenance is deferred to the popping paths. For a
    /// read-only bound from shared contexts, use
    /// [`next_fire_time`](EventQueue::next_fire_time).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        if self.next_hint.is_none() {
            self.next_hint = self.next_fire_time();
        }
        self.next_hint
    }

    /// Non-mutating sibling of [`peek_time`](EventQueue::peek_time):
    /// scans live entries without touching queue state, so it works
    /// through `&self` at the cost of walking the first live-occupied
    /// slot of each level (still no allocation, no mutation).
    pub fn next_fire_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        // Backlog entries all fire before anything in the wheel, so any
        // live one short-circuits the level scan below via the `min`.
        for &Reverse((at, _, slot, gen)) in &self.backlog {
            let lane = &self.slab[slot as usize];
            if lane.gen == gen && lane.event.is_some() {
                let t = SimTime::from_micros(at);
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        }
        for level in &self.levels {
            // Walk this level's occupied slots in ascending index order —
            // every entry shares all higher digits with the cursor, so
            // index order *is* time order. The first slot holding any
            // live entry bounds the level's minimum (slot windows are
            // disjoint and ascending).
            let mut rest = level.occ;
            'level: while rest != 0 {
                let idx = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let mut slot_min: Option<SimTime> = None;
                for e in &level.slots[idx] {
                    let lane = &self.slab[e.slot as usize];
                    if lane.gen == e.gen && lane.event.is_some() {
                        slot_min = Some(slot_min.map_or(e.at, |m: SimTime| m.min(e.at)));
                    }
                }
                if let Some(t) = slot_min {
                    best = Some(best.map_or(t, |b: SimTime| b.min(t)));
                    break 'level;
                }
            }
        }
        best
    }

    /// Pops the next live event.
    ///
    /// # Panics
    ///
    /// In debug/test builds, panics if the popped event fires earlier than
    /// a previously popped one (time monotonicity violation — an event was
    /// scheduled in the simulated past).
    pub fn pop(&mut self) -> Option<(EventId, Event)> {
        self.pop_before(SimTime::MAX)
    }

    /// Pops the next live event if it fires at or before `deadline`;
    /// returns `None` (leaving the event queued) otherwise. This is the
    /// single-pass fast path: one bitmap walk discards stale entries,
    /// cascades what must cascade, checks the deadline and extracts the
    /// payload, instead of a `peek_time` pass followed by a `pop` pass.
    ///
    /// # Panics
    ///
    /// Same monotonicity check as [`EventQueue::pop`] (debug/test builds).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(EventId, Event)> {
        if self.live == 0 {
            return None;
        }
        let bound = deadline.as_micros();
        // Backlog first: its entries are strictly below the cursor and
        // live wheel entries never are, so a live backlog front is the
        // global minimum unconditionally.
        if let Some((at, _)) = self.backlog_front() {
            if at > bound {
                return None;
            }
            let Reverse((at, seq, slot, gen)) = self.backlog.pop().expect("front peeked above");
            return Some(self.fire(WheelEntry {
                at: SimTime::from_micros(at),
                seq,
                slot,
                gen,
            }));
        }
        let idx = self.advance(bound)?;
        let q = &mut self.levels[0].slots[idx];
        let entry = q.pop_front().expect("advance leaves a live front");
        debug_assert!(entry.at <= deadline, "advance is deadline-bounded");
        if q.is_empty() {
            self.levels[0].occ &= !(1 << idx);
            if self.levels[0].occ == 0 {
                self.lvl_occ &= !1;
            }
        }
        Some(self.fire(entry))
    }

    /// Drains **all** live events sharing the next firing instant (if it
    /// is at or before `deadline`) into `out`, in FIFO order, and returns
    /// how many were appended. The engine's batch-dispatch loop uses this
    /// to pay the bitmap walk once per instant instead of once per event.
    ///
    /// `out` is appended to, not cleared — callers reuse one scratch
    /// buffer across batches.
    ///
    /// # Panics
    ///
    /// Same monotonicity check as [`EventQueue::pop`] (debug/test builds).
    pub fn pop_batch_before(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(EventId, Event)>,
    ) -> usize {
        if self.live == 0 {
            return 0;
        }
        let bound = deadline.as_micros();
        // Backlog first (see `pop_before`): a live backlog front is the
        // global minimum, and no wheel entry can share its instant (the
        // wheel holds nothing below the cursor), so the whole batch
        // drains from the lane in `(at, seq)` heap order.
        if let Some((t, _)) = self.backlog_front() {
            if t > bound {
                return 0;
            }
            let mut n = 0;
            while let Some((at, _)) = self.backlog_front() {
                if at != t {
                    break;
                }
                let Reverse((at, seq, slot, gen)) = self.backlog.pop().expect("front peeked");
                out.push(self.fire(WheelEntry {
                    at: SimTime::from_micros(at),
                    seq,
                    slot,
                    gen,
                }));
                n += 1;
            }
            return n;
        }
        let Some(idx) = self.advance(bound) else {
            return 0;
        };
        let t = self.levels[0].slots[idx].front().expect("live front").at;
        debug_assert!(t <= deadline, "advance is deadline-bounded");
        let mut n = 0;
        loop {
            let q = &mut self.levels[0].slots[idx];
            let Some(&front) = q.front() else {
                self.levels[0].occ &= !(1 << idx);
                if self.levels[0].occ == 0 {
                    self.lvl_occ &= !1;
                }
                break;
            };
            let lane = &self.slab[front.slot as usize];
            if lane.gen != front.gen || lane.event.is_none() {
                // Stale (cancelled) entry interleaved with the batch.
                q.pop_front();
                continue;
            }
            if front.at != t {
                break;
            }
            q.pop_front();
            if q.is_empty() {
                self.levels[0].occ &= !(1 << idx);
                if self.levels[0].occ == 0 {
                    self.lvl_occ &= !1;
                }
            }
            out.push(self.fire(front));
            n += 1;
        }
        n
    }

    /// Earliest live backlog entry as `(µs, seq)`, discarding stale
    /// (cancelled) entries from the top of the lane on the way. One
    /// branch when the lane is empty — the overwhelmingly common case.
    #[inline]
    fn backlog_front(&mut self) -> Option<(u64, u64)> {
        while let Some(&Reverse((at, seq, slot, gen))) = self.backlog.peek() {
            let lane = &self.slab[slot as usize];
            if lane.gen == gen && lane.event.is_some() {
                return Some((at, seq));
            }
            self.backlog.pop();
        }
        None
    }

    /// Extracts a popped entry's payload from the slab, retiring the slot
    /// and advancing the wheel cursor to the firing time.
    #[inline]
    fn fire(&mut self, entry: WheelEntry) -> (EventId, Event) {
        self.cur = self.cur.max(entry.at.as_micros());
        self.next_hint = None;
        let lane = &mut self.slab[entry.slot as usize];
        let event = lane.event.take().expect("advance verified live");
        lane.gen = lane.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        #[cfg(any(debug_assertions, test))]
        {
            assert!(
                entry.at >= self.last_popped,
                "event-queue time monotonicity violated: popping event at {:?} \
                 after already firing one at {:?}",
                entry.at,
                self.last_popped,
            );
            self.last_popped = entry.at;
        }
        (EventId::new(entry.slot, entry.gen), event)
    }

    /// Performs deferred wheel maintenance until the earliest pending
    /// live wheel event sits at the front of a level-0 slot **and fires
    /// at or before `bound`** (µs), returning that slot's index. Returns
    /// `None` — a deadline miss — as soon as every candidate slot lies
    /// beyond the bound, leaving everything queued. Stale entries
    /// encountered on the way are discarded; coarse levels whose window
    /// has arrived are cascaded. Never removes a live event.
    ///
    /// Cascading commits the cursor to the cascaded window's start, which
    /// is `≤ bound` and `≤` every wheel entry's firing time — safe even
    /// on a miss, because any later schedule below the committed cursor
    /// goes to the backlog lane rather than the wheel.
    fn advance(&mut self, bound: u64) -> Option<usize> {
        loop {
            // Every entry shares all digits above its level with the
            // cursor (see `level_for`), so within a level, slot index
            // order is absolute time order and the lowest occupied index
            // is the earliest slot — one `trailing_zeros`, no rotation.
            // The summary bitmap keeps this scan to non-empty levels.
            //
            // Level-0 candidate: slots are 1 µs wide, the slot *is* the
            // instant. Coarse candidate: earliest occupied window start.
            let mut l0: Option<(u64, usize)> = None;
            let mut hi: Option<(usize, usize, u64)> = None;
            // Runner-up coarse window start — a lower bound on every
            // live entry outside the best candidate's level-and-slot,
            // used below to jump the cursor past intermediate levels.
            let mut hi2: u64 = u64::MAX;
            let mut lvls = self.lvl_occ;
            while lvls != 0 {
                let lvl = lvls.trailing_zeros() as usize;
                lvls &= lvls - 1;
                let occ = self.levels[lvl].occ;
                debug_assert!(occ != 0, "summary bit set on empty level");
                let idx = occ.trailing_zeros() as usize;
                if lvl == 0 {
                    l0 = Some(((self.cur & !SLOT_MASK) + idx as u64, idx));
                } else {
                    let shift = LEVEL_BITS * lvl as u32;
                    // The level's rotation mask; the top level's rotation
                    // (2^66) exceeds u64, where the base is simply 0.
                    let rot = shift + LEVEL_BITS;
                    let base = if rot >= u64::BITS {
                        0
                    } else {
                        self.cur & !((1u64 << rot) - 1)
                    };
                    let start = base + ((idx as u64) << shift);
                    match hi {
                        None => hi = Some((lvl, idx, start)),
                        Some((_, _, s)) if start < s => {
                            hi2 = s;
                            hi = Some((lvl, idx, start));
                        }
                        Some(_) => hi2 = hi2.min(start),
                    }
                }
            }
            match (l0, hi) {
                (None, None) => return None,
                // Strictly earlier level-0 instant: scrub stale fronts
                // and hand the slot to the caller. Ties go to the
                // cascade arm below, so same-instant events still parked
                // in a coarser wheel join the slot (in sequence order)
                // before anything at that instant fires.
                (Some((t0, idx)), hi) if hi.is_none_or(|(_, _, s)| t0 < s) => {
                    if t0 > bound {
                        // Everything live is at or beyond t0 — miss.
                        return None;
                    }
                    loop {
                        let q = &mut self.levels[0].slots[idx];
                        let Some(front) = q.front() else {
                            self.levels[0].occ &= !(1 << idx);
                            if self.levels[0].occ == 0 {
                                self.lvl_occ &= !1;
                            }
                            break;
                        };
                        let lane = &self.slab[front.slot as usize];
                        if lane.gen == front.gen && lane.event.is_some() {
                            return Some(idx);
                        }
                        q.pop_front();
                    }
                }
                (_, Some((lvl, idx, start))) => {
                    if start > bound {
                        // The earliest candidate window opens past the
                        // deadline — miss, commit nothing further.
                        return None;
                    }
                    // Jump the cursor as far as provably safe — to the
                    // earliest live firing time anywhere in the wheel —
                    // before redistributing, so the slot's minimum drops
                    // straight to level 0 instead of descending one
                    // level per pop. Outside this slot, every live entry
                    // is bounded below by the runner-up candidate, the
                    // level-0 instant, or this level's next occupied
                    // window; inside, by the slot's own live minimum.
                    let mut outside = hi2;
                    if let Some((t0, _)) = l0 {
                        outside = outside.min(t0);
                    }
                    let shift = LEVEL_BITS * lvl as u32;
                    let rest = self.levels[lvl].occ & !(1 << idx);
                    if rest != 0 {
                        let rot = shift + LEVEL_BITS;
                        let base = if rot >= u64::BITS {
                            0
                        } else {
                            self.cur & !((1u64 << rot) - 1)
                        };
                        outside = outside.min(base + ((rest.trailing_zeros() as u64) << shift));
                    }
                    // `u64::MAX` is the "effectively disabled" timer
                    // sentinel, so an empty minimum and an entry at MAX
                    // coincide here — both are safe: some live entry
                    // always bounds the jump (the caller checked live).
                    let mut inside = u64::MAX;
                    for e in &self.levels[lvl].slots[idx] {
                        let lane = &self.slab[e.slot as usize];
                        if lane.gen == e.gen && lane.event.is_some() {
                            inside = inside.min(e.at.as_micros());
                        }
                    }
                    self.cur = self.cur.max(start).max(inside.min(outside));
                    self.cascade(lvl, idx);
                }
                (Some(_), None) => unreachable!("guard above accepts hi == None"),
            }
        }
    }

    /// Drains one coarse-level slot and redistributes its live entries
    /// into finer levels (stale entries are dropped here, which is where
    /// lazily-cancelled far-future timers finally get collected).
    fn cascade(&mut self, lvl: usize, idx: usize) {
        debug_assert!(lvl > 0);
        let level = &mut self.levels[lvl];
        level.occ &= !(1 << idx);
        if level.occ == 0 {
            self.lvl_occ &= !(1 << lvl);
        }
        // Draining front-to-back keeps seq order among the re-placed
        // entries; every live entry lands at a strictly lower level (the
        // cursor now shares this window's digits at and above `lvl`), so
        // the drain never feeds itself.
        while let Some(e) = self.levels[lvl].slots[idx].pop_front() {
            let stale = {
                let lane = &self.slab[e.slot as usize];
                lane.gen != e.gen || lane.event.is_none()
            };
            if !stale {
                // The slab's reclaim coordinates are deliberately left
                // behind: refreshing them would touch a scattered cache
                // line per entry per level descended, and `cancel`
                // validates the coordinates before reclaiming anyway.
                self.place(e);
            }
        }
    }

    /// Places a wheel entry into the level/slot its firing time hashes
    /// to, keeping the slot list seq-sorted, and returns the coordinates
    /// (for `cancel`'s in-place reclaim — recorded by `schedule` only).
    #[inline]
    fn place(&mut self, e: WheelEntry) -> (usize, usize) {
        let at = e.at.as_micros();
        let lvl = level_for(at, self.cur);
        let idx = ((at >> (LEVEL_BITS * lvl as u32)) & SLOT_MASK) as usize;
        let level = &mut self.levels[lvl];
        let q = &mut level.slots[idx];
        // Direct schedules always carry the largest sequence and append;
        // only cascaded entries can interleave with newer direct ones,
        // and those are placed by binary search to keep the list
        // seq-sorted (the ordering proof leans on this invariant).
        if q.back().is_some_and(|b| b.seq > e.seq) {
            let pos = q.partition_point(|x| x.seq < e.seq);
            q.insert(pos, e);
        } else {
            q.push_back(e);
        }
        level.occ |= 1 << idx;
        self.lvl_occ |= 1 << lvl;
        (lvl, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, tag: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            dst: AgentId::from_raw(0),
            kind: EventKind::Timer { tag },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { tag } => tag,
            _ => panic!("not a timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ev(30, 3));
        q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(ev(500, tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert!(q.is_pending(a));
        assert!(q.cancel(a));
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
    }

    #[test]
    fn next_fire_time_matches_peek_without_mutating() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_fire_time(), None);
        let a = q.schedule(ev(90_000, 1)); // level ≥ 1
        q.schedule(ev(200_000, 2));
        q.schedule(ev(150, 3));
        assert_eq!(q.next_fire_time(), Some(SimTime::from_micros(150)));
        q.pop().unwrap();
        q.cancel(a);
        assert_eq!(q.next_fire_time(), Some(SimTime::from_micros(200_000)));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(200_000)));
    }

    #[test]
    fn slot_reuse_does_not_resurrect_cancelled_events() {
        // Cancel an event, then schedule new ones until the freed slot is
        // reused: the stale wheel entry must not fire the new occupant, and
        // the old id must stay dead.
        let mut q = EventQueue::new();
        let dead = q.schedule(ev(10, 1));
        assert!(q.cancel(dead));
        let alive = q.schedule(ev(20, 2)); // reuses the freed slot
        assert!(!q.is_pending(dead));
        assert!(q.is_pending(alive));
        assert!(!q.cancel(dead), "stale id must not cancel the reused slot");
        let (popped, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 2);
        assert_eq!(popped, alive);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fired_ids_are_not_pending_and_not_cancellable() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.pop().unwrap();
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "fired event must not cancel");
    }

    #[test]
    #[should_panic(expected = "time monotonicity")]
    fn scheduling_into_the_fired_past_trips_the_invariant() {
        // Violation injection: fire an event at t=10, then schedule one at
        // t=5. The queue itself cannot reorder history, so the monotonicity
        // check must refuse to pop it.
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(5, 2));
        q.pop();
    }

    #[test]
    fn monotonicity_allows_equal_times() {
        // Back-to-back events at the same instant are legal (FIFO order).
        let mut q = EventQueue::new();
        q.schedule(ev(10, 1));
        q.pop().unwrap();
        q.schedule(ev(10, 2));
        assert!(q.pop().is_some());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn reset_queue_behaves_like_fresh() {
        // Fill, pop, cancel, then reset: the recycled queue must replay a
        // fresh queue's behaviour exactly (ids, FIFO order, monotonicity).
        let drive = |q: &mut EventQueue| -> Vec<(u64, u64)> {
            q.schedule(ev(10, 1));
            let b = q.schedule(ev(10, 2));
            q.schedule(ev(5, 0));
            assert!(q.cancel(b));
            std::iter::from_fn(|| q.pop())
                .map(|(id, e)| (id.as_u64(), tag_of(&e)))
                .collect()
        };

        let mut fresh = EventQueue::new();
        let fresh_run = drive(&mut fresh);

        let mut recycled = EventQueue::new();
        // Dirty it thoroughly: fired events, cancelled events, live leftovers.
        let dead = recycled.schedule(ev(7, 9));
        recycled.schedule(ev(1, 8));
        recycled.pop().unwrap();
        recycled.cancel(dead);
        recycled.schedule(ev(99, 7)); // still live at reset time
        recycled.reset();
        assert!(recycled.is_empty());
        assert!(!recycled.is_pending(dead), "pre-reset ids must be dead");
        assert_eq!(recycled.stats(), QueueStats::default());
        assert_eq!(drive(&mut recycled), fresh_run);
    }

    #[test]
    fn interleaved_same_time_schedules_and_cancels_keep_fifo() {
        // FIFO among same-instant events must survive arbitrary cancel
        // patterns and slot reuse.
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..50).map(|tag| q.schedule(ev(100, tag))).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        for tag in 50..80 {
            q.schedule(ev(100, tag)); // reuses freed slots
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        let expected: Vec<u64> = (0..50u64).filter(|t| t % 3 != 0).chain(50..80).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn same_instant_fifo_across_wheel_levels() {
        // The regression the cascade tie-break exists for: an event parked
        // in a coarse level (scheduled when its instant was ≥ 64 µs away)
        // must still fire before a same-instant event scheduled later
        // straight into level 0.
        let mut q = EventQueue::new();
        q.schedule(ev(0, 0));
        q.schedule(ev(64, 1)); // 64 µs ahead → level 1
        q.pop().unwrap(); // advances the cursor to t=0… then schedule again
        q.schedule(ev(1, 2));
        q.pop().unwrap(); // cursor at t=1; t=64 is now 63 µs away
        q.schedule(ev(64, 3)); // → level 0 directly
        q.schedule(ev(64, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 3, 4], "cascaded event must keep seq order");
    }

    #[test]
    fn far_future_events_cascade_in_order() {
        // Events seconds-to-hours apart descend through multiple levels;
        // order and payloads must survive every cascade.
        let mut q = EventQueue::new();
        let times: &[u64] = &[
            3_600_000_000, // 1 h → level 5
            1_000_000,     // 1 s → level 3
            64,            // level 1
            5,             // level 0
            1_000_001,
            1_000_000, // same instant as the earlier 1 s event
        ];
        for (tag, &t) in times.iter().enumerate() {
            q.schedule(ev(t, tag as u64));
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| (e.at.as_micros(), tag_of(&e)))
            .collect();
        assert_eq!(
            order,
            vec![
                (5, 3),
                (64, 2),
                (1_000_000, 1),
                (1_000_000, 5),
                (1_000_001, 4),
                (3_600_000_000, 0),
            ]
        );
    }

    #[test]
    fn sentinel_max_time_events_survive() {
        // SimTime::MAX is the "effectively disabled" timer sentinel; it
        // must park in the top level, cancel cleanly, and even pop.
        let mut q = EventQueue::new();
        let far = q.schedule(ev(u64::MAX, 1));
        q.schedule(ev(10, 2));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        q.pop().unwrap();
        assert!(q.cancel(far));
        assert!(q.pop().is_none());
        let again = q.schedule(ev(u64::MAX, 3));
        assert!(q.is_pending(again));
        let (_, e) = q.pop().unwrap();
        assert_eq!(tag_of(&e), 3);
    }

    #[test]
    fn pop_batch_drains_exactly_one_instant() {
        let mut q = EventQueue::new();
        for tag in 0..5 {
            q.schedule(ev(100, tag));
        }
        let dead = q.schedule(ev(100, 99));
        q.schedule(ev(200, 7));
        q.schedule(ev(100, 5));
        q.cancel(dead);
        let mut batch = Vec::new();
        let n = q.pop_batch_before(SimTime::MAX, &mut batch);
        assert_eq!(n, 6);
        let tags: Vec<u64> = batch.iter().map(|(_, e)| tag_of(e)).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(
            q.pop_batch_before(SimTime::from_micros(150), &mut batch),
            0,
            "next instant is past the deadline"
        );
        assert_eq!(q.pop_batch_before(SimTime::MAX, &mut batch), 1);
        assert_eq!(tag_of(&batch[0].1), 7);
        assert_eq!(q.pop_batch_before(SimTime::MAX, &mut batch), 0);
    }

    #[test]
    fn cancel_reclaims_newest_entry_in_place() {
        // The RTO pattern: schedule then immediately cancel, thousands of
        // times. The in-place reclaim must keep the wheel slot empty
        // instead of accumulating stale entries.
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            let id = q.schedule(ev(1_000_000 + i % 3, i));
            assert!(q.cancel(id));
        }
        assert!(q.is_empty());
        let occupied: u64 = (0..LEVELS).map(|l| q.levels[l].occ).sum();
        assert_eq!(occupied, 0, "reclaimed slots must clear occupancy");
        assert_eq!(q.stats().cancels, 10_000);
        assert_eq!(q.stats().cancel_ratio(), 1.0);
    }

    #[test]
    fn stats_track_depth_and_churn() {
        let mut q = EventQueue::new();
        let a = q.schedule(ev(10, 1));
        q.schedule(ev(20, 2));
        q.schedule(ev(30, 3));
        q.cancel(a);
        q.pop().unwrap();
        let s = q.stats();
        assert_eq!(s.schedules, 3);
        assert_eq!(s.cancels, 1);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.depth_sum, 1 + 2 + 3);
        assert!((s.mean_depth() - 2.0).abs() < 1e-12);
        assert!((s.cancel_ratio() - 1.0 / 3.0).abs() < 1e-12);
        let mut agg = QueueStats::default();
        agg.merge(&s);
        agg.merge(&s);
        assert_eq!(agg.schedules, 6);
        assert_eq!(agg.max_depth, 3);
    }
}
