//! Simulated time.
//!
//! All simulator clocks tick in microseconds, wrapped in the newtypes
//! [`SimTime`] (an absolute instant since simulation start) and
//! [`SimDuration`] (a span between instants). Using newtypes rather than
//! bare `u64`s keeps instants and spans from being mixed up and gives us a
//! single place to define conversions to/from seconds.
//!
//! # Examples
//!
//! ```
//! use hsm_simnet::time::{SimTime, SimDuration};
//!
//! let start = SimTime::ZERO;
//! let rtt = SimDuration::from_millis(30);
//! let later = start + rtt;
//! assert_eq!(later.as_micros(), 30_000);
//! assert_eq!(later - start, rtt);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, measured in microseconds since
/// the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for timers that are effectively disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond count since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid duration in seconds: {s}"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating doubling, used by exponential RTO backoff.
    pub fn saturating_double(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid duration factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// The span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<SimDuration> for f64 {
    /// Seconds as `f64`, handy for analytic-model plumbing.
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::from_secs_f64(1.25).as_micros(), 1_250_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 1_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_micros(), 750_000);
        assert_eq!(d + d, SimDuration::from_millis(500));
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, d);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn doubling_saturates() {
        let huge = SimDuration::from_micros(u64::MAX - 1);
        assert_eq!(huge.saturating_double(), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(1.5).as_micros(), 5); // 4.5 rounds to 5 (round half up)
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(7).max(SimDuration::from_millis(3)),
            SimDuration::from_millis(7)
        );
        assert_eq!(
            SimDuration::from_millis(7).min(SimDuration::from_millis(3)),
            SimDuration::from_millis(3)
        );
    }
}
