//! Packet-event observation.
//!
//! Observers are the simulator's equivalent of running *wireshark on both
//! endpoints*: they see every packet enter a link, get destroyed by the
//! channel or queue, and get delivered. The trace crate builds per-flow
//! traces from these events; tests use the bundled [`VecRecorder`].

use crate::link::LinkId;
use crate::packet::Packet;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Why a packet died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// The channel's loss model destroyed it (wireless loss / outage).
    Channel,
    /// The link's drop-tail queue was full.
    QueueOverflow,
}

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketEventKind {
    /// Entered a link (started transmission or was queued).
    Sent,
    /// Destroyed.
    Dropped(DropCause),
    /// Arrived at the link's destination agent.
    Delivered,
}

/// A recorded packet event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketEvent {
    /// When it happened.
    pub time: SimTime,
    /// On which link.
    pub link: u32,
    /// Link label at the time of recording ("downlink", "uplink", …).
    pub link_label: String,
    /// What happened.
    pub kind: PacketEventKind,
    /// The packet (cloned at recording time).
    pub packet: Packet,
}

/// Receives packet events as the simulation runs.
pub trait Observer {
    /// A packet entered `link`.
    fn on_sent(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet);
    /// A packet was destroyed on `link`.
    fn on_dropped(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet, cause: DropCause);
    /// A packet exiting `link` was delivered to its destination.
    fn on_delivered(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet);
}

/// An observer that records every event into a shared `Vec`.
///
/// Cloning shares the underlying storage, so an experiment can keep a
/// handle while the engine owns the observer:
///
/// ```
/// use hsm_simnet::observer::VecRecorder;
///
/// let recorder = VecRecorder::new();
/// let handle = recorder.clone();
/// // engine.add_observer(Box::new(recorder));
/// // ... run ...
/// assert!(handle.events().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecRecorder {
    events: Rc<RefCell<Vec<PacketEvent>>>,
}

impl VecRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<PacketEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Drains and returns all recorded events, leaving the recorder empty.
    pub fn take_events(&self) -> Vec<PacketEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    fn push(&self, ev: PacketEvent) {
        self.events.borrow_mut().push(ev);
    }
}

impl Observer for VecRecorder {
    fn on_sent(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.to_owned(),
            kind: PacketEventKind::Sent,
            packet: packet.clone(),
        });
    }

    fn on_dropped(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet, cause: DropCause) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.to_owned(),
            kind: PacketEventKind::Dropped(cause),
            packet: packet.clone(),
        });
    }

    fn on_delivered(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.to_owned(),
            kind: PacketEventKind::Delivered,
            packet: packet.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, SeqNo};

    #[test]
    fn recorder_shares_storage_across_clones() {
        let rec = VecRecorder::new();
        let mut sink = rec.clone();
        let p = Packet::data(FlowId(0), SeqNo(1), false);
        sink.on_sent(SimTime::from_millis(1), LinkId::from_raw(0), "dl", &p);
        sink.on_dropped(SimTime::from_millis(2), LinkId::from_raw(0), "dl", &p, DropCause::Channel);
        assert_eq!(rec.len(), 2);
        let evs = rec.events();
        assert_eq!(evs[0].kind, PacketEventKind::Sent);
        assert_eq!(evs[1].kind, PacketEventKind::Dropped(DropCause::Channel));
        assert_eq!(evs[1].link_label, "dl");
    }

    #[test]
    fn take_events_empties() {
        let rec = VecRecorder::new();
        let mut sink = rec.clone();
        let p = Packet::ack(FlowId(0), SeqNo(1), 1);
        sink.on_delivered(SimTime::ZERO, LinkId::from_raw(1), "ul", &p);
        let evs = rec.take_events();
        assert_eq!(evs.len(), 1);
        assert!(rec.is_empty());
    }
}
