//! Packet-event observation.
//!
//! Observers are the simulator's equivalent of running *wireshark on both
//! endpoints*: they see every packet enter a link, get destroyed by the
//! channel or queue, and get delivered. The trace crate builds per-flow
//! traces from these events; tests use the bundled [`VecRecorder`].
//!
//! # Dispatch fast path
//!
//! The engine stores observers in an [`ObserverSet`] — an enum with three
//! states (`None`, a single [`VecRecorder`], or a mixed list). The two
//! overwhelmingly common configurations cost near zero per event:
//!
//! * **no observer** — one discriminant check, nothing else (the engine
//!   does not even resolve the link label);
//! * **single recorder** — a direct, inlineable call into
//!   [`VecRecorder::record`] with no virtual dispatch and no allocation:
//!   the recorded [`PacketEvent`] shares the link's interned `Arc<str>`
//!   label instead of cloning a `String` per event.
//!
//! Arbitrary boxed [`Observer`]s remain supported through
//! [`ObserverSet::Mixed`], which falls back to dynamic dispatch.

use crate::link::LinkId;
use crate::packet::{Packet, PacketId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Why a packet died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// The channel's loss model destroyed it (wireless loss / outage).
    Channel,
    /// The link's drop-tail queue was full.
    QueueOverflow,
}

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketEventKind {
    /// Entered a link (started transmission or was queued).
    Sent,
    /// Destroyed.
    Dropped(DropCause),
    /// Arrived at the link's destination agent.
    Delivered,
}

/// A recorded packet event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketEvent {
    /// When it happened.
    pub time: SimTime,
    /// On which link.
    pub link: u32,
    /// Link label at the time of recording ("downlink", "uplink", …).
    /// Shares the link's interned allocation — cloning an event bumps a
    /// refcount instead of copying the string.
    pub link_label: Arc<str>,
    /// What happened.
    pub kind: PacketEventKind,
    /// The packet (cloned at recording time).
    pub packet: Packet,
}

/// Receives packet events as the simulation runs.
pub trait Observer {
    /// A packet entered `link`.
    fn on_sent(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet);
    /// A packet was destroyed on `link`.
    fn on_dropped(
        &mut self,
        time: SimTime,
        link: LinkId,
        label: &str,
        packet: &Packet,
        cause: DropCause,
    );
    /// A packet exiting `link` was delivered to its destination.
    fn on_delivered(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet);
}

/// An observer that records every event into a shared `Vec`.
///
/// Cloning shares the underlying storage, so an experiment can keep a
/// handle while the engine owns the observer:
///
/// ```
/// use hsm_simnet::observer::VecRecorder;
///
/// let recorder = VecRecorder::new();
/// let handle = recorder.clone();
/// // engine.add_recorder(recorder);
/// // ... run ...
/// assert!(handle.events().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecRecorder {
    events: Rc<RefCell<Vec<PacketEvent>>>,
}

impl VecRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events recorded so far (cloned).
    ///
    /// Prefer [`VecRecorder::take_events`] on hot paths: it drains the
    /// batch without copying it.
    pub fn events(&self) -> Vec<PacketEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Drains and returns all recorded events, leaving the recorder empty.
    ///
    /// This moves the backing `Vec` out, so the recorder starts its next
    /// batch from a fresh (empty-capacity) buffer. Scratch-reusing callers
    /// should prefer [`VecRecorder::with_events`] + [`VecRecorder::clear`],
    /// which keep the allocation alive across runs.
    pub fn take_events(&self) -> Vec<PacketEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Runs `f` over a borrow of the recorded events without copying or
    /// draining them — the allocation-free way to consume a batch.
    pub fn with_events<R>(&self, f: impl FnOnce(&[PacketEvent]) -> R) -> R {
        f(&self.events.borrow())
    }

    /// Forgets all recorded events but keeps the buffer's capacity, so a
    /// recorder reused across simulation runs stops allocating once it has
    /// seen its largest batch.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }

    /// Records one event sharing the interned link label — the engine's
    /// allocation-free fast path.
    #[inline]
    pub fn record(
        &self,
        kind: PacketEventKind,
        time: SimTime,
        link: LinkId,
        label: &Arc<str>,
        packet: &Packet,
    ) {
        self.events.borrow_mut().push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: Arc::clone(label),
            kind,
            packet: packet.clone(),
        });
    }

    fn push(&self, ev: PacketEvent) {
        self.events.borrow_mut().push(ev);
    }
}

impl Observer for VecRecorder {
    fn on_sent(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.into(),
            kind: PacketEventKind::Sent,
            packet: packet.clone(),
        });
    }

    fn on_dropped(
        &mut self,
        time: SimTime,
        link: LinkId,
        label: &str,
        packet: &Packet,
        cause: DropCause,
    ) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.into(),
            kind: PacketEventKind::Dropped(cause),
            packet: packet.clone(),
        });
    }

    fn on_delivered(&mut self, time: SimTime, link: LinkId, label: &str, packet: &Packet) {
        self.push(PacketEvent {
            time,
            link: link.as_usize() as u32,
            link_label: label.into(),
            kind: PacketEventKind::Delivered,
            packet: packet.clone(),
        });
    }
}

/// The struct-of-arrays companion to [`VecRecorder`]: records only
/// *delivery* events, as compact `(packet id, time)` pairs.
///
/// Every other packet fact (flow, kind, size, send time) already lives in
/// the engine's [`PacketArena`](crate::arena::PacketArena) columns, so a
/// delivered-or-not slab plus the arena reconstructs the full capture —
/// the trace crate's arena fold does exactly that. Compared to recording
/// [`PacketEvent`]s this skips the per-event packet clone and label
/// refcount entirely, and `Sent`/`Dropped` events cost nothing at all.
///
/// Cloning shares the underlying storage, like [`VecRecorder`].
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    deliveries: Rc<RefCell<Vec<(PacketId, SimTime)>>>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> DeliveryLog {
        DeliveryLog::default()
    }

    /// Number of deliveries recorded.
    pub fn len(&self) -> usize {
        self.deliveries.borrow().len()
    }

    /// True when nothing was delivered yet.
    pub fn is_empty(&self) -> bool {
        self.deliveries.borrow().is_empty()
    }

    /// Forgets all recorded deliveries but keeps the buffer's capacity,
    /// so a log reused across simulation runs stops allocating once it
    /// has seen its largest run.
    pub fn clear(&self) {
        self.deliveries.borrow_mut().clear();
    }

    /// Runs `f` over a borrow of the recorded `(id, delivered-at)` pairs
    /// without copying or draining them.
    pub fn with_deliveries<R>(&self, f: impl FnOnce(&[(PacketId, SimTime)]) -> R) -> R {
        f(&self.deliveries.borrow())
    }

    /// Records one delivery.
    #[inline]
    pub fn record(&self, id: PacketId, time: SimTime) {
        self.deliveries.borrow_mut().push((id, time));
    }
}

/// One registered observer: either the recorder fast path or a boxed
/// trait object.
pub enum AnyObserver {
    /// A [`VecRecorder`] dispatched without virtual calls.
    Recorder(VecRecorder),
    /// A [`DeliveryLog`] — ignores everything but deliveries.
    Deliveries(DeliveryLog),
    /// Anything else, behind dynamic dispatch.
    Dyn(Box<dyn Observer>),
}

impl AnyObserver {
    #[inline]
    fn emit(
        &mut self,
        kind: PacketEventKind,
        time: SimTime,
        link: LinkId,
        label: &Arc<str>,
        packet: &Packet,
    ) {
        match self {
            AnyObserver::Recorder(rec) => rec.record(kind, time, link, label, packet),
            AnyObserver::Deliveries(log) => {
                if kind == PacketEventKind::Delivered {
                    log.record(packet.id, time);
                }
            }
            AnyObserver::Dyn(obs) => match kind {
                PacketEventKind::Sent => obs.on_sent(time, link, label, packet),
                PacketEventKind::Dropped(cause) => obs.on_dropped(time, link, label, packet, cause),
                PacketEventKind::Delivered => obs.on_delivered(time, link, label, packet),
            },
        }
    }
}

/// The engine's observer registry (see the module docs for the dispatch
/// strategy).
#[derive(Default)]
pub enum ObserverSet {
    /// No observer registered: events are not materialized at all.
    #[default]
    None,
    /// Exactly one [`VecRecorder`]: direct calls, no virtual dispatch.
    Recorder(VecRecorder),
    /// Exactly one [`DeliveryLog`]: only `Delivered` events are stored,
    /// as two words each; `Sent`/`Dropped` cost a discriminant check.
    Deliveries(DeliveryLog),
    /// General case: any number of observers, dispatched in
    /// registration order.
    Mixed(Vec<AnyObserver>),
}

impl ObserverSet {
    /// True when no observer is registered (lets the engine skip label
    /// resolution and borrow juggling entirely).
    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, ObserverSet::None)
    }

    /// Registers another observer, upgrading the set's shape as needed.
    pub fn push(&mut self, obs: AnyObserver) {
        match std::mem::take(self) {
            ObserverSet::None => {
                *self = match obs {
                    AnyObserver::Recorder(rec) => ObserverSet::Recorder(rec),
                    AnyObserver::Deliveries(log) => ObserverSet::Deliveries(log),
                    other => ObserverSet::Mixed(vec![other]),
                }
            }
            ObserverSet::Recorder(rec) => {
                *self = ObserverSet::Mixed(vec![AnyObserver::Recorder(rec), obs]);
            }
            ObserverSet::Deliveries(log) => {
                *self = ObserverSet::Mixed(vec![AnyObserver::Deliveries(log), obs]);
            }
            ObserverSet::Mixed(mut list) => {
                list.push(obs);
                *self = ObserverSet::Mixed(list);
            }
        }
    }

    /// Emits one packet event to every registered observer.
    #[inline]
    pub fn emit(
        &mut self,
        kind: PacketEventKind,
        time: SimTime,
        link: LinkId,
        label: &Arc<str>,
        packet: &Packet,
    ) {
        match self {
            ObserverSet::None => {}
            ObserverSet::Recorder(rec) => rec.record(kind, time, link, label, packet),
            ObserverSet::Deliveries(log) => {
                if kind == PacketEventKind::Delivered {
                    log.record(packet.id, time);
                }
            }
            ObserverSet::Mixed(list) => {
                for obs in list {
                    obs.emit(kind, time, link, label, packet);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, SeqNo};

    #[test]
    fn recorder_shares_storage_across_clones() {
        let rec = VecRecorder::new();
        let mut sink = rec.clone();
        let p = Packet::data(FlowId(0), SeqNo(1), false);
        sink.on_sent(SimTime::from_millis(1), LinkId::from_raw(0), "dl", &p);
        sink.on_dropped(
            SimTime::from_millis(2),
            LinkId::from_raw(0),
            "dl",
            &p,
            DropCause::Channel,
        );
        assert_eq!(rec.len(), 2);
        let evs = rec.events();
        assert_eq!(evs[0].kind, PacketEventKind::Sent);
        assert_eq!(evs[1].kind, PacketEventKind::Dropped(DropCause::Channel));
        assert_eq!(&*evs[1].link_label, "dl");
    }

    #[test]
    fn take_events_empties() {
        let rec = VecRecorder::new();
        let mut sink = rec.clone();
        let p = Packet::ack(FlowId(0), SeqNo(1), 1);
        sink.on_delivered(SimTime::ZERO, LinkId::from_raw(1), "ul", &p);
        let evs = rec.take_events();
        assert_eq!(evs.len(), 1);
        assert!(rec.is_empty());
    }

    #[test]
    fn with_events_borrows_and_clear_keeps_capacity() {
        let rec = VecRecorder::new();
        let mut sink = rec.clone();
        let p = Packet::data(FlowId(0), SeqNo(0), false);
        for _ in 0..32 {
            sink.on_sent(SimTime::ZERO, LinkId::from_raw(0), "dl", &p);
        }
        let n = rec.with_events(|evs| evs.len());
        assert_eq!(n, 32);
        assert_eq!(rec.len(), 32, "with_events must not drain");
        rec.clear();
        assert!(rec.is_empty());
        // The shared buffer survives the clear: new events land in it.
        sink.on_sent(SimTime::ZERO, LinkId::from_raw(0), "dl", &p);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn record_shares_the_interned_label() {
        let rec = VecRecorder::new();
        let label: Arc<str> = "downlink".into();
        let p = Packet::data(FlowId(0), SeqNo(0), false);
        rec.record(
            PacketEventKind::Sent,
            SimTime::ZERO,
            LinkId::from_raw(0),
            &label,
            &p,
        );
        let evs = rec.take_events();
        assert!(
            Arc::ptr_eq(&evs[0].link_label, &label),
            "label must be shared, not copied"
        );
    }

    #[test]
    fn delivery_log_stores_only_deliveries() {
        let mut set = ObserverSet::default();
        let log = DeliveryLog::new();
        set.push(AnyObserver::Deliveries(log.clone()));
        assert!(matches!(set, ObserverSet::Deliveries(_)));

        let label: Arc<str> = "wire".into();
        let mut p = Packet::data(FlowId(3), SeqNo(0), false);
        p.id = PacketId(42);
        set.emit(
            PacketEventKind::Sent,
            SimTime::ZERO,
            LinkId::from_raw(0),
            &label,
            &p,
        );
        assert!(log.is_empty(), "Sent events must not be stored");
        set.emit(
            PacketEventKind::Dropped(DropCause::Channel),
            SimTime::from_millis(1),
            LinkId::from_raw(0),
            &label,
            &p,
        );
        assert!(log.is_empty(), "Dropped events must not be stored");
        set.emit(
            PacketEventKind::Delivered,
            SimTime::from_millis(2),
            LinkId::from_raw(0),
            &label,
            &p,
        );
        assert_eq!(log.len(), 1);
        log.with_deliveries(|d| {
            assert_eq!(d, &[(PacketId(42), SimTime::from_millis(2))]);
        });
        log.clear();
        assert!(log.is_empty());

        // Pushing a second observer upgrades the set to Mixed; the log
        // keeps receiving deliveries through the list path.
        let rec = VecRecorder::new();
        set.push(AnyObserver::Recorder(rec.clone()));
        assert!(matches!(set, ObserverSet::Mixed(_)));
        set.emit(
            PacketEventKind::Delivered,
            SimTime::from_millis(3),
            LinkId::from_raw(0),
            &label,
            &p,
        );
        assert_eq!(log.len(), 1);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn observer_set_upgrades_shape_and_dispatches() {
        let mut set = ObserverSet::default();
        assert!(set.is_none());
        let a = VecRecorder::new();
        set.push(AnyObserver::Recorder(a.clone()));
        assert!(matches!(set, ObserverSet::Recorder(_)));
        let b = VecRecorder::new();
        set.push(AnyObserver::Dyn(Box::new(b.clone())));
        assert!(matches!(set, ObserverSet::Mixed(_)));

        let label: Arc<str> = "wire".into();
        let p = Packet::data(FlowId(0), SeqNo(0), false);
        set.emit(
            PacketEventKind::Sent,
            SimTime::ZERO,
            LinkId::from_raw(0),
            &label,
            &p,
        );
        assert_eq!(a.len(), 1, "fast-path recorder sees the event");
        assert_eq!(b.len(), 1, "dyn observer sees the event");
        assert_eq!(&*b.events()[0].link_label, "wire");
    }
}
