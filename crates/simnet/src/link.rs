//! Point-to-point links.
//!
//! A [`Link`] models one direction of a network hop: a transmission rate,
//! a propagation delay (plus optional jitter and a dynamically adjustable
//! extra delay for handoff latency spikes), a drop-tail queue, and a
//! [`ChannelLoss`] deciding which packets the channel destroys.
//!
//! Links are owned and driven by the engine; this module contains the
//! per-link state machine (idle / transmitting, queueing decisions) in a
//! directly testable form.

use crate::agent::AgentId;
use crate::loss::ChannelLoss;
use crate::packet::PacketId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// Identity of a link within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(u32);

impl LinkId {
    /// Builds an id from a raw index. Minted by the engine; exposed for
    /// tests and wiring code.
    pub fn from_raw(raw: u32) -> LinkId {
        LinkId(raw)
    }

    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// Static description of a link, passed to
/// [`Engine::add_link`](crate::engine::Engine::add_link).
#[derive(Debug)]
pub struct LinkSpec {
    /// Agent that receives packets exiting this link.
    pub to: AgentId,
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Standard deviation of per-packet delay jitter (0 disables).
    pub jitter_sd: SimDuration,
    /// Drop-tail queue capacity in packets (not counting the one in
    /// transmission).
    pub queue_capacity: usize,
    /// Channel loss behaviour.
    pub loss: ChannelLoss,
    /// Human-readable label used in traces ("downlink", "uplink", …).
    pub label: String,
}

impl LinkSpec {
    /// A sensible default: 50 Mbit/s, 15 ms delay, 100-packet queue,
    /// lossless — callers override what they need.
    pub fn new(to: AgentId, label: impl Into<String>) -> Self {
        LinkSpec {
            to,
            bandwidth_bps: 50_000_000,
            prop_delay: SimDuration::from_millis(15),
            jitter_sd: SimDuration::ZERO,
            queue_capacity: 100,
            loss: ChannelLoss::lossless(),
            label: label.into(),
        }
    }

    /// Sets the bandwidth (builder style).
    pub fn bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the propagation delay (builder style).
    pub fn prop_delay(mut self, d: SimDuration) -> Self {
        self.prop_delay = d;
        self
    }

    /// Sets the jitter standard deviation (builder style).
    pub fn jitter_sd(mut self, d: SimDuration) -> Self {
        self.jitter_sd = d;
        self
    }

    /// Sets the queue capacity (builder style).
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Sets the loss behaviour (builder style).
    pub fn loss(mut self, loss: ChannelLoss) -> Self {
        self.loss = loss;
        self
    }
}

/// Dense handle a link moves instead of the full packet.
///
/// The packet's fields live in the engine's
/// [`PacketArena`](crate::arena::PacketArena); links only need the id (to
/// identify the packet downstream) and the on-wire size (to compute
/// transmission time), so queues and in-flight slots hold this 16-byte
/// pair and the hot path never copies a full [`Packet`](crate::packet::Packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Arena id of the packet.
    pub id: PacketId,
    /// On-wire size in bytes (headers included).
    pub size_bytes: u32,
}

/// Outcome of offering a packet to a link.
///
/// Accepted packets are stored inside the link (in-flight slot or queue)
/// as compact [`QueuedPacket`] handles; a rejected one is handed back
/// inside [`Accept::DroppedOverflow`] so the caller can still report it
/// to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// Link was idle; transmission starts now.
    StartTx,
    /// Link busy; packet queued.
    Queued,
    /// Queue full; the packet is returned to the caller, dropped.
    DroppedOverflow(QueuedPacket),
}

/// Runtime state of a link.
#[derive(Debug)]
pub struct Link {
    /// Destination agent.
    pub to: AgentId,
    /// Transmission rate, bits per second.
    pub bandwidth_bps: u64,
    /// Base propagation delay.
    pub prop_delay: SimDuration,
    /// Jitter standard deviation.
    pub jitter_sd: SimDuration,
    /// Extra delay currently imposed (e.g. during a handoff), added to
    /// `prop_delay`.
    pub extra_delay: SimDuration,
    /// Channel loss behaviour.
    pub loss: ChannelLoss,
    /// Trace label, interned once at registration: every per-event use
    /// (observer callbacks, recorded [`PacketEvent`](crate::observer::PacketEvent)s)
    /// shares this allocation instead of cloning a `String`.
    pub label: Arc<str>,
    queue_capacity: usize,
    queue: VecDeque<QueuedPacket>,
    in_flight: Option<QueuedPacket>,
    /// Packets dropped due to queue overflow.
    pub overflow_drops: u64,
    /// Packets offered to this link (accepted, queued or dropped alike).
    pub offered: u64,
    /// Packets destroyed by the channel loss process.
    pub channel_drops: u64,
    /// Packets handed to the destination agent.
    pub delivered: u64,
    /// Packets that finished transmission and are propagating (a `Deliver`
    /// event is scheduled but has not fired yet).
    pub deliver_pending: u64,
    /// Delivery time of the most recently delivered packet; used to keep
    /// the link FIFO under jitter (packets never overtake each other).
    pub last_delivery: SimTime,
}

impl Link {
    /// Instantiates runtime state from a spec.
    pub fn from_spec(spec: LinkSpec) -> Link {
        Link::from_spec_with_queue(spec, VecDeque::new())
    }

    /// Like [`Link::from_spec`], but reusing a previously allocated queue
    /// buffer (the engine's reset path feeds retired links' queues back in
    /// so a recycled engine wires its links without reallocating).
    pub(crate) fn from_spec_with_queue(spec: LinkSpec, mut queue: VecDeque<QueuedPacket>) -> Link {
        queue.clear();
        Link {
            to: spec.to,
            bandwidth_bps: spec.bandwidth_bps,
            prop_delay: spec.prop_delay,
            jitter_sd: spec.jitter_sd,
            extra_delay: SimDuration::ZERO,
            loss: spec.loss,
            label: spec.label.into(),
            queue_capacity: spec.queue_capacity,
            queue,
            in_flight: None,
            overflow_drops: 0,
            offered: 0,
            channel_drops: 0,
            delivered: 0,
            deliver_pending: 0,
            last_delivery: SimTime::ZERO,
        }
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        // Round up to the next microsecond so tiny packets still take time.
        let us = (bits * 1_000_000).div_ceil(self.bandwidth_bps).max(1);
        SimDuration::from_micros(us)
    }

    /// Total latency (propagation + current extra delay) excluding jitter.
    pub fn current_delay(&self) -> SimDuration {
        self.prop_delay + self.extra_delay
    }

    /// Offers a packet handle. If `StartTx` is returned the engine must
    /// begin a transmission (the handle is stored as in-flight); `Queued`
    /// stores it in the queue; `DroppedOverflow` hands the handle back for
    /// drop reporting.
    pub fn offer(&mut self, packet: QueuedPacket) -> Accept {
        self.offered += 1;
        if self.in_flight.is_none() {
            self.in_flight = Some(packet);
            Accept::StartTx
        } else if self.queue.len() < self.queue_capacity {
            self.queue.push_back(packet);
            Accept::Queued
        } else {
            self.overflow_drops += 1;
            Accept::DroppedOverflow(packet)
        }
    }

    /// Completes the in-flight transmission, returning the transmitted
    /// packet handle and, if the queue is non-empty, the next handle which
    /// immediately becomes in-flight.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight (engine bookkeeping bug). The
    /// engine itself uses the non-panicking [`Link::try_complete_tx`] so a
    /// corrupt transmit state fails the run as a structured error.
    pub fn complete_tx(&mut self) -> (QueuedPacket, Option<QueuedPacket>) {
        self.try_complete_tx().expect("complete_tx with idle link")
    }

    /// Non-panicking twin of [`Link::complete_tx`]: returns `None` when no
    /// packet was in flight.
    pub fn try_complete_tx(&mut self) -> Option<(QueuedPacket, Option<QueuedPacket>)> {
        let done = self.in_flight.take()?;
        if let Some(next) = self.queue.pop_front() {
            self.in_flight = Some(next);
        }
        Some((done, self.in_flight))
    }

    /// Consumes the link and hands back its queue buffer (cleared) for
    /// reuse by the next link registered on a recycled engine.
    pub(crate) fn into_queue_buffer(mut self) -> VecDeque<QueuedPacket> {
        self.queue.clear();
        self.queue
    }

    /// True while a packet is being clocked onto the wire.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Number of packets waiting behind the in-flight one.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Checks the packet-conservation invariant: every packet offered to
    /// the link is exactly one of delivered, dropped (overflow or channel)
    /// or still in transit (queued, transmitting, or propagating). The
    /// engine calls this after every run in debug/test builds; a violation
    /// means the engine lost or duplicated a packet.
    ///
    /// # Panics
    ///
    /// Panics when the accounts do not balance.
    #[cfg(any(debug_assertions, test))]
    pub fn assert_conservation(&self) {
        let in_transit =
            self.queue.len() as u64 + u64::from(self.in_flight.is_some()) + self.deliver_pending;
        let accounted = self.delivered + self.overflow_drops + self.channel_drops + in_transit;
        assert!(
            self.offered == accounted,
            "packet conservation violated on link '{}': offered {} != \
             delivered {} + overflow {} + channel {} + in-transit {}",
            self.label,
            self.offered,
            self.delivered,
            self.overflow_drops,
            self.channel_drops,
            in_transit,
        );
    }

    /// Corrupts the conservation ledger so tests can prove the invariant
    /// actually fires. Test-only by design.
    #[cfg(any(debug_assertions, test))]
    #[doc(hidden)]
    pub fn inject_conservation_violation(&mut self) {
        self.offered += 1;
    }

    /// Samples the delivery latency for one packet leaving the link at
    /// `_now`: propagation + extra delay + non-negative jitter draw.
    pub fn sample_latency(&self, _now: SimTime, rng: &mut crate::rng::SimRng) -> SimDuration {
        let base = self.current_delay();
        if self.jitter_sd.is_zero() {
            base
        } else {
            let jitter_s = rng.normal_clamped(0.0, self.jitter_sd.as_secs_f64(), 0.0);
            base + SimDuration::from_secs_f64(jitter_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn link(cap: usize) -> Link {
        Link::from_spec(
            LinkSpec::new(AgentId::from_raw(1), "test")
                .bandwidth_bps(8_000_000) // 1 byte per microsecond
                .prop_delay(SimDuration::from_millis(10))
                .queue_capacity(cap),
        )
    }

    fn pkt(id: u64) -> QueuedPacket {
        QueuedPacket {
            id: PacketId(id),
            size_bytes: 1500,
        }
    }

    #[test]
    fn tx_time_scales_with_size() {
        let l = link(10);
        assert_eq!(l.tx_time(1500).as_micros(), 1500);
        assert_eq!(l.tx_time(40).as_micros(), 40);
        // Rounds up, minimum 1us.
        let fast = Link::from_spec(
            LinkSpec::new(AgentId::from_raw(0), "fast").bandwidth_bps(u64::MAX / 16),
        );
        assert_eq!(fast.tx_time(1).as_micros(), 1);
    }

    #[test]
    fn offer_transitions() {
        let mut l = link(1);
        assert_eq!(l.offer(pkt(0)), Accept::StartTx);
        assert!(l.is_busy());
        assert_eq!(l.offer(pkt(1)), Accept::Queued);
        assert_eq!(l.queue_len(), 1);
        match l.offer(pkt(2)) {
            Accept::DroppedOverflow(p) => {
                assert_eq!(p.id, PacketId(2), "dropped packet handed back")
            }
            other => panic!("expected overflow drop, got {other:?}"),
        }
        assert_eq!(l.overflow_drops, 1);
    }

    #[test]
    fn complete_tx_pumps_queue() {
        let mut l = link(2);
        l.offer(pkt(0));
        l.offer(pkt(1));
        let (done, next) = l.complete_tx();
        assert_eq!(done.id, PacketId(0));
        assert_eq!(next.unwrap().id, PacketId(1));
        assert!(l.is_busy());
        let (done, next) = l.complete_tx();
        assert_eq!(done.id, PacketId(1));
        assert!(next.is_none());
        assert!(!l.is_busy());
    }

    #[test]
    #[should_panic]
    fn complete_tx_on_idle_link_panics() {
        let mut l = link(1);
        let _ = l.complete_tx();
    }

    #[test]
    fn try_complete_tx_on_idle_link_is_none() {
        let mut l = link(1);
        assert!(l.try_complete_tx().is_none());
        l.offer(pkt(0));
        assert!(l.try_complete_tx().is_some());
    }

    #[test]
    fn latency_includes_extra_delay() {
        let mut l = link(1);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            l.sample_latency(SimTime::ZERO, &mut rng),
            SimDuration::from_millis(10)
        );
        l.extra_delay = SimDuration::from_millis(5);
        assert_eq!(
            l.sample_latency(SimTime::ZERO, &mut rng),
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn jitter_is_nonnegative_and_varies() {
        let mut l = link(1);
        l.jitter_sd = SimDuration::from_millis(2);
        let mut rng = SimRng::seed_from_u64(2);
        let base = l.current_delay();
        let samples: Vec<SimDuration> = (0..64)
            .map(|_| l.sample_latency(SimTime::ZERO, &mut rng))
            .collect();
        assert!(samples.iter().all(|&s| s >= base));
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }
}
