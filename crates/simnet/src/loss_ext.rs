//! Additional loss models: scripted, trace-driven and periodic-outage
//! channels.
//!
//! These complement the stochastic models in [`loss`](crate::loss):
//!
//! * [`Scripted`] kills an exact set of packet indices — the workhorse of
//!   packet-by-packet behavioural tests (Figs. 5 and 11 style scenarios);
//! * [`TraceDriven`] replays a recorded loss pattern, enabling
//!   loss-for-loss reproduction of a previously captured channel;
//! * [`PeriodicOutage`] models a strictly periodic impairment (a crude
//!   stand-in for evenly spaced cell crossings when the full mobility
//!   model is overkill).

use crate::loss::LossModel;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Kills exactly the packets whose (0-based) arrival index at this channel
/// is listed.
#[derive(Debug, Clone, Default)]
pub struct Scripted {
    kill: BTreeSet<u64>,
    seen: u64,
}

impl Scripted {
    /// Creates a scripted channel killing the listed packet indices.
    pub fn new(kill: impl IntoIterator<Item = u64>) -> Scripted {
        Scripted {
            kill: kill.into_iter().collect(),
            seen: 0,
        }
    }

    /// Kills a contiguous index range `[from, to)`.
    pub fn range(from: u64, to: u64) -> Scripted {
        Scripted::new(from..to)
    }

    /// Number of packets that have traversed the channel so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl LossModel for Scripted {
    fn is_lost(&mut self, _now: SimTime, _rng: &mut SimRng) -> bool {
        let idx = self.seen;
        self.seen += 1;
        self.kill.contains(&idx)
    }
}

/// Replays a recorded loss pattern; packets beyond the recording survive.
#[derive(Debug, Clone, Default)]
pub struct TraceDriven {
    pattern: Vec<bool>,
    cursor: usize,
    /// When true, the pattern wraps around instead of running out.
    cyclic: bool,
}

impl TraceDriven {
    /// Creates a replay channel (`true` = lost).
    pub fn new(pattern: Vec<bool>) -> TraceDriven {
        TraceDriven {
            pattern,
            cursor: 0,
            cyclic: false,
        }
    }

    /// Makes the pattern repeat forever (builder style).
    pub fn cyclic(mut self) -> TraceDriven {
        self.cyclic = true;
        self
    }

    /// Fraction of `true` entries in the pattern.
    pub fn pattern_loss_rate(&self) -> f64 {
        if self.pattern.is_empty() {
            0.0
        } else {
            self.pattern.iter().filter(|&&l| l).count() as f64 / self.pattern.len() as f64
        }
    }
}

impl LossModel for TraceDriven {
    fn is_lost(&mut self, _now: SimTime, _rng: &mut SimRng) -> bool {
        if self.pattern.is_empty() {
            return false;
        }
        if self.cursor >= self.pattern.len() {
            if self.cyclic {
                self.cursor = 0;
            } else {
                return false;
            }
        }
        let lost = self.pattern[self.cursor];
        self.cursor += 1;
        lost
    }

    fn steady_state_rate(&self) -> Option<f64> {
        if self.cyclic {
            Some(self.pattern_loss_rate())
        } else {
            None
        }
    }
}

/// A strictly periodic outage: every `period`, the channel is fully lossy
/// for `outage` (phase-shifted by `offset`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicOutage {
    period: SimDuration,
    outage: SimDuration,
    offset: SimDuration,
    loss_during: f64,
}

impl PeriodicOutage {
    /// Creates a periodic outage.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, `outage > period`, or `loss_during` is
    /// outside `[0, 1]`.
    pub fn new(
        period: SimDuration,
        outage: SimDuration,
        offset: SimDuration,
        loss_during: f64,
    ) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(outage <= period, "outage longer than period");
        assert!((0.0..=1.0).contains(&loss_during), "loss out of range");
        PeriodicOutage {
            period,
            outage,
            offset,
            loss_during,
        }
    }

    /// True when `now` falls inside an outage window.
    pub fn in_outage(&self, now: SimTime) -> bool {
        let t = (now + self.offset).as_micros() % self.period.as_micros();
        t < self.outage.as_micros()
    }

    /// Long-run fraction of time spent in outage.
    pub fn duty_cycle(&self) -> f64 {
        self.outage.as_secs_f64() / self.period.as_secs_f64()
    }
}

impl LossModel for PeriodicOutage {
    fn is_lost(&mut self, now: SimTime, rng: &mut SimRng) -> bool {
        self.in_outage(now) && rng.chance(self.loss_during)
    }

    fn steady_state_rate(&self) -> Option<f64> {
        // Time-averaged; the packet-averaged rate depends on the arrival
        // process, so this is an approximation flagged as such.
        Some(self.duty_cycle() * self.loss_during)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn scripted_kills_exact_indices() {
        let mut s = Scripted::new([1, 3]);
        let mut r = rng();
        let outcomes: Vec<bool> = (0..5).map(|_| s.is_lost(SimTime::ZERO, &mut r)).collect();
        assert_eq!(outcomes, vec![false, true, false, true, false]);
        assert_eq!(s.seen(), 5);
    }

    #[test]
    fn scripted_range() {
        let mut s = Scripted::range(2, 4);
        let mut r = rng();
        let outcomes: Vec<bool> = (0..5).map(|_| s.is_lost(SimTime::ZERO, &mut r)).collect();
        assert_eq!(outcomes, vec![false, false, true, true, false]);
    }

    #[test]
    fn trace_driven_replays_then_passes() {
        let mut t = TraceDriven::new(vec![true, false, true]);
        let mut r = rng();
        let outcomes: Vec<bool> = (0..5).map(|_| t.is_lost(SimTime::ZERO, &mut r)).collect();
        assert_eq!(outcomes, vec![true, false, true, false, false]);
        assert_eq!(t.steady_state_rate(), None);
    }

    #[test]
    fn trace_driven_cyclic_wraps() {
        let mut t = TraceDriven::new(vec![true, false]).cyclic();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..6).map(|_| t.is_lost(SimTime::ZERO, &mut r)).collect();
        assert_eq!(outcomes, vec![true, false, true, false, true, false]);
        assert_eq!(t.steady_state_rate(), Some(0.5));
        assert_eq!(t.pattern_loss_rate(), 0.5);
    }

    #[test]
    fn trace_driven_empty_pattern_never_loses() {
        let mut t = TraceDriven::new(Vec::new());
        let mut r = rng();
        assert!(!t.is_lost(SimTime::ZERO, &mut r));
    }

    #[test]
    fn periodic_outage_windows() {
        let p = PeriodicOutage::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            SimDuration::ZERO,
            1.0,
        );
        assert!(p.in_outage(SimTime::from_millis(500)));
        assert!(!p.in_outage(SimTime::from_secs(5)));
        assert!(p.in_outage(SimTime::from_millis(10_500)));
        assert!((p.duty_cycle() - 0.1).abs() < 1e-12);
        assert_eq!(p.steady_state_rate(), Some(0.1));
    }

    #[test]
    fn periodic_outage_offset_shifts_phase() {
        let p = PeriodicOutage::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
            1.0,
        );
        assert!(p.in_outage(SimTime::from_secs(5)));
        assert!(!p.in_outage(SimTime::from_millis(500)));
    }

    #[test]
    fn periodic_outage_kills_only_in_window() {
        let mut p = PeriodicOutage::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
            SimDuration::ZERO,
            1.0,
        );
        let mut r = rng();
        assert!(p.is_lost(SimTime::from_millis(100), &mut r));
        assert!(!p.is_lost(SimTime::from_secs(3), &mut r));
    }

    #[test]
    #[should_panic]
    fn periodic_outage_validates() {
        let _ = PeriodicOutage::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::ZERO,
            1.0,
        );
    }
}
