//! NewReno (RFC 6582) — the partial-ACK refinement of Reno.
//!
//! The paper bases its model on Reno ("TCP Reno is the basis of the other
//! TCP versions", §II) but cites the NewReno throughput model of Parvez et
//! al. as related work. We provide NewReno as a configuration of the same
//! sender: during fast recovery, a *partial* ACK (advancing the cumulative
//! point but short of the `recover` mark) retransmits the next hole and
//! stays in fast recovery instead of exiting — repairing multiple losses
//! in one window without a timeout.

use crate::reno::{RenoSender, SenderConfig};
use hsm_simnet::link::LinkId;
use hsm_simnet::packet::FlowId;

/// Builds a NewReno sender: a [`RenoSender`] with partial-ACK handling
/// enabled.
pub fn new_reno_sender(flow: FlowId, data_link: LinkId, mut cfg: SenderConfig) -> RenoSender {
    cfg.newreno = true;
    RenoSender::new(flow, data_link, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{Receiver, ReceiverConfig};
    use hsm_simnet::loss::Outage;
    use hsm_simnet::prelude::*;
    use hsm_simnet::time::{SimDuration, SimTime};

    fn run_newreno(seed: u64, multi_loss: bool) -> (u64, usize, usize) {
        let mut eng = Engine::new(seed);
        let placeholder = LinkId::from_raw(u32::MAX);
        let cfg = SenderConfig {
            max_segments: Some(600),
            ..Default::default()
        };
        let tx = eng.add_agent(Box::new(new_reno_sender(FlowId(0), placeholder, cfg)));
        let rx = eng.add_agent(Box::new(Receiver::new(
            FlowId(0),
            placeholder,
            ReceiverConfig {
                b: 1,
                delack_timeout: SimDuration::from_millis(100),
                adaptive: None,
            },
        )));
        let down = eng.add_link(
            LinkSpec::new(rx, "downlink")
                .bandwidth_bps(40_000_000)
                .prop_delay(SimDuration::from_millis(25)),
        );
        let up = eng.add_link(
            LinkSpec::new(tx, "uplink")
                .bandwidth_bps(15_000_000)
                .prop_delay(SimDuration::from_millis(25)),
        );
        eng.agent_mut::<RenoSender>(tx).unwrap().data_link = down;
        eng.agent_mut::<Receiver>(rx).unwrap().uplink = up;
        if multi_loss {
            // Two short surgical outages close together: several segments
            // of one window die -> partial-ACK territory.
            eng.link_mut(down).loss.set_outage(Some(Outage::new(
                SimTime::from_millis(400),
                SimTime::from_millis(406),
                1.0,
            )));
        }
        eng.run_until_idle();
        let sender = eng.agent_mut::<RenoSender>(tx).unwrap();
        let (timeouts, fast) = (
            sender.metrics.timeouts.len(),
            sender.metrics.fast_retransmits.len(),
        );
        let rx_agent = eng.agent_mut::<Receiver>(rx).unwrap();
        (rx_agent.next_expected().as_u64(), timeouts, fast)
    }

    #[test]
    fn newreno_completes_cleanly_without_loss() {
        let (delivered, timeouts, fast) = run_newreno(1, false);
        assert_eq!(delivered, 600);
        assert_eq!(timeouts, 0);
        assert_eq!(fast, 0);
    }

    #[test]
    fn newreno_repairs_multi_loss_window() {
        let (delivered, _timeouts, fast) = run_newreno(2, true);
        assert_eq!(delivered, 600, "all segments eventually delivered");
        assert!(fast >= 1, "expected a fast-retransmit recovery");
    }

    #[test]
    fn constructor_sets_flag() {
        let s = new_reno_sender(FlowId(3), LinkId::from_raw(0), SenderConfig::default());
        // The flag is private; observable via behaviour — here we just
        // sanity-check construction.
        assert_eq!(s.snd_una(), 0);
        assert_eq!(s.flight(), 0);
    }
}
