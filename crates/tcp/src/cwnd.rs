//! Congestion-window state machine (TCP Reno, RFC 5681).
//!
//! Tracks the congestion window in fractional segments through slow start,
//! congestion avoidance and fast recovery, capped by the receiver's
//! advertised window `W_m` — the same window limitation the model's
//! Section IV-D branch covers.

use serde::{Deserialize, Serialize};

/// Which congestion phase the sender is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Exponential growth below `ssthresh`.
    SlowStart,
    /// Additive increase above `ssthresh`.
    CongestionAvoidance,
    /// Reno fast recovery (window inflation during dup-ACKs).
    FastRecovery,
}

/// The algorithm-selection enum now lives in [`crate::cc`] alongside the
/// [`crate::cc::CongestionControl`] trait; re-exported here because this
/// is where it historically lived and `Cwnd` still carries one.
pub use crate::cc::Algorithm;

/// The congestion controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cwnd {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    w_m: f64,
    algo: Algorithm,
    base_rtt_s: f64,
    last_rtt_s: f64,
}

impl Cwnd {
    /// Creates a Reno controller with initial window 1 and the given
    /// advertised window limitation.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn new(w_m: u32) -> Cwnd {
        Cwnd::with_algorithm(w_m, Algorithm::Reno)
    }

    /// Creates a controller running the given algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn with_algorithm(w_m: u32, algo: Algorithm) -> Cwnd {
        assert!(w_m > 0, "advertised window must be positive");
        Cwnd {
            cwnd: 1.0,
            ssthresh: f64::from(w_m),
            phase: Phase::SlowStart,
            w_m: f64::from(w_m),
            algo,
            base_rtt_s: f64::INFINITY,
            last_rtt_s: f64::INFINITY,
        }
    }

    /// Feeds an RTT observation (Veno's backlog estimator needs the
    /// minimum and the most recent RTT; a no-op for Reno).
    pub fn observe_rtt(&mut self, rtt_s: f64) {
        if rtt_s > 0.0 && rtt_s.is_finite() {
            self.base_rtt_s = self.base_rtt_s.min(rtt_s);
            self.last_rtt_s = rtt_s;
        }
    }

    /// Veno's router-backlog estimate `N`, when enough RTT information is
    /// available.
    pub fn backlog_estimate(&self) -> Option<f64> {
        if self.base_rtt_s.is_finite() && self.last_rtt_s.is_finite() && self.last_rtt_s > 0.0 {
            Some(self.cwnd * (self.last_rtt_s - self.base_rtt_s) / self.last_rtt_s)
        } else {
            None
        }
    }

    fn random_loss_suspected(&self) -> bool {
        match self.algo {
            Algorithm::Veno { beta } => self.backlog_estimate().is_some_and(|n| n < beta),
            // Reno — and any non-classic variant handed to this struct by
            // mistake — treats every loss as congestive.
            _ => false,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The raw congestion window, fractional segments (not capped by
    /// `W_m`).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Which algorithm this controller runs (Reno or Veno).
    pub fn algorithm(&self) -> Algorithm {
        self.algo
    }

    /// The effective send window in whole segments:
    /// `max(1, floor(min(cwnd, W_m)))`.
    pub fn window(&self) -> u64 {
        self.cwnd.min(self.w_m).floor().max(1.0) as u64
    }

    /// True when the advertised window is the binding constraint.
    pub fn window_limited(&self) -> bool {
        self.cwnd >= self.w_m
    }

    /// Processes an ACK advancing the cumulative point by `acked`
    /// segments (fast-recovery exits are handled by the dedicated
    /// methods).
    pub fn on_new_ack(&mut self, acked: u64) {
        match self.phase {
            Phase::SlowStart => {
                // One MSS per ACKed segment (byte-counting slow start).
                self.cwnd += acked as f64;
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                // 1/cwnd per ACK: +1 MSS per window per RTT; with delayed
                // ACKs (fewer ACKs per round) growth slows to 1 per b
                // rounds, matching the model's Eq. (3). Veno halves the
                // growth once the backlog estimate exceeds beta.
                let congested =
                    matches!(self.algo, Algorithm::Veno { .. }) && !self.random_loss_suspected();
                let step = if congested { 0.5 } else { 1.0 };
                self.cwnd += step / self.cwnd.max(1.0);
            }
            Phase::FastRecovery => {
                // Callers exit fast recovery explicitly.
            }
        }
        self.cwnd = self.cwnd.min(self.w_m.max(1.0) * 2.0); // keep bounded
    }

    /// Enters fast recovery after the third duplicate ACK. `flight` is
    /// the amount of outstanding data in segments.
    ///
    /// Reno halves the window; Veno, when its backlog estimate indicates a
    /// *random* (wireless) loss, only takes a 1/5 cut.
    pub fn enter_fast_recovery(&mut self, flight: u64) {
        let factor = if self.random_loss_suspected() {
            0.8
        } else {
            0.5
        };
        self.ssthresh = (flight as f64 * factor).max(2.0);
        self.cwnd = self.ssthresh + 3.0;
        self.phase = Phase::FastRecovery;
    }

    /// One more duplicate ACK while in fast recovery: inflate.
    pub fn on_dup_ack_in_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += 1.0;
        }
    }

    /// Exits fast recovery on an ACK for new data: deflate to `ssthresh`.
    pub fn exit_fast_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self.ssthresh;
            self.phase = Phase::CongestionAvoidance;
        }
    }

    /// NewReno partial ACK: deflate by the amount acked but stay in fast
    /// recovery.
    pub fn on_partial_ack(&mut self, acked: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = (self.cwnd - acked as f64 + 1.0).max(1.0);
        }
    }

    /// Retransmission timeout: collapse to one segment and restart slow
    /// start. `flight` is outstanding data in segments.
    pub fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.phase = Phase::SlowStart;
    }

    /// Checks the controller's structural invariants: the window never
    /// collapses below one segment, never escapes its `2·W_m` ceiling, and
    /// both `cwnd` and `ssthresh` stay finite and positive. The sender
    /// re-checks after every state transition in debug/test builds.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    #[cfg(any(debug_assertions, test))]
    pub fn assert_invariants(&self) {
        assert!(
            self.cwnd.is_finite() && self.cwnd >= 1.0,
            "cwnd invariant violated: cwnd = {} (must be finite and >= 1)",
            self.cwnd,
        );
        assert!(
            self.ssthresh.is_finite() && self.ssthresh >= 1.0,
            "ssthresh invariant violated: ssthresh = {} (must be finite and >= 1)",
            self.ssthresh,
        );
        // ACK-driven growth is clamped at 2*W_m (see on_new_ack), and
        // fast-recovery inflation adds at most one segment per duplicate
        // ACK — at most one window's worth, twice over when a backup path
        // mirrors ACKs — on top of ssthresh + 3. Anything above that is a
        // runaway window.
        let ceiling = self.w_m.max(1.0) * 3.0 + 4.0;
        assert!(
            self.cwnd <= ceiling,
            "cwnd {} escaped its {} ceiling",
            self.cwnd,
            ceiling
        );
        let w = self.window();
        assert!(
            (1..=self.w_m as u64).contains(&w),
            "effective window {} outside [1, W_m = {}]",
            w,
            self.w_m,
        );
    }

    /// Corrupts the window so tests can prove the invariant check fires.
    /// Test-only by design.
    #[cfg(any(debug_assertions, test))]
    #[doc(hidden)]
    pub fn inject_invariant_violation(&mut self) {
        self.cwnd = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_round() {
        let mut c = Cwnd::new(64);
        assert_eq!(c.phase(), Phase::SlowStart);
        assert_eq!(c.window(), 1);
        // One round: every segment ACKed individually.
        c.on_new_ack(1);
        assert_eq!(c.window(), 2);
        c.on_new_ack(1);
        c.on_new_ack(1);
        assert_eq!(c.window(), 4);
    }

    #[test]
    fn transitions_to_ca_at_ssthresh() {
        let mut c = Cwnd::new(64);
        c.on_timeout(32); // ssthresh = 16, cwnd = 1, slow start
        assert_eq!(c.ssthresh(), 16.0);
        for _ in 0..15 {
            c.on_new_ack(1);
        }
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        let w = c.cwnd();
        c.on_new_ack(1);
        assert!(
            (c.cwnd() - (w + 1.0 / w)).abs() < 1e-12,
            "additive increase"
        );
    }

    #[test]
    fn ca_grows_one_window_per_rtt() {
        let mut c = Cwnd::new(1000);
        c.on_timeout(20); // ssthresh = 10
        for _ in 0..9 {
            c.on_new_ack(1);
        }
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        let start = c.cwnd();
        // One round = cwnd ACKs.
        let acks = start.floor() as u32;
        for _ in 0..acks {
            c.on_new_ack(1);
        }
        assert!(
            (c.cwnd() - (start + 1.0)).abs() < 0.1,
            "{} -> {}",
            start,
            c.cwnd()
        );
    }

    #[test]
    fn window_capped_by_advertised() {
        let mut c = Cwnd::new(8);
        for _ in 0..100 {
            c.on_new_ack(1);
        }
        assert_eq!(c.window(), 8);
        assert!(c.window_limited());
    }

    #[test]
    fn fast_recovery_cycle() {
        let mut c = Cwnd::new(64);
        for _ in 0..20 {
            c.on_new_ack(1);
        }
        c.enter_fast_recovery(20);
        assert_eq!(c.phase(), Phase::FastRecovery);
        assert_eq!(c.ssthresh(), 10.0);
        assert_eq!(c.cwnd(), 13.0);
        c.on_dup_ack_in_recovery();
        assert_eq!(c.cwnd(), 14.0);
        // New ACKs during recovery do not grow the window.
        c.on_new_ack(1);
        assert_eq!(c.cwnd(), 14.0);
        c.exit_fast_recovery();
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        assert_eq!(c.cwnd(), 10.0);
    }

    #[test]
    fn timeout_resets_to_one() {
        let mut c = Cwnd::new(64);
        for _ in 0..30 {
            c.on_new_ack(1);
        }
        c.on_timeout(31);
        assert_eq!(c.phase(), Phase::SlowStart);
        assert_eq!(c.window(), 1);
        assert_eq!(c.ssthresh(), 15.5);
    }

    #[test]
    fn minimum_flight_floor_for_ssthresh() {
        let mut c = Cwnd::new(64);
        c.on_timeout(1);
        assert_eq!(c.ssthresh(), 2.0);
        c.enter_fast_recovery(1);
        assert_eq!(c.ssthresh(), 2.0);
    }

    #[test]
    fn partial_ack_deflates_but_stays_in_recovery() {
        let mut c = Cwnd::new(64);
        c.enter_fast_recovery(20);
        let before = c.cwnd();
        c.on_partial_ack(4);
        assert_eq!(c.phase(), Phase::FastRecovery);
        assert!((c.cwnd() - (before - 4.0 + 1.0)).abs() < 1e-12);
        c.on_partial_ack(1000);
        assert!(c.cwnd() >= 1.0);
    }

    #[test]
    fn veno_backlog_estimate() {
        let mut c = Cwnd::with_algorithm(64, Algorithm::veno());
        assert_eq!(c.backlog_estimate(), None, "no RTT info yet");
        for _ in 0..20 {
            c.on_new_ack(1);
        }
        c.observe_rtt(0.050); // base
        c.observe_rtt(0.075); // queueing building up
        let n = c.backlog_estimate().unwrap();
        // N = cwnd * (0.075-0.050)/0.075 = cwnd/3.
        assert!((n - c.cwnd() / 3.0).abs() < 1e-9);
    }

    #[test]
    fn veno_takes_smaller_cut_on_random_loss() {
        let mut veno = Cwnd::with_algorithm(64, Algorithm::veno());
        let mut reno = Cwnd::new(64);
        for c in [&mut veno, &mut reno] {
            for _ in 0..20 {
                c.on_new_ack(1);
            }
        }
        // RTT at its base: backlog ~ 0 -> random loss suspected.
        veno.observe_rtt(0.050);
        veno.observe_rtt(0.050);
        veno.enter_fast_recovery(20);
        reno.enter_fast_recovery(20);
        assert_eq!(reno.ssthresh(), 10.0, "Reno halves");
        assert_eq!(veno.ssthresh(), 16.0, "Veno cuts by 1/5 on random loss");
    }

    #[test]
    fn veno_halves_like_reno_when_congested() {
        let mut veno = Cwnd::with_algorithm(64, Algorithm::veno());
        for _ in 0..20 {
            veno.on_new_ack(1);
        }
        // Large queueing delay: backlog exceeds beta.
        veno.observe_rtt(0.050);
        veno.observe_rtt(0.200);
        assert!(veno.backlog_estimate().unwrap() > 3.0);
        veno.enter_fast_recovery(20);
        assert_eq!(veno.ssthresh(), 10.0);
    }

    #[test]
    fn veno_slows_ca_growth_under_backlog() {
        let mut c = Cwnd::with_algorithm(64, Algorithm::veno());
        c.on_timeout(20); // ssthresh 10
        for _ in 0..9 {
            c.on_new_ack(1);
        }
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
        c.observe_rtt(0.050);
        c.observe_rtt(0.300); // heavy queueing
        let w = c.cwnd();
        c.on_new_ack(1);
        assert!((c.cwnd() - (w + 0.5 / w)).abs() < 1e-12, "half-rate growth");
    }

    #[test]
    fn reno_ignores_rtt_observations() {
        let mut c = Cwnd::new(64);
        c.observe_rtt(0.050);
        c.observe_rtt(0.500);
        c.enter_fast_recovery(20);
        assert_eq!(c.ssthresh(), 10.0);
    }

    #[test]
    fn invariants_hold_through_a_full_lifecycle() {
        let mut c = Cwnd::new(16);
        c.assert_invariants();
        for _ in 0..40 {
            c.on_new_ack(1);
            c.assert_invariants();
        }
        c.enter_fast_recovery(16);
        c.assert_invariants();
        for _ in 0..16 {
            c.on_dup_ack_in_recovery();
            c.assert_invariants();
        }
        c.on_partial_ack(5);
        c.assert_invariants();
        c.exit_fast_recovery();
        c.assert_invariants();
        c.on_timeout(16);
        c.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "cwnd invariant violated")]
    fn invariant_check_fires_on_injected_violation() {
        let mut c = Cwnd::new(16);
        c.inject_invariant_violation();
        c.assert_invariants();
    }

    #[test]
    fn window_never_zero() {
        let c = Cwnd::new(5);
        assert!(c.window() >= 1);
        let mut c2 = Cwnd::new(5);
        c2.on_timeout(10);
        assert_eq!(c2.window(), 1);
    }
}
