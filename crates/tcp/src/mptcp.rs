//! Multi-path TCP (paper §V-B).
//!
//! Two facilities, mirroring exactly how the paper evaluates MPTCP:
//!
//! * **Duplex mode** ([`run_mptcp_duplex`]) — the paper approximates MPTCP
//!   throughput by running *two independent TCP flows over disjoint paths
//!   and summing their throughput* ("the total throughput getting by these
//!   two flows can also be regarded as MPTCP throughput", §V-B). We do the
//!   same: two sender/receiver pairs in one engine, independent channel
//!   processes, aggregate throughput reported.
//!
//! * **Backup mode** — redundant timeout retransmission over a second
//!   path, which reduces the retransmission loss rate from `q` to about
//!   `q·q₂`; this is the `backup_link` option of
//!   [`RenoSender`] type, exercised by
//!   [`run_with_backup_path`].

use crate::connection::{ConnectionConfig, MobilityScenario, PathSpec};
use crate::demux::Demux;
use crate::metrics::{ReceiverMetrics, SenderMetrics};
use crate::receiver::Receiver;
use crate::reno::RenoSender;
use hsm_simnet::cellular::{ChannelProcess, ChannelStats};
use hsm_simnet::link::{LinkId, LinkSpec};
use hsm_simnet::observer::VecRecorder;
use hsm_simnet::packet::FlowId;
use hsm_simnet::prelude::Engine;
use hsm_simnet::time::SimDuration;
use hsm_trace::capture::{traces_from_events, traces_from_events_filtered};
use hsm_trace::record::{FlowMeta, FlowTrace};

/// Outcome of a duplex-mode MPTCP run: one trace per subflow.
#[derive(Debug, Clone)]
pub struct MptcpOutcome {
    /// Per-subflow traces (flow ids `base_flow` and `base_flow + 1`).
    pub subflows: Vec<FlowTrace>,
    /// Per-subflow sender metrics.
    pub senders: Vec<SenderMetrics>,
    /// Per-subflow receiver metrics.
    pub receivers: Vec<ReceiverMetrics>,
    /// Per-path channel statistics when mobility was attached.
    pub channels: Vec<ChannelStats>,
}

impl MptcpOutcome {
    /// Aggregate delivered segments per second across subflows, over the
    /// longest subflow duration (the paper's MPTCP throughput proxy).
    pub fn aggregate_throughput_sps(&self) -> f64 {
        let duration = self
            .subflows
            .iter()
            .map(|t| t.duration().as_secs_f64())
            .fold(0.0_f64, f64::max);
        if duration <= 0.0 {
            return 0.0;
        }
        let delivered: u64 = self
            .subflows
            .iter()
            .map(|t| t.data().filter(|r| r.arrived_at.is_some()).count() as u64)
            .sum();
        delivered as f64 / duration
    }
}

fn build_path(
    eng: &mut Engine,
    path: &PathSpec,
    rx: hsm_simnet::agent::AgentId,
    tx: hsm_simnet::agent::AgentId,
    tag: &str,
) -> (LinkId, LinkId) {
    let down = eng.add_link(
        LinkSpec::new(rx, format!("downlink.{tag}"))
            .bandwidth_bps(path.down_bandwidth_bps)
            .prop_delay(path.down_delay)
            .jitter_sd(path.jitter_sd)
            .queue_capacity(path.queue_capacity)
            .loss(path.down_loss.build()),
    );
    let up = eng.add_link(
        LinkSpec::new(tx, format!("uplink.{tag}"))
            .bandwidth_bps(path.up_bandwidth_bps)
            .prop_delay(path.up_delay)
            .jitter_sd(path.jitter_sd)
            .queue_capacity(path.queue_capacity)
            .loss(path.up_loss.build()),
    );
    (down, up)
}

/// Runs two independent subflows over two disjoint paths and reports the
/// aggregate (duplex-mode MPTCP, evaluated as the paper does in Fig. 12).
///
/// Each subflow uses `cfg` with flow ids `cfg.flow` and `cfg.flow + 1`.
/// When `mobility` is provided, each path gets its *own* channel process
/// (independent handoff randomness — disjoint carriers).
pub fn run_mptcp_duplex(
    seed: u64,
    paths: [&PathSpec; 2],
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> MptcpOutcome {
    let mut eng = Engine::new(seed);
    let placeholder = LinkId::from_raw(u32::MAX);
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    let mut chans = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let flow = FlowId(cfg.flow + i as u32);
        let tx = eng.add_agent(Box::new(RenoSender::new(flow, placeholder, cfg.sender)));
        let rx = eng.add_agent(Box::new(Receiver::new(flow, placeholder, cfg.receiver)));
        let (down, up) = build_path(&mut eng, path, rx, tx, &format!("sub{i}"));
        {
            let sender = eng.agent_mut::<RenoSender>(tx).expect("sender");
            sender.data_link = down;
            // One sender stopping must not truncate its sibling subflow.
            sender.halt_engine_on_stop = false;
        }
        eng.agent_mut::<Receiver>(rx).expect("receiver").uplink = up;
        if let Some(m) = mobility {
            chans.push(eng.add_agent(Box::new(ChannelProcess::new(
                down,
                up,
                m.trajectory,
                m.layout.clone(),
                m.handoff,
            ))));
        }
        txs.push(tx);
        rxs.push(rx);
    }
    let recorder = VecRecorder::new();
    eng.add_recorder(recorder.clone());
    eng.run_until(cfg.deadline);

    let base_meta = FlowMeta {
        provider: cfg.provider.clone(),
        scenario: cfg.scenario.clone(),
        w_m: cfg.sender.w_m,
        b: cfg.receiver.b,
        mss_bytes: cfg.mss_bytes,
    };
    let subflows = traces_from_events(&recorder.take_events(), |_| base_meta.clone());
    let senders = txs
        .iter()
        .map(|&t| {
            eng.agent_mut::<RenoSender>(t)
                .expect("sender")
                .metrics
                .clone()
        })
        .collect();
    let receivers = rxs
        .iter()
        .map(|&r| eng.agent_mut::<Receiver>(r).expect("receiver").metrics)
        .collect();
    let channels = chans
        .iter()
        .map(|&c| eng.agent_mut::<ChannelProcess>(c).expect("channel").stats)
        .collect();
    MptcpOutcome {
        subflows,
        senders,
        receivers,
        channels,
    }
}

/// Runs a single flow whose timeout retransmissions are duplicated over a
/// second (backup) downlink — MPTCP backup mode's recovery behaviour.
///
/// Returns the flow trace (which includes the redundant copies) and the
/// endpoint metrics.
pub fn run_with_backup_path(
    seed: u64,
    primary: &PathSpec,
    backup: &PathSpec,
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> crate::connection::ConnectionOutcome {
    let mut eng = Engine::new(seed);
    let placeholder = LinkId::from_raw(u32::MAX);
    let flow = FlowId(cfg.flow);
    let tx = eng.add_agent(Box::new(RenoSender::new(flow, placeholder, cfg.sender)));
    let rx = eng.add_agent(Box::new(Receiver::new(flow, placeholder, cfg.receiver)));
    let (down, up) = build_path(&mut eng, primary, rx, tx, "primary");
    let (backup_down, backup_up) = build_path(&mut eng, backup, rx, tx, "backup");
    {
        let sender = eng.agent_mut::<RenoSender>(tx).expect("sender");
        sender.data_link = down;
        sender.backup_link = Some(backup_down);
    }
    {
        let receiver = eng.agent_mut::<Receiver>(rx).expect("receiver");
        receiver.uplink = up;
        // Recovery-phase ACKs are mirrored over the backup carrier: the
        // redundant exchange must survive whenever *either* path works.
        receiver.backup_uplink = Some(backup_up);
    }
    // Mobility impairs only the primary path; the backup is assumed to be
    // a different carrier, modelled by its own PathSpec losses.
    let chan = mobility.map(|m| {
        eng.add_agent(Box::new(ChannelProcess::new(
            down,
            up,
            m.trajectory,
            m.layout.clone(),
            m.handoff,
        )))
    });
    let recorder = VecRecorder::new();
    eng.add_recorder(recorder.clone());
    eng.run_until(cfg.deadline);

    let meta = FlowMeta {
        provider: cfg.provider.clone(),
        scenario: cfg.scenario.clone(),
        w_m: cfg.sender.w_m,
        b: cfg.receiver.b,
        mss_bytes: cfg.mss_bytes,
    };
    let trace =
        hsm_trace::capture::single_flow_trace(&recorder.take_events(), cfg.flow, meta.clone())
            .unwrap_or_else(|| FlowTrace::new(cfg.flow, meta));
    crate::connection::ConnectionOutcome {
        trace,
        sender: eng
            .agent_mut::<RenoSender>(tx)
            .expect("sender")
            .metrics
            .clone(),
        receiver: eng.agent_mut::<Receiver>(rx).expect("receiver").metrics,
        channel: chan.map(|c| eng.agent_mut::<ChannelProcess>(c).expect("channel").stats),
        finished_at: eng.now(),
        events_processed: eng.events_processed(),
        queue: eng.queue_stats(),
    }
}

/// Runs two subflows through **one shared radio** (the single-handset
/// reality of the paper's measurements): both senders transmit over the
/// same downlink and both receivers acknowledge over the same uplink, with
/// [`Demux`] agents fanning packets out to their flow's endpoint over
/// zero-delay `internal.*` links (excluded from the captured traces).
///
/// Against a disjoint-path duplex run, this isolates how much of the
/// MPTCP gain comes from *extra capacity* versus from *filling the dead
/// time* a single flow spends in timeout recovery.
pub fn run_mptcp_shared_radio(
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> MptcpOutcome {
    let mut eng = Engine::new(seed);
    let placeholder = LinkId::from_raw(u32::MAX);
    let flows = [cfg.flow, cfg.flow + 1];
    let txs: Vec<_> = flows
        .iter()
        .map(|&f| {
            eng.add_agent(Box::new(RenoSender::new(
                FlowId(f),
                placeholder,
                cfg.sender,
            )))
        })
        .collect();
    let rxs: Vec<_> = flows
        .iter()
        .map(|&f| {
            eng.add_agent(Box::new(Receiver::new(
                FlowId(f),
                placeholder,
                cfg.receiver,
            )))
        })
        .collect();
    let demux_down = eng.add_agent(Box::new(Demux::new()));
    let demux_up = eng.add_agent(Box::new(Demux::new()));
    let (down, up) = {
        let down = eng.add_link(
            LinkSpec::new(demux_down, "downlink")
                .bandwidth_bps(path.down_bandwidth_bps)
                .prop_delay(path.down_delay)
                .jitter_sd(path.jitter_sd)
                .queue_capacity(path.queue_capacity)
                .loss(path.down_loss.build()),
        );
        let up = eng.add_link(
            LinkSpec::new(demux_up, "uplink")
                .bandwidth_bps(path.up_bandwidth_bps)
                .prop_delay(path.up_delay)
                .jitter_sd(path.jitter_sd)
                .queue_capacity(path.queue_capacity)
                .loss(path.up_loss.build()),
        );
        (down, up)
    };
    let internal = |eng: &mut Engine, to, tag: String| {
        eng.add_link(
            LinkSpec::new(to, tag)
                .bandwidth_bps(u64::MAX / 1024)
                .prop_delay(SimDuration::from_micros(1))
                .queue_capacity(4_096),
        )
    };
    for (i, (&tx, &rx)) in txs.iter().zip(&rxs).enumerate() {
        let to_rx = internal(&mut eng, rx, format!("internal.rx{i}"));
        let to_tx = internal(&mut eng, tx, format!("internal.tx{i}"));
        eng.agent_mut::<Demux>(demux_down)
            .expect("demux")
            .add_route(flows[i], to_rx);
        eng.agent_mut::<Demux>(demux_up)
            .expect("demux")
            .add_route(flows[i], to_tx);
        {
            let sender = eng.agent_mut::<RenoSender>(tx).expect("sender");
            sender.data_link = down;
            sender.halt_engine_on_stop = false;
        }
        eng.agent_mut::<Receiver>(rx).expect("receiver").uplink = up;
    }
    let chan = mobility.map(|m| {
        eng.add_agent(Box::new(ChannelProcess::new(
            down,
            up,
            m.trajectory,
            m.layout.clone(),
            m.handoff,
        )))
    });
    let recorder = VecRecorder::new();
    eng.add_recorder(recorder.clone());
    let deadline = cfg.deadline;
    eng.run_until(deadline);

    let base_meta = FlowMeta {
        provider: cfg.provider.clone(),
        scenario: cfg.scenario.clone(),
        w_m: cfg.sender.w_m,
        b: cfg.receiver.b,
        mss_bytes: cfg.mss_bytes,
    };
    let subflows = traces_from_events_filtered(
        &recorder.take_events(),
        |_| base_meta.clone(),
        Some("internal"),
    );
    MptcpOutcome {
        subflows,
        senders: txs
            .iter()
            .map(|&t| {
                eng.agent_mut::<RenoSender>(t)
                    .expect("sender")
                    .metrics
                    .clone()
            })
            .collect(),
        receivers: rxs
            .iter()
            .map(|&r| eng.agent_mut::<Receiver>(r).expect("receiver").metrics)
            .collect(),
        channels: chan
            .map(|c| vec![eng.agent_mut::<ChannelProcess>(c).expect("channel").stats])
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{run_connection, LossSpec};
    use crate::reno::SenderConfig;
    use hsm_simnet::time::SimTime;

    fn lossy_path() -> PathSpec {
        PathSpec {
            down_loss: LossSpec::GilbertElliott {
                p_good: 0.003,
                p_bad: 0.8,
                g2b: 0.004,
                b2g: 0.05,
            },
            up_loss: LossSpec::GilbertElliott {
                p_good: 0.003,
                p_bad: 0.8,
                g2b: 0.004,
                b2g: 0.05,
            },
            ..Default::default()
        }
    }

    fn timed_cfg(secs: u64) -> ConnectionConfig {
        ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(secs)),
                ..Default::default()
            },
            deadline: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    #[test]
    fn duplex_runs_two_subflows() {
        let cfg = timed_cfg(30);
        let p1 = lossy_path();
        let p2 = PathSpec::default();
        let out = run_mptcp_duplex(5, [&p1, &p2], None, &cfg);
        assert_eq!(out.subflows.len(), 2);
        assert_eq!(out.senders.len(), 2);
        assert!(out.aggregate_throughput_sps() > 0.0);
        // Subflow flow ids are consecutive.
        assert_eq!(out.subflows[0].flow, 0);
        assert_eq!(out.subflows[1].flow, 1);
    }

    #[test]
    fn duplex_beats_single_flow_on_bad_paths() {
        let cfg = timed_cfg(60);
        let p = lossy_path();
        let single = run_connection(9, &p, None, &cfg);
        let single_tp = {
            let a = hsm_trace::summary::analyze_flow(&single.trace, &Default::default());
            a.summary.throughput_sps
        };
        let duplex = run_mptcp_duplex(9, [&p, &p], None, &cfg);
        let agg = duplex.aggregate_throughput_sps();
        assert!(
            agg > single_tp,
            "MPTCP aggregate {agg} should beat single-flow {single_tp}"
        );
    }

    #[test]
    fn shared_radio_runs_both_subflows_through_one_pipe() {
        let cfg = timed_cfg(30);
        let path = PathSpec::default();
        let out = run_mptcp_shared_radio(3, &path, None, &cfg);
        assert_eq!(out.subflows.len(), 2);
        for (i, t) in out.subflows.iter().enumerate() {
            assert!(
                t.data().count() > 50,
                "subflow {i} starved: {} data records",
                t.data().count()
            );
            // No internal-hop pollution: every record crossed the shared
            // radio (latency >= the configured propagation delay).
            for r in t.records.iter().take(200) {
                if let Some(lat) = r.latency() {
                    assert!(
                        lat >= SimDuration::from_millis(20),
                        "internal hop leaked: {r:?}"
                    );
                }
            }
        }
        // Two flows share one pipe: aggregate within the link capacity
        // (~40 Mb/s / 1500 B ≈ 3300 seg/s).
        assert!(out.aggregate_throughput_sps() < 3_500.0);
    }

    #[test]
    fn shared_radio_aggregate_close_to_single_flow_when_pipe_bound() {
        // When the radio (not W_m) is the bottleneck, two flows split the
        // same capacity: the aggregate cannot approach 2x a single flow.
        let cfg = timed_cfg(30);
        let path = PathSpec {
            down_bandwidth_bps: 6_000_000, // ~500 seg/s, well under W_m/RTT
            ..Default::default()
        };
        let single = run_connection(4, &path, None, &cfg);
        let single_tp = hsm_trace::summary::analyze_flow(&single.trace, &Default::default())
            .summary
            .throughput_sps;
        let shared = run_mptcp_shared_radio(4, &path, None, &cfg);
        let agg = shared.aggregate_throughput_sps();
        assert!(
            agg < single_tp * 1.5,
            "shared radio cannot double capacity: {agg} vs single {single_tp}"
        );
        assert!(
            agg > single_tp * 0.7,
            "sharing should not collapse: {agg} vs {single_tp}"
        );
    }

    #[test]
    fn backup_path_reduces_recovery_losses() {
        // Primary path with brutal bursty loss; clean backup. With
        // redundant retransmission the flow should deliver more unique
        // segments than without.
        let cfg = timed_cfg(60);
        let bad = lossy_path();
        let clean = PathSpec::default();
        let without = run_connection(11, &bad, None, &cfg);
        let with = run_with_backup_path(11, &bad, &clean, None, &cfg);
        assert!(
            with.receiver.next_expected >= without.receiver.next_expected,
            "backup {} vs plain {}",
            with.receiver.next_expected,
            without.receiver.next_expected
        );
        // The redundant copies show up as extra sends in the trace.
        assert!(with.sender.segments_sent > with.sender.max_seq_sent);
    }
}
