//! Connection wiring: build an engine, a sender/receiver pair, the
//! two-directional cellular path, an optional mobility channel process —
//! run it — and hand back the dual-endpoint [`FlowTrace`] plus internal
//! metrics.
//!
//! This module is the equivalent of the paper's measurement rig: a phone
//! on the train talking to a dedicated server, with wireshark running on
//! both ends.

use crate::metrics::{ReceiverMetrics, SenderMetrics};
use crate::receiver::{Receiver, ReceiverConfig};
use crate::reno::{RenoSender, SenderConfig};
use hsm_simnet::cellular::{CellLayout, ChannelProcess, ChannelStats, HandoffParams};
use hsm_simnet::chaos::{StormInjector, StormPlan};
use hsm_simnet::error::SimError;
use hsm_simnet::event::QueueStats;
use hsm_simnet::link::{LinkId, LinkSpec};
use hsm_simnet::loss::{Bernoulli, ChannelLoss, GilbertElliott};
use hsm_simnet::mobility::Trajectory;
use hsm_simnet::observer::DeliveryLog;
use hsm_simnet::packet::FlowId;
use hsm_simnet::prelude::Engine;
use hsm_simnet::time::{SimDuration, SimTime};
use hsm_trace::capture::{trace_from_arena_with, CaptureScratch};
use hsm_trace::record::{FlowMeta, FlowTrace};
use serde::{Deserialize, Serialize};

/// Declarative loss-model description (buildable, serializable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossSpec {
    /// No channel loss.
    Lossless,
    /// Independent loss with the given probability.
    Bernoulli(f64),
    /// Two-state bursty loss.
    GilbertElliott {
        /// Loss probability in the good state.
        p_good: f64,
        /// Loss probability in the bad state.
        p_bad: f64,
        /// Good→bad transition probability per packet.
        g2b: f64,
        /// Bad→good transition probability per packet.
        b2g: f64,
    },
    /// Strictly periodic outage windows (scripted impairments for
    /// behavioural studies).
    PeriodicOutage {
        /// Window period, seconds.
        period_s: f64,
        /// Outage length within each period, seconds.
        outage_s: f64,
        /// Phase offset, seconds.
        offset_s: f64,
        /// Loss probability during the outage.
        loss: f64,
    },
}

impl LossSpec {
    /// Instantiates the channel-loss state.
    pub fn build(&self) -> ChannelLoss {
        match *self {
            LossSpec::Lossless => ChannelLoss::lossless(),
            LossSpec::Bernoulli(p) => ChannelLoss::new(Box::new(Bernoulli::new(p))),
            LossSpec::GilbertElliott {
                p_good,
                p_bad,
                g2b,
                b2g,
            } => ChannelLoss::new(Box::new(GilbertElliott::new(p_good, p_bad, g2b, b2g))),
            LossSpec::PeriodicOutage {
                period_s,
                outage_s,
                offset_s,
                loss,
            } => ChannelLoss::new(Box::new(hsm_simnet::loss_ext::PeriodicOutage::new(
                SimDuration::from_secs_f64(period_s),
                SimDuration::from_secs_f64(outage_s),
                SimDuration::from_secs_f64(offset_s),
                loss,
            ))),
        }
    }

    /// Long-run average loss rate of the spec.
    pub fn steady_state(&self) -> f64 {
        self.build().base_steady_state().unwrap_or(0.0)
    }
}

/// Description of the two-directional server↔phone path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSpec {
    /// Downlink (server→phone) bandwidth, bits/s.
    pub down_bandwidth_bps: u64,
    /// Uplink (phone→server) bandwidth, bits/s.
    pub up_bandwidth_bps: u64,
    /// Downlink one-way delay.
    pub down_delay: SimDuration,
    /// Uplink one-way delay.
    pub up_delay: SimDuration,
    /// Per-packet delay jitter (standard deviation) on both directions.
    pub jitter_sd: SimDuration,
    /// Queue capacity in packets on both directions.
    pub queue_capacity: usize,
    /// Downlink channel loss (affects data packets).
    pub down_loss: LossSpec,
    /// Uplink channel loss (affects ACKs).
    pub up_loss: LossSpec,
}

impl Default for PathSpec {
    /// A healthy LTE-ish path: RTT ≈ 55 ms, moderate bandwidth, lossless.
    fn default() -> Self {
        PathSpec {
            down_bandwidth_bps: 40_000_000,
            up_bandwidth_bps: 15_000_000,
            down_delay: SimDuration::from_millis(27),
            up_delay: SimDuration::from_millis(27),
            jitter_sd: SimDuration::from_millis(2),
            queue_capacity: 128,
            down_loss: LossSpec::Lossless,
            up_loss: LossSpec::Lossless,
        }
    }
}

/// The mobility side of a scenario: train trajectory, cell layout and
/// handoff footprint, driven by a [`ChannelProcess`].
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityScenario {
    /// Train trajectory along the line.
    pub trajectory: Trajectory,
    /// Base-station layout (and coverage holes).
    pub layout: CellLayout,
    /// Transport-layer handoff footprint.
    pub handoff: HandoffParams,
}

/// Everything needed to run one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionConfig {
    /// Flow id used in packets and the resulting trace.
    pub flow: u32,
    /// Sender tunables.
    pub sender: SenderConfig,
    /// Receiver tunables.
    pub receiver: ReceiverConfig,
    /// Provider label recorded in the trace meta.
    pub provider: String,
    /// Scenario label recorded in the trace meta.
    pub scenario: String,
    /// MSS recorded in the trace meta.
    pub mss_bytes: u32,
    /// Hard wall-clock (simulated) limit for the run.
    pub deadline: SimTime,
}

impl Default for ConnectionConfig {
    fn default() -> Self {
        ConnectionConfig {
            flow: 0,
            sender: SenderConfig::default(),
            receiver: ReceiverConfig::default(),
            provider: String::from("synthetic"),
            scenario: String::from("unlabelled"),
            mss_bytes: 1460,
            deadline: SimTime::from_secs(3_600),
        }
    }
}

/// Results of a connection run.
#[derive(Debug, Clone)]
pub struct ConnectionOutcome {
    /// The dual-endpoint packet trace.
    pub trace: FlowTrace,
    /// Sender-internal ground truth.
    pub sender: SenderMetrics,
    /// Receiver-internal ground truth.
    pub receiver: ReceiverMetrics,
    /// Handoff statistics when a mobility scenario was attached.
    pub channel: Option<ChannelStats>,
    /// Simulated time at the end of the run.
    pub finished_at: SimTime,
    /// Discrete events the simulator processed for this run (campaign
    /// telemetry).
    pub events_processed: u64,
    /// Event-queue telemetry for this run: schedule/cancel volume and
    /// live depth, surfaced into the simnet bench baseline.
    pub queue: QueueStats,
}

/// Reusable per-worker state for running many flows through one engine.
///
/// Every buffer that a connection run grows — the simulator's event-queue
/// slab, link queue buffers, the delivery log, the capture slab — lives
/// here and is recycled between runs, so a worker that holds one
/// `ConnectionScratch` across a campaign stops allocating once it has seen
/// its largest flow. Results are bit-identical to fresh-engine runs
/// (`Engine::reset` re-derives every random stream from the new seed).
///
/// The capture uses the struct-of-arrays path: the engine's packet arena
/// already stores every sent packet column-wise, so the only observer is a
/// compact [`DeliveryLog`] ((id, time) per arrival) and the trace is folded
/// straight from `arena + log` by
/// [`trace_from_arena_with`](hsm_trace::capture::trace_from_arena_with).
#[derive(Debug)]
pub struct ConnectionScratch {
    engine: Engine,
    deliveries: DeliveryLog,
    capture: CaptureScratch,
}

impl Default for ConnectionScratch {
    fn default() -> Self {
        ConnectionScratch {
            // The seed is irrelevant: every run resets with its own seed.
            engine: Engine::new(0),
            deliveries: DeliveryLog::new(),
            capture: CaptureScratch::new(),
        }
    }
}

impl ConnectionScratch {
    /// Creates an empty scratch.
    pub fn new() -> ConnectionScratch {
        ConnectionScratch::default()
    }

    /// Deliberately dirties every component of the scratch — stale agents
    /// and links registered on the engine, a *partially executed* junk
    /// simulation (advanced clock, pending events, packets in flight,
    /// consumed random streams), junk deliveries in the shared log, and a
    /// used capture slab.
    ///
    /// This is the `hsm-chaos` scratch-poisoning fault: a subsequent
    /// [`try_run_connection_with`] through the poisoned scratch must
    /// produce a bit-identical result to a fresh run, because the
    /// per-run reset is specified to clear *all* of this state.
    pub fn poison(&mut self) {
        use hsm_simnet::agent::NullAgent;
        use hsm_simnet::packet::{Packet, SeqNo};

        let eng = &mut self.engine;
        eng.reset(0xBAD_5EED);
        let sink = eng.add_agent(Box::new(NullAgent::new()));
        let junk = eng.add_link(LinkSpec::new(sink, "chaos-poison"));
        // Capture the junk traffic into the shared log so it holds stale
        // deliveries too.
        eng.add_delivery_log(self.deliveries.clone());
        for seq in 0..17u64 {
            eng.inject(junk, Packet::data(FlowId(u32::MAX), SeqNo(seq), false));
        }
        // Run only partway: packets stay queued/in flight and the clock
        // stops mid-simulation — the most adversarial state to hand the
        // next reset.
        let _ = eng.try_run_until(SimTime::ZERO + SimDuration::from_micros(10));
        // Dirty the capture slab by folding the junk run through it.
        let meta = FlowMeta {
            provider: "chaos".to_owned(),
            scenario: "poison".to_owned(),
            w_m: 1,
            b: 1,
            mss_bytes: 1,
        };
        let capture = &mut self.capture;
        let arena = eng.arena();
        let _ = self.deliveries.with_deliveries(|deliveries| {
            trace_from_arena_with(capture, arena, deliveries, u32::MAX, meta)
        });
    }
}

/// Builds, runs and harvests a single TCP flow.
///
/// The run ends when the sender finishes (`stop_after`/`max_segments`),
/// the event queue drains, or `cfg.deadline` passes — whichever comes
/// first.
pub fn run_connection(
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> ConnectionOutcome {
    match try_run_connection(seed, path, mobility, cfg) {
        Ok(outcome) => outcome,
        Err(e) => panic!("simulation engine invariant violated: {e}"),
    }
}

/// Fallible twin of [`run_connection`]: engine bookkeeping corruption
/// surfaces as a [`SimError`] instead of panicking, so campaign runners
/// can fail one flow and keep the process alive.
///
/// # Errors
///
/// Returns the [`SimError`] reported by [`Engine::try_run_until`].
pub fn try_run_connection(
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> Result<ConnectionOutcome, SimError> {
    try_run_connection_with(&mut ConnectionScratch::new(), seed, path, mobility, cfg)
}

/// [`try_run_connection`] through a caller-held [`ConnectionScratch`] —
/// the allocation-recycling path campaign workers use to run thousands of
/// flows per engine.
///
/// # Errors
///
/// Returns the [`SimError`] reported by [`Engine::try_run_until`].
pub fn try_run_connection_with(
    scratch: &mut ConnectionScratch,
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    cfg: &ConnectionConfig,
) -> Result<ConnectionOutcome, SimError> {
    run_connection_world(scratch, seed, path, mobility, None, cfg)
}

/// [`try_run_connection_with`] plus a deterministic chaos-storm schedule
/// replayed against the uplink — the rig for studying ACK-delay and
/// ACK-burst impairments (paper §V) with the full trace/analysis
/// pipeline attached. With an empty plan the built world is identical to
/// the storm-free one (no injector agent is added).
///
/// # Errors
///
/// Returns the [`SimError`] reported by [`Engine::try_run_until`].
pub fn try_run_connection_with_storm(
    scratch: &mut ConnectionScratch,
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    storm: &StormPlan,
    cfg: &ConnectionConfig,
) -> Result<ConnectionOutcome, SimError> {
    let storm = (!storm.episodes.is_empty()).then_some(storm);
    run_connection_world(scratch, seed, path, mobility, storm, cfg)
}

fn run_connection_world(
    scratch: &mut ConnectionScratch,
    seed: u64,
    path: &PathSpec,
    mobility: Option<&MobilityScenario>,
    storm: Option<&StormPlan>,
    cfg: &ConnectionConfig,
) -> Result<ConnectionOutcome, SimError> {
    scratch.engine.reset(seed);
    scratch.deliveries.clear();
    let eng = &mut scratch.engine;
    let placeholder = LinkId::from_raw(u32::MAX);
    let tx = eng.add_agent(Box::new(RenoSender::new(
        FlowId(cfg.flow),
        placeholder,
        cfg.sender,
    )));
    let rx = eng.add_agent(Box::new(Receiver::new(
        FlowId(cfg.flow),
        placeholder,
        cfg.receiver,
    )));
    let down = eng.add_link(
        LinkSpec::new(rx, "downlink")
            .bandwidth_bps(path.down_bandwidth_bps)
            .prop_delay(path.down_delay)
            .jitter_sd(path.jitter_sd)
            .queue_capacity(path.queue_capacity)
            .loss(path.down_loss.build()),
    );
    let up = eng.add_link(
        LinkSpec::new(tx, "uplink")
            .bandwidth_bps(path.up_bandwidth_bps)
            .prop_delay(path.up_delay)
            .jitter_sd(path.jitter_sd)
            .queue_capacity(path.queue_capacity)
            .loss(path.up_loss.build()),
    );
    eng.agent_mut::<RenoSender>(tx).expect("sender").data_link = down;
    eng.agent_mut::<Receiver>(rx).expect("receiver").uplink = up;

    let channel_agent = mobility.map(|m| {
        eng.add_agent(Box::new(ChannelProcess::new(
            down,
            up,
            m.trajectory,
            m.layout.clone(),
            m.handoff,
        )))
    });
    // The storm rides the uplink: delayed/lost ACK bursts are the §V
    // impairment under study. Absent a plan, no agent is added and the
    // world is bit-identical to the pre-storm one.
    if let Some(plan) = storm {
        eng.add_agent(Box::new(StormInjector::new(up, plan.clone())));
    }

    eng.add_delivery_log(scratch.deliveries.clone());
    eng.try_run_until(cfg.deadline)?;

    let meta = FlowMeta {
        provider: cfg.provider.clone(),
        scenario: cfg.scenario.clone(),
        w_m: cfg.sender.w_m,
        b: cfg.receiver.b,
        mss_bytes: cfg.mss_bytes,
    };
    // Fold the capture straight from the engine's packet arena plus the
    // compact delivery log (no per-event packet clones anywhere).
    let capture = &mut scratch.capture;
    let arena = eng.arena();
    let trace = scratch
        .deliveries
        .with_deliveries(|deliveries| {
            trace_from_arena_with(capture, arena, deliveries, cfg.flow, meta.clone())
        })
        .unwrap_or_else(|| FlowTrace::new(cfg.flow, meta));
    let sender = eng
        .agent_mut::<RenoSender>(tx)
        .expect("sender")
        .metrics
        .clone();
    let receiver = eng.agent_mut::<Receiver>(rx).expect("receiver").metrics;
    let channel =
        channel_agent.map(|id| eng.agent_mut::<ChannelProcess>(id).expect("channel").stats);
    Ok(ConnectionOutcome {
        trace,
        sender,
        receiver,
        channel,
        finished_at: eng.now(),
        events_processed: eng.events_processed(),
        queue: eng.queue_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_trace::prelude::*;

    #[test]
    fn lossless_run_produces_clean_trace() {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                max_segments: Some(300),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = run_connection(1, &PathSpec::default(), None, &cfg);
        assert_eq!(out.sender.retransmissions, 0);
        assert_eq!(out.receiver.next_expected, 300);
        let a = analyze_flow(&out.trace, &TimeoutConfig::default());
        assert_eq!(a.summary.p_d, 0.0);
        assert_eq!(a.summary.timeouts, 0);
        assert!(a.summary.throughput_sps > 0.0);
        // RTT estimate close to configured 54 ms + tx times.
        assert!(
            (a.summary.rtt_s - 0.055).abs() < 0.02,
            "rtt {}",
            a.summary.rtt_s
        );
    }

    #[test]
    fn lossy_run_trace_matches_internal_ground_truth() {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(60)),
                ..Default::default()
            },
            ..Default::default()
        };
        let path = PathSpec {
            down_loss: LossSpec::GilbertElliott {
                p_good: 0.002,
                p_bad: 0.7,
                g2b: 0.003,
                b2g: 0.08,
            },
            up_loss: LossSpec::Bernoulli(0.004),
            ..Default::default()
        };
        let out = run_connection(7, &path, None, &cfg);
        let a = analyze_flow(&out.trace, &TimeoutConfig::default());
        // The trace-derived loss rate must match the sender's view.
        assert!(a.summary.p_d > 0.0);
        // Trace-inferred timeouts should be close to ground truth.
        let truth = out.sender.timeouts.len() as f64;
        let inferred = f64::from(a.summary.timeouts);
        assert!(
            (inferred - truth).abs() <= truth.max(4.0) * 0.5,
            "inferred {inferred} vs truth {truth}"
        );
    }

    #[test]
    fn mobility_scenario_attaches_channel_stats() {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(120)),
                ..Default::default()
            },
            scenario: "high-speed".into(),
            ..Default::default()
        };
        let mob = MobilityScenario {
            trajectory: Trajectory::new(12.0, 300.0, 2.0),
            layout: CellLayout::rail_corridor(1_000.0, 0.02),
            handoff: HandoffParams::lte_rail(),
        };
        let out = run_connection(21, &PathSpec::default(), Some(&mob), &cfg);
        let stats = out.channel.expect("channel stats");
        assert!(stats.handoffs >= 3, "handoffs {}", stats.handoffs);
        assert_eq!(out.trace.meta.scenario, "high-speed");
    }

    #[test]
    fn reused_scratch_reproduces_fresh_runs_bit_for_bit() {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(20)),
                ..Default::default()
            },
            ..Default::default()
        };
        let path = PathSpec {
            down_loss: LossSpec::Bernoulli(0.01),
            up_loss: LossSpec::Bernoulli(0.004),
            ..Default::default()
        };
        let mut scratch = ConnectionScratch::new();
        for seed in [3u64, 11, 3] {
            let reused = try_run_connection_with(&mut scratch, seed, &path, None, &cfg)
                .expect("scratch run succeeds");
            let fresh = run_connection(seed, &path, None, &cfg);
            assert_eq!(reused.trace, fresh.trace, "seed {seed}");
            assert_eq!(reused.sender.retransmissions, fresh.sender.retransmissions);
            assert_eq!(reused.receiver, fresh.receiver);
            assert_eq!(reused.finished_at, fresh.finished_at);
            assert_eq!(reused.events_processed, fresh.events_processed);
        }
    }

    #[test]
    fn deadline_bounds_the_run() {
        let cfg = ConnectionConfig {
            deadline: SimTime::from_secs(5),
            ..Default::default() // endless sender
        };
        let out = run_connection(3, &PathSpec::default(), None, &cfg);
        assert!(out.finished_at <= SimTime::from_secs(5));
        assert!(!out.trace.records.is_empty());
    }

    #[test]
    fn storm_runs_are_deterministic_and_empty_plans_are_identity() {
        use hsm_simnet::chaos::{StormEpisode, StormKind};

        let cfg = ConnectionConfig {
            sender: SenderConfig {
                stop_after: Some(SimDuration::from_secs(10)),
                ..Default::default()
            },
            ..Default::default()
        };
        let path = PathSpec::default();
        let plan = StormPlan {
            episodes: vec![StormEpisode {
                at: SimTime::from_millis(500),
                duration: SimDuration::from_millis(900),
                kind: StormKind::Flap(SimDuration::from_millis(900)),
            }],
        };
        let mut scratch = ConnectionScratch::new();
        let stormy = try_run_connection_with_storm(&mut scratch, 9, &path, None, &plan, &cfg)
            .expect("storm run succeeds");
        let replay = try_run_connection_with_storm(&mut scratch, 9, &path, None, &plan, &cfg)
            .expect("storm replay succeeds");
        assert_eq!(stormy.trace, replay.trace, "storm runs must replay");

        // The delay flap must actually bite: timeouts appear that the
        // storm-free run does not have.
        let calm = try_run_connection_with(&mut scratch, 9, &path, None, &cfg).expect("calm run");
        assert!(
            stormy.sender.timeouts.len() > calm.sender.timeouts.len(),
            "storm {} vs calm {} timeouts",
            stormy.sender.timeouts.len(),
            calm.sender.timeouts.len()
        );

        // An empty plan adds no injector agent: bit-identical world.
        let empty = try_run_connection_with_storm(
            &mut scratch,
            9,
            &path,
            None,
            &StormPlan::default(),
            &cfg,
        )
        .expect("empty-plan run succeeds");
        assert_eq!(empty.trace, calm.trace);
        assert_eq!(empty.events_processed, calm.events_processed);
    }

    #[test]
    fn loss_spec_steady_state() {
        assert_eq!(LossSpec::Lossless.steady_state(), 0.0);
        assert!((LossSpec::Bernoulli(0.25).steady_state() - 0.25).abs() < 1e-12);
        let ge = LossSpec::GilbertElliott {
            p_good: 0.0,
            p_bad: 1.0,
            g2b: 0.1,
            b2g: 0.3,
        };
        assert!((ge.steady_state() - 0.25).abs() < 1e-12);
    }
}
