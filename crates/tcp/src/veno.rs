//! TCP Veno (Fu et al., cited by the paper's related work).
//!
//! Veno distinguishes *random* (wireless) losses from *congestive* losses
//! with a Vegas-style backlog estimate `N = cwnd·(RTT − baseRTT)/RTT`:
//! when a loss indication arrives with `N < β`, the link was not congested
//! and the window is cut by only 1/5 instead of 1/2. In high-speed
//! mobility scenarios most losses are random (fades, handoffs), so Veno's
//! gentler reaction keeps the pipe fuller — but it does nothing for the
//! paper's two killers (spurious timeouts and lossy recoveries), which is
//! exactly what the `ext_cc` ablation experiment shows.

use crate::cwnd::Algorithm;
use crate::reno::{RenoSender, SenderConfig};
use hsm_simnet::link::LinkId;
use hsm_simnet::packet::FlowId;

/// Builds a Veno sender with the standard `beta = 3`.
pub fn veno_sender(flow: FlowId, data_link: LinkId, mut cfg: SenderConfig) -> RenoSender {
    cfg.algorithm = Algorithm::veno();
    RenoSender::new(flow, data_link, cfg)
}

/// A [`SenderConfig`] preset running Veno.
pub fn veno_config(base: SenderConfig) -> SenderConfig {
    SenderConfig {
        algorithm: Algorithm::veno(),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{run_connection, ConnectionConfig, LossSpec, PathSpec};
    use hsm_simnet::time::{SimDuration, SimTime};
    use hsm_trace::summary::analyze_flow;

    fn run(algorithm: Algorithm, seed: u64) -> f64 {
        let cfg = ConnectionConfig {
            sender: SenderConfig {
                algorithm,
                stop_after: Some(SimDuration::from_secs(40)),
                ..Default::default()
            },
            deadline: SimTime::from_secs(50),
            ..Default::default()
        };
        // Pure random loss, no queueing congestion: Veno's sweet spot.
        let path = PathSpec {
            down_loss: LossSpec::Bernoulli(0.005),
            ..Default::default()
        };
        let out = run_connection(seed, &path, None, &cfg);
        analyze_flow(&out.trace, &Default::default())
            .summary
            .throughput_sps
    }

    #[test]
    fn veno_beats_reno_under_pure_random_loss() {
        let mut veno_sum = 0.0;
        let mut reno_sum = 0.0;
        for seed in 0..3 {
            veno_sum += run(Algorithm::veno(), 60 + seed);
            reno_sum += run(Algorithm::Reno, 60 + seed);
        }
        assert!(
            veno_sum > reno_sum * 1.05,
            "Veno {veno_sum} should clearly beat Reno {reno_sum} under random loss"
        );
    }

    #[test]
    fn constructors_set_algorithm() {
        let s = veno_sender(FlowId(0), LinkId::from_raw(0), SenderConfig::default());
        assert_eq!(s.flight(), 0);
        let cfg = veno_config(SenderConfig::default());
        assert_eq!(cfg.algorithm, Algorithm::veno());
    }
}
