//! Loss-recovery countermeasures (paper §V).
//!
//! The paper's §V diagnoses *why* TCP collapses at high speed — spurious
//! RTOs from delayed (not lost) ACK bursts, and long timeout sequences
//! inflating the recovery-phase loss term `q` — and sketches remedies it
//! never implements. This module makes those remedies first-class sender
//! strategies, analogous to the [`crate::cc`] congestion-control zoo:
//!
//! * [`Recovery::RedundantRto`] — on a timeout, retransmit the oldest
//!   unacknowledged segment *plus its successor*. Two segments give the
//!   receiver two chances to generate an advancing ACK, amortizing ACK
//!   loss across the pair (the §V-B redundancy idea applied to the
//!   recovery phase itself).
//! * [`Recovery::Frto`] — the RFC 5682 F-RTO state machine: after the
//!   first RTO retransmission, probe with up to two *new* segments;
//!   if the following ACK also advances, the original window must be
//!   arriving — the timeout was spurious, so the congestion window is
//!   restored instead of slow-starting. A duplicate ACK during the probe
//!   (or a second RTO — the "retransmission is lost too" path) declares
//!   the loss genuine and resumes conventional go-back-N.
//! * [`Recovery::AckRobust`] — an ACK-loss-robust RTO: when the recent
//!   ACK inter-arrival history shows a burst-delay signature (one
//!   outsized silence amid an otherwise steady ACK clock) the first
//!   timeout of a ladder does *not* double the backoff — the sender
//!   demands a second, corroborating silent RTO before backing off.
//!
//! [`Recovery::None`] is the identity strategy: every hook returns the
//! decision the pre-recovery sender hard-coded, so flows with the default
//! configuration are bit-identical to flows from before this module
//! existed (pinned by goldens, the seed-42 chaos fixture, and the cache
//! digest tests).

use hsm_simnet::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Loss-recovery strategy selector, threaded through `SenderConfig`,
/// `ScenarioConfig`, `DatasetConfig` and campaign specs exactly like the
/// congestion-control `Algorithm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Recovery {
    /// Plain RFC 6298 recovery — the paper's measured baseline.
    #[default]
    None,
    /// Redundant retransmit-on-RTO: resend the oldest unacked segment and
    /// its successor, amortizing ACK loss over the pair.
    RedundantRto,
    /// RFC 5682 F-RTO spurious-timeout detection with cwnd undo.
    Frto,
    /// ACK-loss-robust RTO: require a corroborating silent RTO before
    /// backing off when recent ACK inter-arrivals look like burst delay.
    AckRobust,
}

impl Recovery {
    /// Every strategy, in canonical (study/report) order.
    pub const ALL: [Recovery; 4] = [
        Recovery::None,
        Recovery::RedundantRto,
        Recovery::Frto,
        Recovery::AckRobust,
    ];

    /// Stable display / report label (also the serde external tag).
    pub fn label(self) -> &'static str {
        match self {
            Recovery::None => "None",
            Recovery::RedundantRto => "RedundantRto",
            Recovery::Frto => "Frto",
            Recovery::AckRobust => "AckRobust",
        }
    }

    /// Builds the strategy object the sender drives.
    pub fn build(self) -> Box<dyn LossRecovery> {
        match self {
            Recovery::None => Box::new(NoRecovery),
            Recovery::RedundantRto => Box::new(RedundantRto),
            Recovery::Frto => Box::new(Frto::new()),
            Recovery::AckRobust => Box::new(AckRobust::new()),
        }
    }
}

impl fmt::Display for Recovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the sender should do about the RTO that just fired.
///
/// `NoRecovery` returns the all-`false` plan, which reproduces the
/// pre-recovery sender exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeoutPlan {
    /// Also retransmit `snd_una + 1` (when such a segment is outstanding).
    pub retransmit_successor: bool,
    /// Do not advance the exponential-backoff counter for this timeout.
    pub skip_backoff: bool,
    /// Snapshot the congestion controller and arm the F-RTO probe state
    /// machine; a later [`AckDisposition::SpuriousUndo`] restores it.
    pub arm_frto: bool,
}

/// How the sender should treat an arriving cumulative ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDisposition {
    /// Process conventionally (the only disposition `NoRecovery` emits).
    Conventional,
    /// RFC 5682 step 2b: the first ACK after the RTO retransmission
    /// advances without covering the recovery point — transmit up to two
    /// previously-unsent segments and defer the recovery decision.
    SendNewData,
    /// RFC 5682 step 3b: the probe round also advanced — the timeout was
    /// spurious. Restore the snapshot and skip go-back-N.
    SpuriousUndo,
    /// RFC 5682 step 3a: a duplicate ACK during the probe — the loss is
    /// genuine; resume conventional go-back-N from the cumulative point.
    GenuineLoss,
}

/// A loss-recovery strategy, driven by the sender at ACK arrivals and
/// retransmission timeouts (the [`crate::cc::CongestionControl`] analogue
/// for the recovery phase).
pub trait LossRecovery: fmt::Debug + Send {
    /// The strategy's stable name (matches [`Recovery::label`]).
    fn name(&self) -> &'static str;

    /// Observes every ACK arrival (duplicate or advancing) before the
    /// sender processes it; strategies mine this stream for inter-arrival
    /// signatures.
    fn observe_ack(&mut self, _now: SimTime) {}

    /// An RTO fired. `first` is true on the first rung of a backoff
    /// ladder (no unrecovered timeout precedes it); `una`/`high_water`
    /// delimit the outstanding window.
    fn plan_timeout(&mut self, now: SimTime, first: bool, una: u64, high_water: u64)
        -> TimeoutPlan;

    /// Classifies an arriving ACK (`advancing` = cumulatively new).
    /// Only meaningful while an F-RTO probe is pending; the default and
    /// every non-F-RTO strategy answer [`AckDisposition::Conventional`].
    fn classify_ack(&mut self, _cum: u64, _advancing: bool) -> AckDisposition {
        AckDisposition::Conventional
    }

    /// Clones the strategy with its current state.
    fn clone_box(&self) -> Box<dyn LossRecovery>;
}

impl Clone for Box<dyn LossRecovery> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The identity strategy: plain RFC 6298 recovery.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecovery;

impl LossRecovery for NoRecovery {
    fn name(&self) -> &'static str {
        "None"
    }

    fn plan_timeout(&mut self, _: SimTime, _: bool, _: u64, _: u64) -> TimeoutPlan {
        TimeoutPlan::default()
    }

    fn clone_box(&self) -> Box<dyn LossRecovery> {
        Box::new(*self)
    }
}

/// Redundant retransmit-on-RTO (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundantRto;

impl LossRecovery for RedundantRto {
    fn name(&self) -> &'static str {
        "RedundantRto"
    }

    fn plan_timeout(&mut self, _: SimTime, _: bool, una: u64, high_water: u64) -> TimeoutPlan {
        TimeoutPlan {
            // Only when a successor segment is actually outstanding.
            retransmit_successor: high_water > una + 1,
            ..TimeoutPlan::default()
        }
    }

    fn clone_box(&self) -> Box<dyn LossRecovery> {
        Box::new(*self)
    }
}

/// F-RTO probe progress (RFC 5682 §2.2, basic algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrtoState {
    /// No probe pending.
    Idle,
    /// Step 1 done: the RTO retransmission is out, waiting for the first
    /// ACK. `point` is the recovery point (`high_water` at the timeout).
    RetransmitSent {
        /// Recovery point: all data below it was outstanding at the RTO.
        point: u64,
    },
    /// Step 2b done: new-data probes are out, the next ACK decides.
    ProbeSent,
}

/// The RFC 5682 F-RTO state machine.
#[derive(Debug, Clone)]
pub struct Frto {
    state: FrtoState,
}

impl Frto {
    /// A fresh (idle) state machine.
    pub fn new() -> Frto {
        Frto {
            state: FrtoState::Idle,
        }
    }
}

impl Default for Frto {
    fn default() -> Self {
        Frto::new()
    }
}

impl LossRecovery for Frto {
    fn name(&self) -> &'static str {
        "Frto"
    }

    fn plan_timeout(&mut self, _: SimTime, first: bool, una: u64, high_water: u64) -> TimeoutPlan {
        // F-RTO only engages on the first rung of a ladder, and only when
        // data beyond the retransmitted segment is outstanding (otherwise
        // the first ACK could never disambiguate). A repeat RTO while a
        // probe is pending is the RFC's "the retransmission is lost too"
        // case: genuine loss, fall back to conventional recovery.
        if first && high_water > una + 1 {
            self.state = FrtoState::RetransmitSent { point: high_water };
            TimeoutPlan {
                arm_frto: true,
                ..TimeoutPlan::default()
            }
        } else {
            self.state = FrtoState::Idle;
            TimeoutPlan::default()
        }
    }

    fn classify_ack(&mut self, cum: u64, advancing: bool) -> AckDisposition {
        match self.state {
            FrtoState::Idle => AckDisposition::Conventional,
            FrtoState::RetransmitSent { point } => {
                if !advancing {
                    // RFC 5682 step 2a: a duplicate ACK first — revert to
                    // conventional recovery without declaring anything.
                    self.state = FrtoState::Idle;
                    AckDisposition::Conventional
                } else if cum >= point {
                    // The first ACK covers the whole recovery point; the
                    // basic algorithm cannot separate spurious from a
                    // lucky retransmission — stay conventional (there is
                    // nothing left to go-back-N over anyway).
                    self.state = FrtoState::Idle;
                    AckDisposition::Conventional
                } else {
                    self.state = FrtoState::ProbeSent;
                    AckDisposition::SendNewData
                }
            }
            FrtoState::ProbeSent => {
                self.state = FrtoState::Idle;
                if advancing {
                    AckDisposition::SpuriousUndo
                } else {
                    AckDisposition::GenuineLoss
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn LossRecovery> {
        Box::new(self.clone())
    }
}

/// How much larger than the typical inter-arrival an ACK gap must be to
/// count as a delay spike rather than ordinary ACK-clock jitter.
const BURST_GAP_RATIO: f64 = 6.0;

/// Absolute floor for a delay spike, seconds — RTT-round ACK clumping
/// produces gaps far below this; real burst delays approach the RTO.
const MIN_SPIKE_S: f64 = 0.2;

/// How long a witnessed delay spike keeps vouching for "this channel
/// delays ACK bursts", seconds.
const SPIKE_MEMORY_S: f64 = 10.0;

/// The ACK-loss-robust RTO strategy.
///
/// The burst-delay signature: an outsized silence in the ACK stream that
/// *ended in an arrival* is direct evidence the channel delays ACK bursts
/// rather than losing them (paper Fig. 5 — a genuine loss ends in a
/// retransmission, not a late ACK). While such a spike is fresh, the
/// first RTO of a ladder re-arms at the same value instead of doubling,
/// demanding one corroborating silent RTO before the exponential ladder
/// starts.
#[derive(Debug, Clone)]
pub struct AckRobust {
    /// Arrival time of the most recent ACK.
    last_ack: Option<SimTime>,
    /// EMA of the ACK inter-arrival gap, seconds (the "ACK clock").
    typical_gap: f64,
    /// When an outsized silence last ended in an ACK arrival.
    last_spike: Option<SimTime>,
    /// A backoff was already withheld with no ACK since: the next silent
    /// RTO is the corroboration and must back off normally. (The backoff
    /// counter itself cannot serve as this latch — a withheld backoff
    /// leaves it at zero.)
    withheld: bool,
}

impl AckRobust {
    /// A fresh strategy with an empty arrival history.
    pub fn new() -> AckRobust {
        AckRobust {
            last_ack: None,
            typical_gap: 0.0,
            last_spike: None,
            withheld: false,
        }
    }
}

impl Default for AckRobust {
    fn default() -> Self {
        AckRobust::new()
    }
}

impl LossRecovery for AckRobust {
    fn name(&self) -> &'static str {
        "AckRobust"
    }

    fn observe_ack(&mut self, now: SimTime) {
        if let Some(prev) = self.last_ack {
            let gap = now.saturating_since(prev).as_secs_f64();
            if self.typical_gap > 0.0
                && gap >= MIN_SPIKE_S
                && gap > self.typical_gap * BURST_GAP_RATIO
            {
                self.last_spike = Some(now);
            }
            self.typical_gap = if self.typical_gap == 0.0 {
                gap
            } else {
                self.typical_gap * 0.875 + gap * 0.125
            };
        }
        self.last_ack = Some(now);
        self.withheld = false;
    }

    fn plan_timeout(&mut self, now: SimTime, first: bool, _: u64, _: u64) -> TimeoutPlan {
        // Only the first rung may withhold backoff, only while a witnessed
        // delay spike is fresh, and only once per silence: a second RTO
        // with still no ACKs is the corroborating silence — back off then.
        let spike_fresh = self
            .last_spike
            .is_some_and(|at| now.saturating_since(at).as_secs_f64() <= SPIKE_MEMORY_S);
        let skip = first && !self.withheld && spike_fresh;
        if skip {
            self.withheld = true;
        }
        TimeoutPlan {
            skip_backoff: skip,
            ..TimeoutPlan::default()
        }
    }

    fn clone_box(&self) -> Box<dyn LossRecovery> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_simnet::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn serde_uses_external_tags_and_none_is_default() {
        assert_eq!(Recovery::default(), Recovery::None);
        for (r, json) in [
            (Recovery::None, "\"None\""),
            (Recovery::RedundantRto, "\"RedundantRto\""),
            (Recovery::Frto, "\"Frto\""),
            (Recovery::AckRobust, "\"AckRobust\""),
        ] {
            assert_eq!(serde_json::to_string(&r).unwrap(), json);
            let back: Recovery = serde_json::from_str(json).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn labels_match_the_zoo() {
        let labels: Vec<&str> = Recovery::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["None", "RedundantRto", "Frto", "AckRobust"]);
        for r in Recovery::ALL {
            assert_eq!(r.build().name(), r.label());
            assert_eq!(format!("{r}"), r.label());
        }
    }

    #[test]
    fn no_recovery_is_the_identity_plan() {
        let mut n = NoRecovery;
        let plan = n.plan_timeout(t(0), true, 0, 100);
        assert_eq!(plan, TimeoutPlan::default());
        assert!(!plan.retransmit_successor && !plan.skip_backoff && !plan.arm_frto);
        assert_eq!(n.classify_ack(5, true), AckDisposition::Conventional);
        assert_eq!(n.classify_ack(5, false), AckDisposition::Conventional);
    }

    #[test]
    fn redundant_rto_needs_an_outstanding_successor() {
        let mut r = RedundantRto;
        assert!(r.plan_timeout(t(0), true, 10, 20).retransmit_successor);
        // Only the lone segment `una` is outstanding: nothing to pair.
        assert!(!r.plan_timeout(t(0), true, 10, 11).retransmit_successor);
        assert!(r.plan_timeout(t(0), false, 10, 20).retransmit_successor);
    }

    #[test]
    fn frto_spurious_path_follows_rfc_5682() {
        let mut f = Frto::new();
        // Step 1: first RTO of a ladder with outstanding data arms.
        let plan = f.plan_timeout(t(0), true, 10, 30);
        assert!(plan.arm_frto);
        // Step 2b: first ACK advances below the recovery point.
        assert_eq!(f.classify_ack(12, true), AckDisposition::SendNewData);
        // Step 3b: the probe round advances too — spurious.
        assert_eq!(f.classify_ack(20, true), AckDisposition::SpuriousUndo);
        // Machine is idle again.
        assert_eq!(f.classify_ack(25, true), AckDisposition::Conventional);
    }

    #[test]
    fn frto_genuine_paths_follow_rfc_5682() {
        // 3a: duplicate ACK during the probe round → genuine.
        let mut f = Frto::new();
        assert!(f.plan_timeout(t(0), true, 10, 30).arm_frto);
        assert_eq!(f.classify_ack(12, true), AckDisposition::SendNewData);
        assert_eq!(f.classify_ack(12, false), AckDisposition::GenuineLoss);

        // 2a: duplicate ACK before any advance → plain conventional.
        let mut f = Frto::new();
        assert!(f.plan_timeout(t(0), true, 10, 30).arm_frto);
        assert_eq!(f.classify_ack(10, false), AckDisposition::Conventional);
        assert_eq!(f.classify_ack(12, true), AckDisposition::Conventional);

        // First ACK covers the recovery point → cannot disambiguate.
        let mut f = Frto::new();
        assert!(f.plan_timeout(t(0), true, 10, 30).arm_frto);
        assert_eq!(f.classify_ack(30, true), AckDisposition::Conventional);
    }

    #[test]
    fn frto_repeat_rto_is_the_retransmission_lost_path() {
        let mut f = Frto::new();
        assert!(f.plan_timeout(t(0), true, 10, 30).arm_frto);
        // The retransmission is lost too: a second (backed-off) RTO fires
        // before any ACK. F-RTO must disengage entirely.
        let plan = f.plan_timeout(t(2), false, 10, 30);
        assert!(!plan.arm_frto);
        assert_eq!(f.classify_ack(12, true), AckDisposition::Conventional);
    }

    #[test]
    fn frto_does_not_arm_without_outstanding_successors() {
        let mut f = Frto::new();
        assert!(!f.plan_timeout(t(0), true, 10, 11).arm_frto);
        assert_eq!(f.classify_ack(11, true), AckDisposition::Conventional);
    }

    #[test]
    fn ack_robust_skips_backoff_only_on_burst_delay_signature() {
        // Steady ACK clock, then an RTO: uniform silence — genuine.
        let mut a = AckRobust::new();
        for i in 0..6 {
            a.observe_ack(t(100 + 20 * i));
        }
        assert!(!a.plan_timeout(t(1_000), true, 0, 10).skip_backoff);

        // Steady clock with one outsized gap (the delayed burst arriving
        // late): skip the first backoff, demand corroboration.
        let mut a = AckRobust::new();
        for ms in [100, 120, 140, 160, 600, 620] {
            a.observe_ack(t(ms));
        }
        assert!(a.plan_timeout(t(1_200), true, 0, 10).skip_backoff);
        // The corroborating (second) silent RTO must back off normally —
        // even though the withheld backoff left the ladder counter (and
        // hence `first`) unchanged.
        assert!(!a.plan_timeout(t(2_400), true, 0, 10).skip_backoff);
        // An ACK arrival re-arms the single-skip budget.
        a.observe_ack(t(3_000));
        assert!(a.plan_timeout(t(4_000), true, 0, 10).skip_backoff);
    }

    #[test]
    fn ack_robust_spikes_expire_and_the_first_gap_never_counts() {
        // The very first gap calibrates the ACK clock; it cannot witness
        // a spike on its own.
        let mut a = AckRobust::new();
        a.observe_ack(t(0));
        a.observe_ack(t(500));
        assert!(!a.plan_timeout(t(1_000), true, 0, 10).skip_backoff);

        // A witnessed spike vouches now but has expired 10 s later.
        let mut a = AckRobust::new();
        for ms in [0, 20, 40, 60, 80, 500] {
            a.observe_ack(t(ms));
        }
        let mut late = a.clone();
        assert!(a.plan_timeout(t(700), true, 0, 10).skip_backoff);
        assert!(
            !late.plan_timeout(t(12_000), true, 0, 10).skip_backoff,
            "spike memory must expire"
        );
    }

    #[test]
    fn strategies_clone_with_state() {
        let mut f = Frto::new();
        assert!(f.plan_timeout(t(0), true, 10, 30).arm_frto);
        let mut c = f.clone_box();
        // The clone carries the armed state.
        assert_eq!(c.classify_ack(12, true), AckDisposition::SendNewData);
    }
}
