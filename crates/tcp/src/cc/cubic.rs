//! CUBIC congestion control (RFC 8312).
//!
//! Window growth in congestion avoidance is a cubic function of the time
//! elapsed since the last reduction, `W_cubic(t) = C·(t − K)³ + W_max`,
//! which plateaus around the previous loss point `W_max` and then probes
//! aggressively beyond it. Fast convergence releases bandwidth when the
//! loss point keeps moving down, and the TCP-friendly region keeps CUBIC
//! no slower than Reno on short-RTT paths.
//!
//! The simulator has no wall clock inside the controller, so elapsed time
//! is accumulated virtually: each ACK of `a` segments advances the epoch
//! clock by `a·RTT/cwnd` — one full RTT per acknowledged window, which is
//! exactly what "time since the epoch started" means in round units. This
//! keeps the controller a pure function of its event stream (bit-for-bit
//! deterministic across workers and replays).

use crate::cwnd::Phase;

use super::CongestionControl;

/// RFC 8312 TCP-friendly region constant `3·(1−β)/(1+β)`.
fn friendly_gain(beta: f64) -> f64 {
    3.0 * (1.0 - beta) / (1.0 + beta)
}

/// The CUBIC controller.
#[derive(Debug, Clone, Copy)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    w_m: f64,
    /// Cubic scaling constant `C`.
    c: f64,
    /// Multiplicative decrease factor `β`.
    beta: f64,
    /// Window at the last reduction (after fast convergence).
    w_max: f64,
    /// Time for the cubic to regrow to `w_max`: `∛(W_max·(1−β)/C)`.
    k: f64,
    /// Virtual time since the current epoch started, seconds.
    t_s: f64,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    /// Most recent clean RTT observation, seconds.
    last_rtt_s: f64,
}

impl Cubic {
    /// Creates a CUBIC controller with initial window 1.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn new(w_m: u32, c: f64, beta: f64) -> Cubic {
        assert!(w_m > 0, "advertised window must be positive");
        Cubic {
            cwnd: 1.0,
            ssthresh: f64::from(w_m),
            phase: Phase::SlowStart,
            w_m: f64::from(w_m),
            c,
            beta,
            w_max: 0.0,
            k: 0.0,
            t_s: 0.0,
            w_est: 0.0,
            last_rtt_s: f64::INFINITY,
        }
    }

    /// Starts a growth epoch from the current window (RFC 8312 §4.1).
    fn start_epoch(&mut self) {
        if self.w_max < self.cwnd {
            self.w_max = self.cwnd;
        }
        self.k = ((self.w_max - self.cwnd).max(0.0) / self.c).cbrt();
        self.t_s = 0.0;
        self.w_est = self.cwnd;
    }

    fn w_cubic(&self, t: f64) -> f64 {
        self.c * (t - self.k).powi(3) + self.w_max
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.min(self.w_m.max(1.0) * 2.0);
    }
}

impl CongestionControl for Cubic {
    fn observe_rtt(&mut self, rtt_s: f64) {
        if rtt_s > 0.0 && rtt_s.is_finite() {
            self.last_rtt_s = rtt_s;
        }
    }

    fn on_new_ack(&mut self, acked: u64) {
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += acked as f64;
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                    self.start_epoch();
                }
            }
            Phase::CongestionAvoidance => {
                if !self.last_rtt_s.is_finite() {
                    // No RTT sample yet: fall back to Reno-style additive
                    // increase rather than inventing a time base.
                    self.cwnd += 1.0 / self.cwnd.max(1.0);
                } else {
                    let rtt = self.last_rtt_s;
                    let a = acked as f64;
                    // One RTT of virtual time per acknowledged window.
                    self.t_s += a * rtt / self.cwnd.max(1.0);
                    // Reno-equivalent AIMD estimate for the friendly region.
                    self.w_est += friendly_gain(self.beta) * a / self.cwnd.max(1.0);
                    let target = self.w_cubic(self.t_s + rtt);
                    if self.w_cubic(self.t_s) < self.w_est {
                        // TCP-friendly region: track the Reno estimate.
                        self.cwnd = self.cwnd.max(self.w_est);
                    } else {
                        // Concave/convex cubic growth toward the target.
                        let step = (target - self.cwnd).max(0.0) / self.cwnd.max(1.0);
                        self.cwnd += step * a;
                    }
                }
            }
            Phase::FastRecovery => {
                // Callers exit fast recovery explicitly.
            }
        }
        self.clamp();
    }

    fn enter_fast_recovery(&mut self, _flight: u64) {
        // Fast convergence (RFC 8312 §4.6): when the loss point is lower
        // than last time, release extra bandwidth for newcomers.
        let w = self.cwnd;
        self.w_max = if w < self.w_max {
            w * (2.0 - self.beta) / 2.0
        } else {
            w
        };
        self.ssthresh = (w * self.beta).max(2.0);
        self.cwnd = self.ssthresh + 3.0;
        self.phase = Phase::FastRecovery;
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += 1.0;
        }
    }

    fn exit_fast_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self.ssthresh;
            self.phase = Phase::CongestionAvoidance;
            self.start_epoch();
        }
    }

    fn on_partial_ack(&mut self, acked: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = (self.cwnd - acked as f64 + 1.0).max(1.0);
        }
    }

    fn on_timeout(&mut self, _flight: u64) {
        let w = self.cwnd;
        self.w_max = if w < self.w_max {
            w * (2.0 - self.beta) / 2.0
        } else {
            w
        };
        self.ssthresh = (w * self.beta).max(2.0);
        self.cwnd = 1.0;
        self.phase = Phase::SlowStart;
    }

    fn window(&self) -> u64 {
        self.cwnd.min(self.w_m).floor().max(1.0) as u64
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn window_limited(&self) -> bool {
        self.cwnd >= self.w_m
    }

    fn name(&self) -> &'static str {
        "Cubic"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self) {
        assert!(
            self.cwnd.is_finite() && self.cwnd >= 1.0,
            "cubic cwnd invariant violated: cwnd = {}",
            self.cwnd,
        );
        assert!(
            self.ssthresh.is_finite() && self.ssthresh >= 1.0,
            "cubic ssthresh invariant violated: ssthresh = {}",
            self.ssthresh,
        );
        assert!(
            self.w_max.is_finite() && self.w_max >= 0.0 && self.k.is_finite(),
            "cubic epoch state invariant violated: w_max = {}, k = {}",
            self.w_max,
            self.k,
        );
        let ceiling = self.w_m.max(1.0) * 3.0 + 4.0;
        assert!(
            self.cwnd <= ceiling,
            "cubic cwnd {} escaped its {} ceiling",
            self.cwnd,
            ceiling
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grown(w_m: u32) -> Cubic {
        let mut c = Cubic::new(w_m, 0.4, 0.7);
        c.observe_rtt(0.05);
        for _ in 0..40 {
            c.on_new_ack(1);
        }
        c
    }

    #[test]
    fn slow_start_matches_reno() {
        let mut c = Cubic::new(64, 0.4, 0.7);
        assert_eq!(c.window(), 1);
        c.on_new_ack(1);
        c.on_new_ack(1);
        c.on_new_ack(1);
        assert_eq!(c.window(), 4, "byte-counting slow start");
    }

    #[test]
    fn beta_cut_is_gentler_than_reno() {
        let mut c = grown(64);
        let w = c.cwnd();
        c.enter_fast_recovery(w as u64);
        assert!((c.ssthresh() - (w * 0.7).max(2.0)).abs() < 1e-12, "0.7 cut");
        c.exit_fast_recovery();
        assert_eq!(c.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn growth_plateaus_near_w_max_then_probes() {
        // Big pipe so the cubic term dominates the TCP-friendly floor:
        // slow-start to ~300, lose, and watch the epoch's growth curve.
        let mut c = Cubic::new(300, 0.4, 0.7);
        c.observe_rtt(0.05);
        while c.phase() == Phase::SlowStart {
            c.on_new_ack(1);
        }
        c.enter_fast_recovery(c.cwnd() as u64);
        c.exit_fast_recovery();
        let w_max = c.w_max;
        // Per-round (one RTT ≈ cwnd ACKs) window gains across the epoch.
        let mut gains = Vec::new();
        let mut cwnds = Vec::new();
        for _ in 0..200 {
            let before = c.cwnd();
            for _ in 0..before as u32 {
                c.on_new_ack(1);
            }
            gains.push(c.cwnd() - before);
            cwnds.push(before);
        }
        let (min_idx, min_gain) = gains
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, g)| (i, *g))
            .unwrap();
        assert!(
            (cwnds[min_idx] - w_max).abs() < 0.15 * w_max,
            "slowest growth must sit near the loss point: cwnd {} vs w_max {}",
            cwnds[min_idx],
            w_max
        );
        assert!(
            gains[0] > min_gain && *gains.last().unwrap() > min_gain,
            "concave-then-convex: first {} min {} last {}",
            gains[0],
            min_gain,
            gains.last().unwrap()
        );
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_consecutive_losses() {
        let mut c = grown(64);
        c.enter_fast_recovery(c.window());
        c.exit_fast_recovery();
        let w_max_1 = c.w_max;
        c.enter_fast_recovery(c.window());
        assert!(
            c.w_max < w_max_1,
            "second (lower) loss point must shrink w_max: {} -> {}",
            w_max_1,
            c.w_max
        );
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut c = grown(64);
        c.on_timeout(20);
        assert_eq!(c.window(), 1);
        assert_eq!(c.phase(), Phase::SlowStart);
        c.assert_invariants();
    }

    #[test]
    fn deterministic_event_stream() {
        let run = || {
            let mut c = Cubic::new(48, 0.4, 0.7);
            c.observe_rtt(0.08);
            for i in 0..500u64 {
                c.on_new_ack(1 + i % 2);
                if i % 97 == 0 {
                    c.enter_fast_recovery(c.window());
                    c.on_dup_ack_in_recovery();
                    c.exit_fast_recovery();
                }
            }
            c.cwnd()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
