//! Pluggable congestion control.
//!
//! The sender drives its window through the [`CongestionControl`] trait,
//! so the loss-based Reno family (with the Veno variant, [`crate::cwnd`]),
//! [`Cubic`] (RFC 8312), the model-based [`Bbr`] sender and the hybrid
//! loss/delay [`Compound`] controller are interchangeable: every
//! [`crate::reno::RenoSender`] feature — NewReno partial ACKs, F-RTO undo,
//! redundant backup-path retransmission — composes with every controller.
//!
//! The trait deliberately mirrors the event vocabulary of the Reno state
//! machine (new ACK, third duplicate ACK, duplicate ACK during recovery,
//! partial ACK, timeout) rather than a rate/pacing abstraction: the
//! paper's measurement methodology is defined in terms of those events,
//! and every controller — even BBR, which internally reasons about rates
//! — must keep the [`Phase`] machine honest so the sender's recovery
//! bookkeeping (and the analyzer downstream) keeps working unchanged.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cwnd::{Cwnd, Phase};

mod bbr;
mod compound;
mod cubic;

pub use bbr::Bbr;
pub use compound::Compound;
pub use cubic::Cubic;

/// A congestion controller driven by the sender's ACK/loss/timeout events.
///
/// Implementations own the full window state machine: they must keep
/// [`CongestionControl::phase`] consistent with the calls they receive
/// (`enter_fast_recovery` ⇒ [`Phase::FastRecovery`] until
/// `exit_fast_recovery`, `on_timeout` ⇒ [`Phase::SlowStart`]), because the
/// sender branches on the phase to decide between recovery bookkeeping and
/// normal window growth.
pub trait CongestionControl: fmt::Debug + Send {
    /// Feeds a clean (Karn-filtered) RTT observation, seconds.
    fn observe_rtt(&mut self, rtt_s: f64);

    /// An ACK advanced the cumulative point by `acked` segments outside
    /// fast recovery.
    fn on_new_ack(&mut self, acked: u64);

    /// Third duplicate ACK: cut the window and enter fast recovery.
    /// `flight` is the outstanding data in segments.
    fn enter_fast_recovery(&mut self, flight: u64);

    /// A further duplicate ACK while in fast recovery (window inflation).
    fn on_dup_ack_in_recovery(&mut self);

    /// An ACK for new data ended fast recovery (window deflation).
    fn exit_fast_recovery(&mut self);

    /// NewReno partial ACK: deflate but stay in fast recovery.
    fn on_partial_ack(&mut self, acked: u64);

    /// Retransmission timeout. `flight` is outstanding data in segments.
    fn on_timeout(&mut self, flight: u64);

    /// The effective send window in whole segments:
    /// `max(1, floor(min(cwnd, W_m)))`.
    fn window(&self) -> u64;

    /// The raw (fractional, uncapped) congestion window in segments —
    /// for controllers with several components, their sum.
    fn cwnd(&self) -> f64;

    /// The current slow-start threshold (or the controller's nearest
    /// equivalent — every implementation must keep it finite and ≥ 1).
    fn ssthresh(&self) -> f64;

    /// The congestion phase, as defined by the Reno event vocabulary.
    fn phase(&self) -> Phase;

    /// True when the advertised window is the binding constraint.
    fn window_limited(&self) -> bool;

    /// Stable display name ("Reno", "Cubic", …).
    fn name(&self) -> &'static str;

    /// Clones the controller state (used by the F-RTO spurious-RTO undo,
    /// which snapshots the pre-collapse window).
    fn clone_box(&self) -> Box<dyn CongestionControl>;

    /// Checks the controller's structural invariants (window ≥ 1 segment,
    /// bounded by its ceiling, all state finite).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self);
}

/// Which congestion-control algorithm shapes the window.
///
/// This is pure *configuration* — a serializable label with parameters
/// that flows through `SenderConfig`, scenario configs and campaign cache
/// keys; [`Algorithm::build`] turns it into a live [`CongestionControl`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Algorithm {
    /// Classic Reno (the paper's modelling target).
    #[default]
    Reno,
    /// TCP Veno (Fu et al., cited by the paper): estimates the router
    /// backlog `N = cwnd·(RTT − baseRTT)/RTT`; a loss with `N < beta` is
    /// deemed *random* (wireless) and the window is only reduced by 1/5,
    /// and congestion-avoidance growth slows to every other ACK once the
    /// backlog builds up.
    Veno {
        /// Backlog threshold distinguishing random from congestive loss
        /// (Veno's default is 3 packets).
        beta: f64,
    },
    /// CUBIC (RFC 8312): window growth is a cubic function of the time
    /// since the last reduction, with fast convergence and a
    /// TCP-friendly region.
    Cubic {
        /// Cubic scaling constant `C` (RFC 8312 default 0.4).
        c: f64,
        /// Multiplicative decrease factor `β` (RFC 8312 default 0.7).
        beta: f64,
    },
    /// A BBR-style model-based sender: windowed max-bandwidth and
    /// min-RTT estimates set the window to a gain-cycled BDP through a
    /// simple STARTUP/PROBE_BW state machine.
    Bbr,
    /// Compound TCP (Tan et al.): a scalable delay window `dwnd` grows
    /// alongside the loss-based `cwnd` while queueing delay stays below
    /// `gamma`, and drains when queues build.
    Compound {
        /// Delay-window growth gain `α` (default 1/8).
        alpha: f64,
        /// Multiplicative decrease factor `β` (default 1/2).
        beta: f64,
        /// Delay-window growth exponent `k` (default 3/4).
        k: f64,
        /// Queue backlog threshold `γ`, packets (default 30).
        gamma: f64,
    },
}

impl Algorithm {
    /// Veno with its standard `beta = 3`.
    pub fn veno() -> Algorithm {
        Algorithm::Veno { beta: 3.0 }
    }

    /// CUBIC with the RFC 8312 constants (`C = 0.4`, `β = 0.7`).
    pub fn cubic() -> Algorithm {
        Algorithm::Cubic { c: 0.4, beta: 0.7 }
    }

    /// Compound with the published defaults
    /// (`α = 1/8`, `β = 1/2`, `k = 3/4`, `γ = 30`).
    pub fn compound() -> Algorithm {
        Algorithm::Compound {
            alpha: 0.125,
            beta: 0.5,
            k: 0.75,
            gamma: 30.0,
        }
    }

    /// Every member of the congestion-control zoo at its defaults, in
    /// study order.
    pub fn zoo() -> [Algorithm; 5] {
        [
            Algorithm::Reno,
            Algorithm::veno(),
            Algorithm::cubic(),
            Algorithm::Bbr,
            Algorithm::compound(),
        ]
    }

    /// Stable display label of the variant.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Reno => "Reno",
            Algorithm::Veno { .. } => "Veno",
            Algorithm::Cubic { .. } => "Cubic",
            Algorithm::Bbr => "Bbr",
            Algorithm::Compound { .. } => "Compound",
        }
    }

    /// Instantiates the live controller for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn build(&self, w_m: u32) -> Box<dyn CongestionControl> {
        match *self {
            Algorithm::Reno | Algorithm::Veno { .. } => Box::new(Cwnd::with_algorithm(w_m, *self)),
            Algorithm::Cubic { c, beta } => Box::new(Cubic::new(w_m, c, beta)),
            Algorithm::Bbr => Box::new(Bbr::new(w_m)),
            Algorithm::Compound {
                alpha,
                beta,
                k,
                gamma,
            } => Box::new(Compound::new(w_m, alpha, beta, k, gamma)),
        }
    }
}

/// The loss-based Reno family speaks the trait natively: [`Cwnd`] *is*
/// the reference implementation the other controllers are held to, so the
/// sender's behavior under Reno/NewReno/Veno is bit-identical to the
/// pre-trait enum dispatch.
impl CongestionControl for Cwnd {
    fn observe_rtt(&mut self, rtt_s: f64) {
        Cwnd::observe_rtt(self, rtt_s);
    }

    fn on_new_ack(&mut self, acked: u64) {
        Cwnd::on_new_ack(self, acked);
    }

    fn enter_fast_recovery(&mut self, flight: u64) {
        Cwnd::enter_fast_recovery(self, flight);
    }

    fn on_dup_ack_in_recovery(&mut self) {
        Cwnd::on_dup_ack_in_recovery(self);
    }

    fn exit_fast_recovery(&mut self) {
        Cwnd::exit_fast_recovery(self);
    }

    fn on_partial_ack(&mut self, acked: u64) {
        Cwnd::on_partial_ack(self, acked);
    }

    fn on_timeout(&mut self, flight: u64) {
        Cwnd::on_timeout(self, flight);
    }

    fn window(&self) -> u64 {
        Cwnd::window(self)
    }

    fn cwnd(&self) -> f64 {
        Cwnd::cwnd(self)
    }

    fn ssthresh(&self) -> f64 {
        Cwnd::ssthresh(self)
    }

    fn phase(&self) -> Phase {
        Cwnd::phase(self)
    }

    fn window_limited(&self) -> bool {
        Cwnd::window_limited(self)
    }

    fn name(&self) -> &'static str {
        match self.algorithm() {
            Algorithm::Veno { .. } => "Veno",
            _ => "Reno",
        }
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self) {
        Cwnd::assert_invariants(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches_every_variant() {
        for algo in Algorithm::zoo() {
            let cc = algo.build(48);
            assert_eq!(cc.name(), algo.label());
            assert_eq!(cc.window(), 1, "{}: initial window", cc.name());
            assert_eq!(cc.phase(), Phase::SlowStart);
        }
    }

    #[test]
    fn zoo_members_serialize_with_external_tags() {
        let json = |a: &Algorithm| serde_json::to_string(a).unwrap();
        assert_eq!(json(&Algorithm::Reno), "\"Reno\"");
        assert_eq!(json(&Algorithm::Bbr), "\"Bbr\"");
        assert_eq!(json(&Algorithm::veno()), "{\"Veno\":{\"beta\":3.0}}");
        assert_eq!(
            json(&Algorithm::cubic()),
            "{\"Cubic\":{\"c\":0.4,\"beta\":0.7}}"
        );
        assert_eq!(
            json(&Algorithm::compound()),
            "{\"Compound\":{\"alpha\":0.125,\"beta\":0.5,\"k\":0.75,\"gamma\":30.0}}"
        );
        for algo in Algorithm::zoo() {
            let back: Algorithm = serde_json::from_str(&json(&algo)).unwrap();
            assert_eq!(back, algo, "round trip");
        }
    }

    #[test]
    fn clone_box_preserves_state() {
        for algo in Algorithm::zoo() {
            let mut cc = algo.build(32);
            for _ in 0..10 {
                cc.on_new_ack(1);
            }
            cc.observe_rtt(0.05);
            let snap = cc.clone_box();
            assert_eq!(snap.cwnd(), cc.cwnd(), "{}", cc.name());
            assert_eq!(snap.window(), cc.window());
            assert_eq!(snap.phase(), cc.phase());
        }
    }

    #[test]
    fn every_controller_honors_the_phase_contract() {
        for algo in Algorithm::zoo() {
            let mut cc = algo.build(48);
            for _ in 0..30 {
                cc.on_new_ack(1);
                cc.assert_invariants();
            }
            cc.observe_rtt(0.05);
            cc.enter_fast_recovery(20);
            assert_eq!(cc.phase(), Phase::FastRecovery, "{}", cc.name());
            cc.on_dup_ack_in_recovery();
            cc.on_partial_ack(3);
            assert_eq!(cc.phase(), Phase::FastRecovery, "{}", cc.name());
            cc.assert_invariants();
            cc.exit_fast_recovery();
            assert_ne!(cc.phase(), Phase::FastRecovery, "{}", cc.name());
            cc.on_timeout(16);
            assert_eq!(cc.phase(), Phase::SlowStart, "{}", cc.name());
            assert_eq!(cc.window(), 1, "{}: timeout collapses to 1", cc.name());
            cc.assert_invariants();
        }
    }

    #[test]
    fn loss_cuts_reduce_the_window() {
        for algo in Algorithm::zoo() {
            let mut cc = algo.build(64);
            for _ in 0..40 {
                cc.on_new_ack(1);
            }
            cc.observe_rtt(0.05);
            let before = cc.window();
            cc.enter_fast_recovery(before);
            cc.exit_fast_recovery();
            // Every controller must at least not grow through a loss; the
            // loss-based ones must actually cut. BBR is exempt from the
            // strict cut: it deliberately restores its model target.
            assert!(
                cc.window() <= before,
                "{}: {} -> {} grew through a loss",
                cc.name(),
                before,
                cc.window()
            );
            if !matches!(algo, Algorithm::Bbr) {
                assert!(
                    cc.window() < before || before == 1,
                    "{}: {} -> {} after loss",
                    cc.name(),
                    before,
                    cc.window()
                );
            }
        }
    }
}
