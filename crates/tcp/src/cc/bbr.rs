//! A BBR-style model-based controller.
//!
//! Instead of reacting to loss, BBR builds an explicit model of the path —
//! a windowed maximum of observed delivery rate (`BtlBw`) and a running
//! minimum RTT (`RTprop`) — and sets the window to a gain-cycled multiple
//! of the bandwidth-delay product. This is a deliberately simplified
//! rendition with the two load-bearing states, STARTUP and PROBE_BW:
//!
//! * **STARTUP** doubles the window each round (slow-start-like) until the
//!   bandwidth estimate stops growing for three consecutive rounds;
//! * **PROBE_BW** cycles the BDP gain through `[1.25, 0.75, 1, 1, 1, 1]`,
//!   probing for more bandwidth then draining the queue it created.
//!
//! Losses still route through the Reno event vocabulary — the sender's
//! recovery bookkeeping needs the [`Phase`] machine — but the window cut
//! is mild (0.85·flight) and the model, not the cut, dominates steady
//! state, which is exactly the behavior the HSR measurement studies
//! report for BBR under random loss.

use crate::cwnd::Phase;

use super::CongestionControl;

/// PROBE_BW pacing-gain cycle (probe, drain, cruise ×4).
const GAIN_CYCLE: [f64; 6] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0];

/// Delivery-rate samples kept for the windowed max (about one cycle).
const BW_WINDOW: usize = 10;

/// STARTUP exits after this many rounds without 25 % bandwidth growth.
const FULL_BW_ROUNDS: u32 = 3;

/// Internal state machine (the simplified STARTUP/PROBE_BW subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    ProbeBw,
}

/// The BBR-style controller.
#[derive(Debug, Clone, Copy)]
pub struct Bbr {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    w_m: f64,
    mode: Mode,
    /// Running minimum RTT (RTprop), seconds.
    min_rtt_s: f64,
    /// Ring of recent delivery-rate samples, segments/s.
    bw_samples: [f64; BW_WINDOW],
    bw_len: usize,
    bw_next: usize,
    /// Best bandwidth seen when the current plateau streak started.
    full_bw: f64,
    full_bw_rounds: u32,
    /// ACK accounting to delimit rounds.
    round_acks: f64,
    cycle_idx: usize,
}

impl Bbr {
    /// Creates a BBR controller with initial window 1.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn new(w_m: u32) -> Bbr {
        assert!(w_m > 0, "advertised window must be positive");
        Bbr {
            cwnd: 1.0,
            ssthresh: f64::from(w_m),
            phase: Phase::SlowStart,
            w_m: f64::from(w_m),
            mode: Mode::Startup,
            min_rtt_s: f64::INFINITY,
            bw_samples: [0.0; BW_WINDOW],
            bw_len: 0,
            bw_next: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            round_acks: 0.0,
            cycle_idx: 0,
        }
    }

    /// Windowed maximum of the delivery-rate samples, segments/s.
    fn max_bw(&self) -> f64 {
        self.bw_samples[..self.bw_len]
            .iter()
            .fold(0.0f64, |m, &s| m.max(s))
    }

    /// Bandwidth-delay product in segments, when the model has data.
    fn bdp(&self) -> Option<f64> {
        let bw = self.max_bw();
        if bw > 0.0 && self.min_rtt_s.is_finite() {
            Some(bw * self.min_rtt_s)
        } else {
            None
        }
    }

    /// The model-driven window target for the current gain.
    fn target_cwnd(&self, gain: f64) -> Option<f64> {
        self.bdp().map(|bdp| (gain * bdp).max(4.0))
    }

    /// The phase PROBE_BW/STARTUP map onto outside of loss recovery.
    fn steady_phase(&self) -> Phase {
        match self.mode {
            Mode::Startup => Phase::SlowStart,
            Mode::ProbeBw => Phase::CongestionAvoidance,
        }
    }

    /// Ends a round: advance the gain cycle and the STARTUP plateau check.
    fn on_round_end(&mut self) {
        let bw = self.max_bw();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_rounds = 0;
        } else {
            self.full_bw_rounds += 1;
        }
        match self.mode {
            Mode::Startup => {
                if self.full_bw_rounds >= FULL_BW_ROUNDS && self.bdp().is_some() {
                    self.mode = Mode::ProbeBw;
                    self.cycle_idx = 0;
                    if self.phase != Phase::FastRecovery {
                        self.phase = Phase::CongestionAvoidance;
                    }
                }
            }
            Mode::ProbeBw => {
                self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
            }
        }
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.min(self.w_m.max(1.0) * 2.0).max(1.0);
    }
}

impl CongestionControl for Bbr {
    fn observe_rtt(&mut self, rtt_s: f64) {
        if rtt_s > 0.0 && rtt_s.is_finite() {
            self.min_rtt_s = self.min_rtt_s.min(rtt_s);
            // Delivery-rate proxy: a window's worth of data per RTT.
            let sample = self.cwnd / rtt_s;
            self.bw_samples[self.bw_next] = sample;
            self.bw_next = (self.bw_next + 1) % BW_WINDOW;
            self.bw_len = (self.bw_len + 1).min(BW_WINDOW);
        }
    }

    fn on_new_ack(&mut self, acked: u64) {
        self.round_acks += acked as f64;
        if self.round_acks >= self.cwnd.max(1.0) {
            self.round_acks = 0.0;
            self.on_round_end();
        }
        if self.phase == Phase::FastRecovery {
            return; // callers exit recovery explicitly
        }
        match self.mode {
            Mode::Startup => {
                // Exponential growth while the pipe is not yet full.
                self.cwnd += acked as f64;
            }
            Mode::ProbeBw => {
                let gain = GAIN_CYCLE[self.cycle_idx];
                if let Some(target) = self.target_cwnd(gain) {
                    // Glide toward the model target instead of jumping:
                    // keeps the trajectory smooth across gain steps.
                    let step = (target - self.cwnd) / self.cwnd.max(1.0);
                    self.cwnd += step.clamp(-1.0, 1.0) * acked as f64;
                } else {
                    self.cwnd += acked as f64 / self.cwnd.max(1.0);
                }
            }
        }
        self.clamp();
    }

    fn enter_fast_recovery(&mut self, flight: u64) {
        // Mild loss response: the model, not the cut, sets steady state.
        self.ssthresh = (flight as f64 * 0.85).max(2.0);
        self.cwnd = self.ssthresh + 3.0;
        self.phase = Phase::FastRecovery;
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += 1.0;
        }
    }

    fn exit_fast_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            // Restore the model target when there is one; the loss-based
            // ssthresh is only a floor for the model-less cold start.
            self.cwnd = match self.target_cwnd(1.0) {
                Some(target) => target.max(self.ssthresh).min(self.w_m.max(1.0) * 2.0),
                None => self.ssthresh,
            };
            self.phase = self.steady_phase();
        }
    }

    fn on_partial_ack(&mut self, acked: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = (self.cwnd - acked as f64 + 1.0).max(1.0);
        }
    }

    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        // Restart bandwidth discovery: the model is stale after an RTO.
        self.mode = Mode::Startup;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.round_acks = 0.0;
        self.phase = Phase::SlowStart;
    }

    fn window(&self) -> u64 {
        self.cwnd.min(self.w_m).floor().max(1.0) as u64
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn window_limited(&self) -> bool {
        self.cwnd >= self.w_m
    }

    fn name(&self) -> &'static str {
        "Bbr"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self) {
        assert!(
            self.cwnd.is_finite() && self.cwnd >= 1.0,
            "bbr cwnd invariant violated: cwnd = {}",
            self.cwnd,
        );
        assert!(
            self.ssthresh.is_finite() && self.ssthresh >= 1.0,
            "bbr ssthresh invariant violated: ssthresh = {}",
            self.ssthresh,
        );
        assert!(
            self.min_rtt_s > 0.0,
            "bbr min_rtt invariant violated: {}",
            self.min_rtt_s,
        );
        let ceiling = self.w_m.max(1.0) * 3.0 + 4.0;
        assert!(
            self.cwnd <= ceiling,
            "bbr cwnd {} escaped its {} ceiling",
            self.cwnd,
            ceiling
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `rounds` rounds of ACK-per-segment with a fixed RTT.
    fn drive(b: &mut Bbr, rounds: u32, rtt: f64) {
        for _ in 0..rounds {
            let w = b.window();
            b.observe_rtt(rtt);
            for _ in 0..w {
                b.on_new_ack(1);
            }
        }
    }

    #[test]
    fn startup_grows_exponentially() {
        let mut b = Bbr::new(256);
        drive(&mut b, 4, 0.05);
        assert!(b.cwnd() >= 8.0, "cwnd {} after 4 startup rounds", b.cwnd());
        assert_eq!(b.mode, Mode::Startup);
    }

    #[test]
    fn startup_exits_on_bandwidth_plateau() {
        let mut b = Bbr::new(32);
        // Window soon pegs at w_m = 32, so the cwnd/rtt delivery-rate proxy
        // plateaus and STARTUP must exit within a few rounds.
        drive(&mut b, 20, 0.05);
        assert_eq!(b.mode, Mode::ProbeBw, "plateau must end STARTUP");
        assert_eq!(b.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn probe_bw_tracks_the_bdp() {
        let mut b = Bbr::new(64);
        drive(&mut b, 30, 0.05);
        let bdp = b.bdp().expect("model populated");
        // The window must stay within the gain cycle's envelope of the BDP
        // (plus the glide's one-segment slack).
        assert!(
            b.cwnd() <= 1.25 * bdp + 2.0 && b.cwnd() >= 4.0f64.min(0.75 * bdp - 2.0),
            "cwnd {} vs bdp {}",
            b.cwnd(),
            bdp
        );
    }

    #[test]
    fn loss_cut_is_mild_and_model_restores() {
        let mut b = Bbr::new(64);
        drive(&mut b, 30, 0.05);
        let before = b.cwnd();
        b.enter_fast_recovery(before as u64);
        assert_eq!(b.phase(), Phase::FastRecovery);
        assert!((b.ssthresh() - (before.floor() * 0.85).max(2.0)).abs() < 1e-9);
        b.exit_fast_recovery();
        let target = b.target_cwnd(1.0).unwrap();
        assert!(
            (b.cwnd() - target.max(b.ssthresh())).abs() < 1e-9,
            "model target restored after recovery"
        );
    }

    #[test]
    fn timeout_restarts_discovery() {
        let mut b = Bbr::new(64);
        drive(&mut b, 30, 0.05);
        b.on_timeout(16);
        assert_eq!(b.window(), 1);
        assert_eq!(b.mode, Mode::Startup);
        assert_eq!(b.phase(), Phase::SlowStart);
        b.assert_invariants();
    }

    #[test]
    fn deterministic_event_stream() {
        let run = || {
            let mut b = Bbr::new(48);
            for i in 0..400u64 {
                b.observe_rtt(0.04 + (i % 7) as f64 * 0.001);
                b.on_new_ack(1 + i % 2);
                if i % 113 == 0 {
                    b.enter_fast_recovery(b.window());
                    b.exit_fast_recovery();
                }
            }
            b.cwnd()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
