//! Compound TCP (Tan et al., INFOCOM 2006).
//!
//! Compound adds a scalable *delay window* `dwnd` on top of the standard
//! loss-based `cwnd`; the send window is their sum. While the Vegas-style
//! backlog estimate `diff = win·(RTT − baseRTT)/RTT` stays below the
//! threshold `γ` the path is considered underutilized and `dwnd` grows
//! binomially (`α·win^k` per RTT); once queueing builds, `dwnd` drains
//! gracefully and Compound degenerates to Reno. Under pure random loss —
//! the paper's high-speed-mobility regime — queues never build, so the
//! delay window stays open and Compound recovers lost throughput much
//! like Veno, but with scalable growth. Poojary & Sharma's closed-form
//! Compound approximation under random loss is the model-side reference.
//!
//! Per-RTT update rules are amortized per ACK (divide by the current
//! window), keeping the controller a pure function of its event stream.

use crate::cwnd::Phase;

use super::CongestionControl;

/// The Compound TCP controller.
#[derive(Debug, Clone, Copy)]
pub struct Compound {
    /// Loss-based (Reno) component.
    cwnd: f64,
    /// Delay-based component.
    dwnd: f64,
    ssthresh: f64,
    phase: Phase,
    w_m: f64,
    /// Delay-window growth gain `α`.
    alpha: f64,
    /// Multiplicative decrease factor `β`.
    beta: f64,
    /// Delay-window growth exponent `k`.
    k: f64,
    /// Backlog threshold `γ`, packets.
    gamma: f64,
    base_rtt_s: f64,
    last_rtt_s: f64,
}

impl Compound {
    /// Creates a Compound controller with initial window 1.
    ///
    /// # Panics
    ///
    /// Panics if `w_m` is zero.
    pub fn new(w_m: u32, alpha: f64, beta: f64, k: f64, gamma: f64) -> Compound {
        assert!(w_m > 0, "advertised window must be positive");
        Compound {
            cwnd: 1.0,
            dwnd: 0.0,
            ssthresh: f64::from(w_m),
            phase: Phase::SlowStart,
            w_m: f64::from(w_m),
            alpha,
            beta,
            k,
            gamma,
            base_rtt_s: f64::INFINITY,
            last_rtt_s: f64::INFINITY,
        }
    }

    /// The combined window `cwnd + dwnd`, fractional segments.
    fn win(&self) -> f64 {
        self.cwnd + self.dwnd
    }

    /// Vegas-style backlog estimate `diff`, when RTT data is available.
    fn diff(&self) -> Option<f64> {
        if self.base_rtt_s.is_finite() && self.last_rtt_s.is_finite() && self.last_rtt_s > 0.0 {
            Some(self.win() * (self.last_rtt_s - self.base_rtt_s) / self.last_rtt_s)
        } else {
            None
        }
    }

    /// Keeps the combined window under its `2·W_m` ceiling, draining the
    /// delay component first.
    fn clamp(&mut self) {
        let ceiling = self.w_m.max(1.0) * 2.0;
        if self.win() > ceiling {
            self.dwnd = (ceiling - self.cwnd).max(0.0);
            self.cwnd = self.cwnd.min(ceiling);
        }
    }
}

impl CongestionControl for Compound {
    fn observe_rtt(&mut self, rtt_s: f64) {
        if rtt_s > 0.0 && rtt_s.is_finite() {
            self.base_rtt_s = self.base_rtt_s.min(rtt_s);
            self.last_rtt_s = rtt_s;
        }
    }

    fn on_new_ack(&mut self, acked: u64) {
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += acked as f64;
                if self.win() >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                let w = self.win().max(1.0);
                // Loss-based component: standard Reno additive increase
                // over the *combined* window.
                self.cwnd += 1.0 / w;
                // Delay-based component, per-RTT rules amortized per ACK:
                // grow α·win^k while the queue is empty, drain by the
                // backlog estimate once it builds.
                match self.diff() {
                    Some(d) if d >= self.gamma => {
                        self.dwnd = (self.dwnd - d / w).max(0.0);
                    }
                    _ => {
                        self.dwnd += (self.alpha * w.powf(self.k) - 1.0).max(0.0) / w;
                    }
                }
            }
            Phase::FastRecovery => {
                // Callers exit fast recovery explicitly.
            }
        }
        self.clamp();
    }

    fn enter_fast_recovery(&mut self, flight: u64) {
        // The combined window takes the standard β cut; the delay window
        // is halved outright (Tan et al. §III-C with β = 1/2 gives
        // dwnd' = win·(1−β) − cwnd/2 = dwnd/2).
        self.ssthresh = (flight as f64 * (1.0 - self.beta)).max(2.0);
        self.dwnd *= 1.0 - self.beta;
        self.cwnd = (self.ssthresh - self.dwnd).max(1.0) + 3.0;
        self.phase = Phase::FastRecovery;
    }

    fn on_dup_ack_in_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += 1.0;
        }
    }

    fn exit_fast_recovery(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = (self.ssthresh - self.dwnd).max(1.0);
            self.phase = Phase::CongestionAvoidance;
        }
    }

    fn on_partial_ack(&mut self, acked: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = (self.cwnd - acked as f64 + 1.0).max(1.0);
        }
    }

    fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dwnd = 0.0;
        self.phase = Phase::SlowStart;
    }

    fn window(&self) -> u64 {
        self.win().min(self.w_m).floor().max(1.0) as u64
    }

    fn cwnd(&self) -> f64 {
        self.win()
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn window_limited(&self) -> bool {
        self.win() >= self.w_m
    }

    fn name(&self) -> &'static str {
        "Compound"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(*self)
    }

    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self) {
        assert!(
            self.cwnd.is_finite() && self.cwnd >= 1.0,
            "compound cwnd invariant violated: cwnd = {}",
            self.cwnd,
        );
        assert!(
            self.dwnd.is_finite() && self.dwnd >= 0.0,
            "compound dwnd invariant violated: dwnd = {}",
            self.dwnd,
        );
        assert!(
            self.ssthresh.is_finite() && self.ssthresh >= 1.0,
            "compound ssthresh invariant violated: ssthresh = {}",
            self.ssthresh,
        );
        let ceiling = self.w_m.max(1.0) * 3.0 + 4.0;
        assert!(
            self.win() <= ceiling,
            "compound window {} escaped its {} ceiling",
            self.win(),
            ceiling
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compound(w_m: u32) -> Compound {
        Compound::new(w_m, 0.125, 0.5, 0.75, 30.0)
    }

    #[test]
    fn slow_start_matches_reno() {
        let mut c = compound(64);
        assert_eq!(c.window(), 1);
        c.on_new_ack(1);
        c.on_new_ack(1);
        c.on_new_ack(1);
        assert_eq!(c.window(), 4);
        assert_eq!(c.dwnd, 0.0, "no delay window during slow start");
    }

    #[test]
    fn empty_queue_opens_the_delay_window() {
        let mut c = compound(256);
        c.on_timeout(64); // ssthresh 32, restart
        c.observe_rtt(0.05);
        c.observe_rtt(0.05); // RTT at base: queue empty
        for _ in 0..200 {
            c.on_new_ack(1);
        }
        assert!(c.dwnd > 1.0, "dwnd {} must open while diff < gamma", c.dwnd);
        assert!(
            c.cwnd() > 32.0 + 200.0 / 64.0,
            "combined growth {} must outpace pure Reno",
            c.cwnd()
        );
    }

    #[test]
    fn queue_buildup_drains_the_delay_window() {
        let mut c = compound(256);
        c.on_timeout(64);
        c.observe_rtt(0.05);
        for _ in 0..200 {
            c.on_new_ack(1);
        }
        let opened = c.dwnd;
        assert!(opened > 1.0);
        // Heavy queueing: diff = win·(0.25−0.05)/0.25 = 0.8·win ≫ γ only
        // once the window is large; scale RTT so it clearly exceeds γ.
        c.observe_rtt(0.25);
        for _ in 0..300 {
            c.on_new_ack(1);
        }
        assert!(
            c.dwnd < opened,
            "dwnd must drain under backlog: {} -> {}",
            opened,
            c.dwnd
        );
    }

    #[test]
    fn loss_halves_the_combined_window() {
        let mut c = compound(256);
        c.on_timeout(64);
        c.observe_rtt(0.05);
        for _ in 0..200 {
            c.on_new_ack(1);
        }
        let flight = c.window();
        c.enter_fast_recovery(flight);
        assert_eq!(c.phase(), Phase::FastRecovery);
        assert!((c.ssthresh() - (flight as f64 * 0.5).max(2.0)).abs() < 1e-12);
        c.exit_fast_recovery();
        assert!(
            (c.cwnd() - c.ssthresh()).abs() < 1e-12,
            "combined window deflates to ssthresh"
        );
        c.assert_invariants();
    }

    #[test]
    fn timeout_clears_both_components() {
        let mut c = compound(64);
        c.observe_rtt(0.05);
        for _ in 0..100 {
            c.on_new_ack(1);
        }
        c.on_timeout(20);
        assert_eq!(c.window(), 1);
        assert_eq!(c.dwnd, 0.0);
        assert_eq!(c.phase(), Phase::SlowStart);
    }

    #[test]
    fn deterministic_event_stream() {
        let run = || {
            let mut c = compound(48);
            c.observe_rtt(0.06);
            for i in 0..500u64 {
                c.on_new_ack(1);
                if i % 89 == 0 {
                    c.observe_rtt(0.06 + (i % 3) as f64 * 0.01);
                    c.enter_fast_recovery(c.window());
                    c.on_partial_ack(2);
                    c.exit_fast_recovery();
                }
            }
            c.cwnd()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
