//! The TCP Reno sender.
//!
//! Implements the sender half the paper models: slow start, congestion
//! avoidance, fast retransmit/recovery on triple duplicate ACKs
//! (RFC 5681), and retransmission timeouts with exponential backoff capped
//! at 64·T. During a timeout recovery phase the sender retransmits *only*
//! the lost segment (Fig. 2) — which is exactly why a lossy recovery phase
//! (`q`) is so expensive.
//!
//! Two extensions live behind configuration flags:
//!
//! * `newreno` — NewReno partial-ACK handling (stay in fast recovery until
//!   the `recover` point is acknowledged);
//! * `backup_link` — MPTCP-backup-style *redundant retransmission*: after
//!   a timeout the lost segment is retransmitted on the primary **and** a
//!   backup path, reducing the effective retransmission loss rate from `q`
//!   to roughly `q·q_backup` (paper §V-B).

use crate::cc::CongestionControl;
use crate::cwnd::{Algorithm, Phase};
use crate::metrics::SenderMetrics;
use crate::recovery::{AckDisposition, LossRecovery, Recovery};
use crate::rtt::{Backoff, RttEstimator};
use hsm_simnet::engine::Ctx;
use hsm_simnet::event::EventId;
use hsm_simnet::link::LinkId;
use hsm_simnet::packet::{FlowId, Packet, PacketKind, SeqNo};
use hsm_simnet::prelude::Agent;
use hsm_simnet::time::{SimDuration, SimTime};

/// Sender configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderConfig {
    /// Receiver-advertised window limitation `W_m`, segments.
    pub w_m: u32,
    /// Initial RTO before any RTT sample.
    pub initial_rto: SimDuration,
    /// Lower RTO bound.
    pub min_rto: SimDuration,
    /// Upper RTO bound.
    pub max_rto: SimDuration,
    /// Enable NewReno partial-ACK handling.
    pub newreno: bool,
    /// Congestion-control algorithm (any member of the [`crate::cc`] zoo).
    pub algorithm: Algorithm,
    /// F-RTO-style spurious-RTO response: when the first ACK after a
    /// timeout covers more than the single retransmitted segment, the
    /// original in-flight data must have arrived — the timeout was
    /// spurious. Undo the congestion-window collapse and skip the
    /// go-back-N resends. A future-work mitigation for the paper's
    /// spurious-timeout problem (exercised by the `ext_undo` experiment).
    pub spurious_rto_undo: bool,
    /// Loss-recovery countermeasure (any member of the [`crate::recovery`]
    /// zoo). [`Recovery::None`] reproduces the plain RFC 6298 recovery the
    /// paper measures.
    pub recovery: Recovery,
    /// Stop sending new data after this long (the flow keeps draining).
    pub stop_after: Option<SimDuration>,
    /// Stop after this many distinct segments have been sent.
    pub max_segments: Option<u64>,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            w_m: 64,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            newreno: false,
            algorithm: Algorithm::Reno,
            spurious_rto_undo: false,
            recovery: Recovery::None,
            stop_after: None,
            max_segments: None,
        }
    }
}

const TAG_STOP: u64 = 1;
const TAG_RTO_BASE: u64 = 1_000;

/// Saved state for the F-RTO-style spurious-RTO undo.
#[derive(Debug)]
struct RtoUndo {
    cwnd: Box<dyn CongestionControl>,
    armed_snd_una: u64,
}

/// The Reno sender agent with an infinite backlog of data.
#[derive(Debug)]
pub struct RenoSender {
    flow: FlowId,
    /// Link carrying data to the receiver. Set by wiring code.
    pub data_link: LinkId,
    /// Optional backup link for redundant timeout retransmission (§V-B).
    pub backup_link: Option<LinkId>,
    /// Whether `stop_after` halts the whole engine (true for single-flow
    /// rigs). Multi-flow wirings set this false so one sender's stop does
    /// not truncate its siblings.
    pub halt_engine_on_stop: bool,
    cfg: SenderConfig,
    cwnd: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    backoff: Backoff,
    /// Next sequence number to (re)transmit. After a timeout this is reset
    /// to just above `snd_una` (go-back-N): segments between `snd_nxt` and
    /// `high_water` are presumed lost and resent as the window reopens.
    snd_nxt: u64,
    /// Highest sequence number ever sent + 1 (new data starts here).
    high_water: u64,
    snd_una: u64,
    dup_acks: u32,
    recover: u64,
    rto_timer: Option<EventId>,
    rto_gen: u64,
    timing: Option<(u64, SimTime)>,
    undo: Option<RtoUndo>,
    /// The pluggable loss-recovery countermeasure (§V).
    recovery: Box<dyn LossRecovery>,
    /// Congestion controller snapshot taken when the F-RTO strategy arms;
    /// restored on a spurious verdict, discarded on a genuine one.
    frto_cwnd: Option<Box<dyn CongestionControl>>,
    stopped: bool,
    /// Ground-truth counters and logs.
    pub metrics: SenderMetrics,
}

impl RenoSender {
    /// Creates a sender for `flow`; `data_link` may be a placeholder fixed
    /// up by wiring code before the simulation starts.
    pub fn new(flow: FlowId, data_link: LinkId, cfg: SenderConfig) -> RenoSender {
        RenoSender {
            flow,
            data_link,
            backup_link: None,
            halt_engine_on_stop: true,
            cwnd: cfg.algorithm.build(cfg.w_m),
            rtt: RttEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto),
            backoff: Backoff::new(),
            cfg,
            snd_nxt: 0,
            high_water: 0,
            snd_una: 0,
            dup_acks: 0,
            recover: 0,
            rto_timer: None,
            rto_gen: 0,
            timing: None,
            undo: None,
            recovery: cfg.recovery.build(),
            frto_cwnd: None,
            stopped: false,
            metrics: SenderMetrics::default(),
        }
    }

    /// Segments in flight (standard `pipe` approximation): sent since the
    /// last (re)transmission point and not yet acknowledged.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Lowest unacknowledged sequence number.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// The congestion controller (for inspection).
    pub fn cwnd(&self) -> &dyn CongestionControl {
        self.cwnd.as_ref()
    }

    /// The RTT estimator (for inspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// The backoff ladder (for inspection).
    pub fn backoff(&self) -> &Backoff {
        &self.backoff
    }

    fn log(&mut self, now: SimTime) {
        let (c, w, p) = (self.cwnd.cwnd(), self.cwnd.window(), self.cwnd.phase());
        self.metrics.log_cwnd(now, c, w, p);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.rto_timer.take() {
            ctx.cancel_timer(t);
        }
        self.rto_gen += 1;
        let delay = self.backoff.apply(self.rtt.rto());
        self.rto_timer = Some(ctx.schedule_in(delay, TAG_RTO_BASE + self.rto_gen));
    }

    fn disarm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.rto_timer.take() {
            ctx.cancel_timer(t);
        }
        self.rto_gen += 1; // invalidate any in-flight firing
    }

    fn may_send_new(&self) -> bool {
        if self.stopped {
            return false;
        }
        if let Some(max) = self.cfg.max_segments {
            if self.high_water >= max {
                return false;
            }
        }
        true
    }

    fn send_available(&mut self, ctx: &mut Ctx<'_>) {
        let win = self.cwnd.window();
        while self.flight() < win {
            let is_resend = self.snd_nxt < self.high_water;
            if !is_resend && !self.may_send_new() {
                break;
            }
            let seq = self.snd_nxt;
            ctx.send(
                self.data_link,
                Packet::data(self.flow, SeqNo(seq), is_resend),
            );
            self.metrics.segments_sent += 1;
            if is_resend {
                self.metrics.retransmissions += 1;
                // Backup mode duplicates the whole recovery phase: every
                // go-back-N resend below the recover point rides the backup
                // path too, not just the RTO-triggered segment (§V-B).
                if seq < self.recover {
                    if let Some(backup) = self.backup_link {
                        ctx.send(
                            backup,
                            Packet::data(self.flow, SeqNo(seq), true).with_tag(1),
                        );
                        self.metrics.segments_sent += 1;
                    }
                }
                if self.timing.is_some_and(|(t_seq, _)| t_seq == seq) {
                    self.timing = None; // Karn
                }
            } else {
                if self.timing.is_none() {
                    self.timing = Some((seq, ctx.now()));
                }
                self.metrics.max_seq_sent = self.metrics.max_seq_sent.max(seq);
                self.high_water = seq + 1;
            }
            self.snd_nxt += 1;
        }
        if self.flight() > 0 && self.rto_timer.is_none() {
            self.arm_rto(ctx);
        }
    }

    /// Sends up to `n` previously-unsent segments regardless of the
    /// congestion window (RFC 5682 step 2b F-RTO probes). Returns how many
    /// went out; `snd_nxt` must sit at `high_water` on entry.
    fn send_probe_segments(&mut self, ctx: &mut Ctx<'_>, n: u64) -> u64 {
        debug_assert_eq!(self.snd_nxt, self.high_water);
        let mut sent = 0;
        for _ in 0..n {
            if !self.may_send_new() {
                break;
            }
            let seq = self.high_water;
            ctx.send(self.data_link, Packet::data(self.flow, SeqNo(seq), false));
            self.metrics.segments_sent += 1;
            if self.timing.is_none() {
                self.timing = Some((seq, ctx.now()));
            }
            self.metrics.max_seq_sent = self.metrics.max_seq_sent.max(seq);
            self.high_water = seq + 1;
            self.snd_nxt = self.high_water;
            sent += 1;
        }
        sent
    }

    fn retransmit(&mut self, ctx: &mut Ctx<'_>, seq: u64, redundant: bool) {
        ctx.send(self.data_link, Packet::data(self.flow, SeqNo(seq), true));
        self.metrics.segments_sent += 1;
        self.metrics.retransmissions += 1;
        if redundant {
            if let Some(backup) = self.backup_link {
                ctx.send(
                    backup,
                    Packet::data(self.flow, SeqNo(seq), true).with_tag(1),
                );
                self.metrics.segments_sent += 1;
            }
        }
        // Karn: a retransmitted segment can no longer give a clean sample.
        if self.timing.is_some_and(|(t_seq, _)| t_seq == seq) {
            self.timing = None;
        }
    }

    /// Cross-layer invariant sweep, run after every ACK and timeout in
    /// debug/test builds: sequence pointers stay ordered (`snd_una` ≤
    /// `snd_nxt` ≤ `high_water`, `recover` never beyond data actually
    /// sent), the congestion window stays in bounds, and the metrics
    /// ledger stays consistent.
    #[cfg(any(debug_assertions, test))]
    fn assert_invariants(&self) {
        assert!(
            self.snd_una <= self.snd_nxt,
            "sequence invariant violated: snd_una {} > snd_nxt {}",
            self.snd_una,
            self.snd_nxt,
        );
        assert!(
            self.snd_nxt <= self.high_water,
            "sequence invariant violated: snd_nxt {} > high_water {}",
            self.snd_nxt,
            self.high_water,
        );
        assert!(
            self.recover <= self.high_water,
            "sequence invariant violated: recover {} > high_water {}",
            self.recover,
            self.high_water,
        );
        self.cwnd.assert_invariants();
        self.metrics.assert_invariants();
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, cum: u64) {
        self.metrics.acks_received += 1;
        self.recovery.observe_ack(ctx.now());
        if cum > self.snd_una {
            let disposition = self.recovery.classify_ack(cum, true);
            let acked = cum - self.snd_una;
            self.snd_una = cum;
            // The receiver may have buffered out-of-order data: never
            // retransmit below the cumulative point.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.backoff.reset();
            // F-RTO-style undo, evaluated on the first new ACK after an
            // RTO: if it covers more than the one retransmitted segment,
            // the original in-flight data must have arrived — the timeout
            // was spurious.
            if let Some(undo) = self.undo.take() {
                if cum > undo.armed_snd_una + 1 {
                    self.cwnd = undo.cwnd;
                    // The old in-flight data was not lost: skip go-back-N.
                    self.snd_nxt = self.high_water.max(self.snd_una);
                    self.metrics.spurious_rto_undone += 1;
                }
            }
            match disposition {
                AckDisposition::SendNewData => {
                    // RFC 5682 step 2b: defer the recovery decision —
                    // skip go-back-N for now (the old window may still be
                    // in flight) and probe with up to two new segments.
                    // Window updates wait for the verdict.
                    self.snd_nxt = self.high_water.max(self.snd_una);
                    self.dup_acks = 0;
                    let sent = self.send_probe_segments(ctx, 2);
                    self.metrics.frto_probes += sent;
                    if self.flight() == 0 {
                        self.disarm_rto(ctx);
                    } else {
                        self.arm_rto(ctx);
                    }
                    self.log(ctx.now());
                    #[cfg(any(debug_assertions, test))]
                    self.assert_invariants();
                    return;
                }
                AckDisposition::SpuriousUndo => {
                    // RFC 5682 step 3b: the probe round advanced too — the
                    // timeout was spurious. Restore the pre-collapse
                    // window and keep sending new data.
                    if let Some(saved) = self.frto_cwnd.take() {
                        self.cwnd = saved;
                        self.snd_nxt = self.high_water.max(self.snd_una);
                        self.metrics.spurious_rto_undone += 1;
                    }
                }
                AckDisposition::Conventional | AckDisposition::GenuineLoss => {
                    // Any pending probe resolved conventionally: the saved
                    // window no longer applies.
                    self.frto_cwnd = None;
                }
            }
            if let Some((seq, t0)) = self.timing {
                if cum > seq {
                    let sample = ctx.now().saturating_since(t0);
                    self.rtt.sample(sample);
                    self.cwnd.observe_rtt(sample.as_secs_f64());
                    self.timing = None;
                }
            }
            if self.cwnd.phase() == Phase::FastRecovery {
                if self.cfg.newreno && cum < self.recover {
                    // Partial ACK: retransmit the next hole, stay in FR.
                    self.cwnd.on_partial_ack(acked);
                    let seq = self.snd_una;
                    self.retransmit(ctx, seq, false);
                    self.arm_rto(ctx);
                } else {
                    self.cwnd.exit_fast_recovery();
                    self.dup_acks = 0;
                }
            } else {
                self.cwnd.on_new_ack(acked);
                self.dup_acks = 0;
            }
            if self.flight() == 0 {
                self.disarm_rto(ctx);
            } else {
                self.arm_rto(ctx);
            }
            self.log(ctx.now());
            self.send_available(ctx);
        } else if cum == self.snd_una && self.flight() > 0 {
            let disposition = self.recovery.classify_ack(cum, false);
            self.dup_acks += 1;
            self.metrics.dup_acks_received += 1;
            if disposition == AckDisposition::GenuineLoss {
                // RFC 5682 step 3a: a duplicate ACK during the probe round
                // — the loss was genuine. Discard the saved window and
                // resume conventional go-back-N from the cumulative point.
                self.frto_cwnd = None;
                self.dup_acks = 0;
                self.snd_nxt = self.snd_una;
                self.send_available(ctx);
                self.log(ctx.now());
                #[cfg(any(debug_assertions, test))]
                self.assert_invariants();
                return;
            }
            if disposition == AckDisposition::Conventional {
                // A dup ACK straight after the RTO retransmission reverts
                // F-RTO (RFC 5682 step 2a); drop any saved window.
                self.frto_cwnd = None;
            }
            match self.cwnd.phase() {
                Phase::FastRecovery => {
                    self.cwnd.on_dup_ack_in_recovery();
                    self.send_available(ctx);
                }
                // RFC 6582 "avoiding multiple fast retransmits": duplicate
                // ACKs below `recover` are echoes of the go-back-N resends
                // after a timeout (or of redundant backup-path copies), not
                // evidence of a new loss — entering fast recovery on them
                // halves cwnd spuriously.
                _ if self.dup_acks == 3 && cum >= self.recover => {
                    self.recover = self.high_water;
                    let flight = self.flight();
                    self.cwnd.enter_fast_recovery(flight);
                    self.metrics.fast_retransmits.push(ctx.now());
                    let seq = self.snd_una;
                    self.retransmit(ctx, seq, false);
                    self.arm_rto(ctx);
                    self.log(ctx.now());
                }
                _ => {}
            }
        }
        // cum < snd_una: stale/reordered ACK; ignore.
        #[cfg(any(debug_assertions, test))]
        self.assert_invariants();
    }

    fn on_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.flight() == 0 {
            self.rto_timer = None;
            return;
        }
        let expired = self.backoff.apply(self.rtt.rto());
        self.metrics.timeouts.push(ctx.now());
        self.metrics.rto_at_timeout.push(expired.as_secs_f64());
        let first = self.backoff.consecutive_timeouts() == 0;
        let plan = self
            .recovery
            .plan_timeout(ctx.now(), first, self.snd_una, self.high_water);
        if plan.arm_frto {
            // Snapshot the pre-collapse controller; a spurious verdict
            // restores it. A ladder keeps the first rung's snapshot.
            if self.frto_cwnd.is_none() {
                self.frto_cwnd = Some(self.cwnd.clone_box());
            }
        } else {
            // Either no F-RTO strategy, or the RFC's "the retransmission
            // is lost too" repeat-RTO path: the loss is genuine.
            self.frto_cwnd = None;
        }
        // Arm the undo only at the *first* rung of a ladder, so the saved
        // window is the pre-collapse one; it is consumed (fired or
        // discarded) by the first new ACK either way. The F-RTO strategy
        // supersedes it (double-restoring would count one timeout as two
        // spurious undos).
        if self.cfg.spurious_rto_undo && !plan.arm_frto && self.undo.is_none() {
            self.undo = Some(RtoUndo {
                cwnd: self.cwnd.clone_box(),
                armed_snd_una: self.snd_una,
            });
        }
        let flight = self.flight();
        self.cwnd.on_timeout(flight);
        if plan.skip_backoff {
            // ACK-robust RTO: the inter-arrival history says burst delay,
            // not loss — re-arm at the same value and demand corroborating
            // silence before the exponential ladder starts.
            self.metrics.backoff_skipped += 1;
        } else {
            self.backoff.on_timeout();
        }
        self.dup_acks = 0;
        self.recover = self.high_water;
        self.rto_timer = None;
        let seq = self.snd_una;
        // Timeout recovery: retransmit only the lost segment (Fig. 2),
        // redundantly over the backup path when configured (§V-B). All
        // other in-flight data is presumed lost: go-back-N from here.
        self.retransmit(ctx, seq, true);
        self.snd_nxt = seq + 1;
        if plan.retransmit_successor && seq + 1 < self.high_water {
            // Redundant retransmit-on-RTO: the successor rides along,
            // giving the receiver two chances to produce an advancing ACK.
            self.retransmit(ctx, seq + 1, true);
            self.snd_nxt = seq + 2;
        }
        self.arm_rto(ctx);
        self.log(ctx.now());
        #[cfg(any(debug_assertions, test))]
        self.assert_invariants();
    }
}

impl Agent for RenoSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(after) = self.cfg.stop_after {
            ctx.schedule_in(after, TAG_STOP);
        }
        self.log(ctx.now());
        self.send_available(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let PacketKind::Ack { cum, .. } = packet.kind {
            self.on_ack(ctx, cum.as_u64());
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            TAG_STOP => {
                self.stopped = true;
                self.disarm_rto(ctx);
                if self.halt_engine_on_stop {
                    ctx.stop();
                }
            }
            t if t == TAG_RTO_BASE + self.rto_gen => self.on_rto(ctx),
            _ => { /* stale RTO generation: ignore */ }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{Receiver, ReceiverConfig};
    use hsm_simnet::loss::{Bernoulli, ChannelLoss, Outage};
    use hsm_simnet::observer::VecRecorder;
    use hsm_simnet::prelude::*;

    struct World {
        eng: Engine,
        tx: AgentId,
        rx: AgentId,
        down: LinkId,
        up: LinkId,
        rec: VecRecorder,
    }

    fn world(
        seed: u64,
        scfg: SenderConfig,
        rcfg: ReceiverConfig,
        down_loss: f64,
        up_loss: f64,
    ) -> World {
        let mut eng = Engine::new(seed);
        let tx = eng.add_agent(Box::new(RenoSender::new(
            FlowId(0),
            LinkId::from_raw(0),
            scfg,
        )));
        let rx = eng.add_agent(Box::new(Receiver::new(
            FlowId(0),
            LinkId::from_raw(0),
            rcfg,
        )));
        let down = eng.add_link(
            LinkSpec::new(rx, "downlink")
                .bandwidth_bps(50_000_000)
                .prop_delay(SimDuration::from_millis(25))
                .loss(ChannelLoss::new(Box::new(Bernoulli::new(down_loss)))),
        );
        let up = eng.add_link(
            LinkSpec::new(tx, "uplink")
                .bandwidth_bps(50_000_000)
                .prop_delay(SimDuration::from_millis(25))
                .loss(ChannelLoss::new(Box::new(Bernoulli::new(up_loss)))),
        );
        eng.agent_mut::<RenoSender>(tx).unwrap().data_link = down;
        eng.agent_mut::<Receiver>(rx).unwrap().uplink = up;
        let rec = VecRecorder::new();
        eng.add_recorder(rec.clone());
        World {
            eng,
            tx,
            rx,
            down,
            up,
            rec,
        }
    }

    #[test]
    fn lossless_flow_delivers_everything_in_order() {
        let mut w = world(
            1,
            SenderConfig {
                max_segments: Some(200),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.run_until_idle();
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(200));
        assert_eq!(rx.metrics.duplicate_payloads, 0);
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert_eq!(tx.metrics.retransmissions, 0);
        assert_eq!(tx.metrics.timeout_count(), 0);
        assert_eq!(tx.flight(), 0);
    }

    #[test]
    fn slow_start_grows_window_exponentially() {
        let mut w = world(
            2,
            SenderConfig {
                max_segments: Some(1000),
                ..Default::default()
            },
            ReceiverConfig {
                b: 1,
                delack_timeout: SimDuration::from_millis(100),
                adaptive: None,
            },
            0.0,
            0.0,
        );
        w.eng.run_until(SimTime::from_millis(400));
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        // After several RTTs (~55 ms each) of lossless slow start the
        // window must have grown well beyond the initial 1.
        assert!(tx.cwnd().cwnd() > 16.0, "cwnd {}", tx.cwnd().cwnd());
        assert_eq!(tx.metrics.timeout_count(), 0);
    }

    #[test]
    fn single_data_loss_triggers_fast_retransmit_not_timeout() {
        let mut w = world(
            3,
            SenderConfig {
                max_segments: Some(400),
                ..Default::default()
            },
            ReceiverConfig {
                b: 1,
                delack_timeout: SimDuration::from_millis(100),
                adaptive: None,
            },
            0.0,
            0.0,
        );
        // Kill exactly one data packet mid-flow with a surgical outage.
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(300),
            SimTime::from_millis(302),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(tx.metrics.retransmissions >= 1);
        assert!(
            !tx.metrics.fast_retransmits.is_empty(),
            "expected fast retransmit; timeouts={:?}",
            tx.metrics.timeouts
        );
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(400), "flow completes");
    }

    #[test]
    fn full_window_loss_causes_timeout_and_backoff() {
        let mut w = world(
            4,
            SenderConfig {
                max_segments: Some(400),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        // A long outage swallows a whole window: only RTO can recover.
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(280),
            SimTime::from_millis(1200),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(
            tx.metrics.timeout_count() >= 1,
            "timeouts: {:?}",
            tx.metrics.timeouts
        );
        // Recovery finished: all 400 segments delivered.
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(400));
    }

    #[test]
    fn consecutive_timeouts_double_the_timer() {
        let mut w = world(
            5,
            SenderConfig {
                max_segments: Some(50),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        // Outage long enough for several backoff rungs.
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(260),
            SimTime::from_millis(4_000),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        let rtos = &tx.metrics.rto_at_timeout;
        assert!(rtos.len() >= 3, "rtos: {rtos:?}");
        for pair in rtos.windows(2) {
            assert!(pair[1] >= pair[0] * 1.9, "backoff not doubling: {rtos:?}");
        }
    }

    #[test]
    fn ack_burst_loss_causes_spurious_timeout() {
        // No data loss at all; uplink dies completely for a while. The
        // sender must time out spuriously and the receiver must see
        // duplicate payloads (paper Fig. 5).
        let mut w = world(
            6,
            SenderConfig {
                max_segments: Some(300),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.link_mut(w.up).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(250),
            SimTime::from_millis(900),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(
            tx.metrics.timeout_count() >= 1,
            "no timeout despite ACK burst loss"
        );
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert!(
            rx.metrics.duplicate_payloads >= 1,
            "spurious retransmission must duplicate payloads"
        );
        assert_eq!(rx.next_expected(), SeqNo(300));
    }

    #[test]
    fn flow_survives_sustained_random_loss() {
        let mut w = world(
            7,
            SenderConfig {
                max_segments: Some(2_000),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.02,
            0.01,
        );
        w.eng.run_until(SimTime::from_secs(600));
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(
            rx.next_expected(),
            SeqNo(2_000),
            "flow must complete under loss"
        );
    }

    #[test]
    fn stop_after_halts_the_flow() {
        let mut w = world(
            8,
            SenderConfig {
                stop_after: Some(SimDuration::from_secs(2)),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.run_until_idle();
        assert!(w.eng.stopped());
        assert!(w.eng.now() >= SimTime::from_secs(2));
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(tx.metrics.segments_sent > 100, "should stream for 2 s");
    }

    #[test]
    fn window_respects_advertised_limit() {
        let mut w = world(
            9,
            SenderConfig {
                w_m: 4,
                max_segments: Some(500),
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(tx.metrics.cwnd_log.iter().all(|s| s.window <= 4));
    }

    #[test]
    fn spurious_rto_undo_restores_the_window() {
        // A pure ACK blackout: the timeout is spurious. The original
        // window's data keeps arriving, so the first ACK after the blackout
        // arrives almost immediately after the (needless) retransmission.
        let run = |undo: bool| {
            let mut w = world(
                12,
                SenderConfig {
                    max_segments: Some(1_000),
                    spurious_rto_undo: undo,
                    ..Default::default()
                },
                ReceiverConfig::default(),
                0.0,
                0.0,
            );
            w.eng.link_mut(w.up).loss.set_outage(Some(Outage::new(
                SimTime::from_millis(400),
                SimTime::from_millis(1_100),
                1.0,
            )));
            w.eng.run_until_idle();
            let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
            (
                tx.metrics.spurious_rto_undone,
                tx.metrics.retransmissions,
                w.eng.now(),
            )
        };
        let (undone, retx_undo, finish_undo) = run(true);
        let (baseline_undone, retx_plain, finish_plain) = run(false);
        assert_eq!(baseline_undone, 0);
        assert!(
            undone >= 1,
            "the blackout timeout must be detected as spurious"
        );
        assert!(
            retx_undo <= retx_plain,
            "undo must not add retransmissions ({retx_undo} vs {retx_plain})"
        );
        // Undoing the window collapse can only help completion time.
        assert!(
            finish_undo <= finish_plain,
            "undo must not slow the flow ({finish_undo} vs {finish_plain})"
        );
    }

    #[test]
    fn genuine_timeouts_are_not_undone() {
        // A real downlink outage: the data is genuinely lost, so the first
        // ACK after recovery arrives a full backed-off RTO later — far
        // past the undo deadline.
        let mut w = world(
            13,
            SenderConfig {
                max_segments: Some(400),
                spurious_rto_undo: true,
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(280),
            SimTime::from_millis(1_500),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(tx.metrics.timeout_count() >= 1);
        assert_eq!(
            tx.metrics.spurious_rto_undone, 0,
            "a genuine loss must not trigger the undo"
        );
    }

    /// A delayed-but-not-lost ACK-burst storm: `episodes` delay spikes on
    /// the uplink (paper Fig. 5 — the ACKs all arrive, late and bunched).
    fn flap_storm(episodes: &[(u64, u64, u64)]) -> hsm_simnet::chaos::StormPlan {
        use hsm_simnet::chaos::{StormEpisode, StormKind, StormPlan};
        StormPlan {
            episodes: episodes
                .iter()
                .map(|&(at, dur, extra)| StormEpisode {
                    at: SimTime::from_millis(at),
                    duration: SimDuration::from_millis(dur),
                    kind: StormKind::Flap(SimDuration::from_millis(extra)),
                })
                .collect(),
        }
    }

    fn flap_world(seed: u64, recovery: crate::recovery::Recovery) -> World {
        let mut w = world(
            seed,
            SenderConfig {
                max_segments: Some(600),
                recovery,
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        let up = w.up;
        let plan = flap_storm(&[(400, 800, 800), (2_500, 800, 800)]);
        w.eng
            .add_agent(Box::new(hsm_simnet::chaos::StormInjector::new(up, plan)));
        w
    }

    #[test]
    fn frto_undoes_the_delay_storm_timeout_and_beats_no_recovery() {
        use crate::recovery::Recovery;
        let run = |recovery| {
            let mut w = flap_world(17, recovery);
            w.eng.run_until_idle();
            let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
            (
                tx.metrics.spurious_rto_undone,
                tx.metrics.frto_probes,
                tx.metrics.retransmissions,
                w.eng.now(),
            )
        };
        let (undone, probes, retx, finish) = run(Recovery::Frto);
        let (undone_none, _, retx_none, finish_none) = run(Recovery::None);
        assert_eq!(undone_none, 0);
        assert!(undone >= 1, "delay storm must be detected as spurious");
        assert!(probes >= 1, "F-RTO must have probed with new data");
        assert!(
            retx <= retx_none,
            "F-RTO must not retransmit more than plain recovery ({retx} vs {retx_none})"
        );
        assert!(
            finish <= finish_none,
            "undoing a spurious collapse must not slow the flow ({finish:?} vs {finish_none:?})"
        );
    }

    #[test]
    fn frto_leaves_genuine_loss_ladders_untouched() {
        use crate::recovery::Recovery;
        // Same genuine whole-window loss as
        // `consecutive_timeouts_double_the_timer`, now with F-RTO enabled:
        // the ladder must still escalate (the RFC's "retransmission is
        // lost too" path disengages the probe) and nothing may be undone.
        let mut w = world(
            5,
            SenderConfig {
                max_segments: Some(50),
                recovery: Recovery::Frto,
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(260),
            SimTime::from_millis(4_000),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert_eq!(tx.metrics.spurious_rto_undone, 0);
        let rtos = &tx.metrics.rto_at_timeout;
        assert!(rtos.len() >= 3, "rtos: {rtos:?}");
        for pair in rtos.windows(2) {
            assert!(pair[1] >= pair[0] * 1.9, "backoff not doubling: {rtos:?}");
        }
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(50), "flow still completes");
    }

    #[test]
    fn frto_spurious_undo_resets_the_backoff_ladder() {
        use crate::recovery::Recovery;
        let mut w = flap_world(18, Recovery::Frto);
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(tx.metrics.spurious_rto_undone >= 1);
        // The advancing ACKs that resolved the (spurious) episodes reset
        // the ladder: the flow must end with no half-climbed backoff.
        assert_eq!(tx.backoff().consecutive_timeouts(), 0);
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(600));
    }

    #[test]
    fn redundant_rto_rides_a_successor_through_timeout_recovery() {
        use crate::recovery::Recovery;
        let run = |recovery| {
            let mut w = world(
                4,
                SenderConfig {
                    max_segments: Some(400),
                    recovery,
                    ..Default::default()
                },
                ReceiverConfig::default(),
                0.0,
                0.0,
            );
            w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
                SimTime::from_millis(280),
                SimTime::from_millis(1_200),
                1.0,
            )));
            w.eng.run_until_idle();
            let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
            let timeouts = tx.metrics.timeout_count();
            let retx = tx.metrics.retransmissions;
            let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
            assert_eq!(rx.next_expected(), SeqNo(400), "flow completes");
            (timeouts, retx)
        };
        let (timeouts, retx) = run(Recovery::RedundantRto);
        let (_, retx_none) = run(Recovery::None);
        assert!(timeouts >= 1);
        // The paired successor is a real extra transmission.
        assert!(
            retx > retx_none,
            "successor retransmissions must show up in the ledger ({retx} vs {retx_none})"
        );
    }

    #[test]
    fn ack_robust_withholds_backoff_only_under_the_storm_signature() {
        use crate::recovery::Recovery;
        // Two delay-spike episodes: the first seeds the burst-delay
        // signature in the inter-arrival history, the second's timeout
        // withholds its backoff.
        let mut w = flap_world(19, Recovery::AckRobust);
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert!(
            tx.metrics.backoff_skipped >= 1,
            "storm signature must withhold at least one backoff (timeouts: {})",
            tx.metrics.timeout_count()
        );
        assert!(tx.metrics.backoff_skipped as usize <= tx.metrics.timeout_count());
        let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
        assert_eq!(rx.next_expected(), SeqNo(600));

        // A genuine whole-window loss shows a steady (not bursty) ACK
        // clock: nothing may be withheld, the ladder doubles as ever.
        let mut w = world(
            5,
            SenderConfig {
                max_segments: Some(50),
                recovery: Recovery::AckRobust,
                ..Default::default()
            },
            ReceiverConfig::default(),
            0.0,
            0.0,
        );
        w.eng.link_mut(w.down).loss.set_outage(Some(Outage::new(
            SimTime::from_millis(260),
            SimTime::from_millis(4_000),
            1.0,
        )));
        w.eng.run_until_idle();
        let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
        assert_eq!(tx.metrics.backoff_skipped, 0);
        let rtos = &tx.metrics.rto_at_timeout;
        for pair in rtos.windows(2) {
            assert!(pair[1] >= pair[0] * 1.9, "backoff not doubling: {rtos:?}");
        }
    }

    #[test]
    fn karn_rule_no_sample_from_the_ambiguous_retransmit() {
        use crate::recovery::Recovery;
        // A single segment whose ACKs keep dying: every ACK the sender
        // finally gets acknowledges a retransmitted segment, so Karn's
        // rule forbids every RTT sample — with or without F-RTO armed.
        for recovery in [Recovery::None, Recovery::Frto] {
            let mut w = world(
                21,
                SenderConfig {
                    max_segments: Some(1),
                    recovery,
                    ..Default::default()
                },
                ReceiverConfig::default(),
                0.0,
                0.0,
            );
            w.eng.link_mut(w.up).loss.set_outage(Some(Outage::new(
                SimTime::from_millis(20),
                SimTime::from_millis(1_500),
                1.0,
            )));
            w.eng.run_until_idle();
            let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
            assert!(tx.metrics.timeout_count() >= 1, "{recovery:?}");
            assert_eq!(
                tx.rtt().samples(),
                0,
                "{recovery:?}: ambiguous retransmit must not be RTT-sampled"
            );
            let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
            assert_eq!(rx.next_expected(), SeqNo(1));
        }
    }

    #[test]
    fn default_recovery_is_none_and_composes_with_the_cc_zoo() {
        use crate::recovery::Recovery;
        assert_eq!(SenderConfig::default().recovery, Recovery::None);
        // Every (recovery × cc) pair must complete a lossy flow.
        for recovery in Recovery::ALL {
            for algorithm in Algorithm::zoo() {
                let mut w = world(
                    23,
                    SenderConfig {
                        max_segments: Some(120),
                        recovery,
                        algorithm,
                        ..Default::default()
                    },
                    ReceiverConfig::default(),
                    0.01,
                    0.01,
                );
                w.eng.run_until(SimTime::from_secs(120));
                let rx = w.eng.agent_mut::<Receiver>(w.rx).unwrap();
                assert_eq!(
                    rx.next_expected(),
                    SeqNo(120),
                    "{recovery:?} × {algorithm:?} must complete"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut w = world(
                seed,
                SenderConfig {
                    max_segments: Some(500),
                    ..Default::default()
                },
                ReceiverConfig::default(),
                0.01,
                0.005,
            );
            w.eng.run_until_idle();
            let tx = w.eng.agent_mut::<RenoSender>(w.tx).unwrap();
            (
                tx.metrics.segments_sent,
                tx.metrics.timeouts.clone(),
                w.rec.len(),
            )
        };
        assert_eq!(run(42), run(42));
    }
}
