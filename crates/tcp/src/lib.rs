//! # hsm-tcp — TCP Reno / NewReno / MPTCP over the hsm simulator
//!
//! A from-scratch, segment-granular TCP implementation providing exactly
//! the mechanisms the paper's model reasons about:
//!
//! * [`rtt`] — Jacobson/Karn RTT estimation and the exponential-backoff
//!   retransmission timer capped at 64·T;
//! * [`cwnd`] — the Reno congestion state machine (slow start, congestion
//!   avoidance, fast recovery) with the `W_m` advertised-window cap;
//! * [`reno`] — the sender agent (fast retransmit on triple dup-ACKs,
//!   lone-segment retransmission during timeout recovery, optional NewReno
//!   partial-ACK handling, optional redundant backup-path retransmission);
//! * [`recovery`] — the §V loss-recovery countermeasure zoo (redundant
//!   retransmit-on-RTO, RFC 5682 F-RTO spurious-timeout undo, and an
//!   ACK-loss-robust backoff), pluggable like the [`cc`] zoo;
//! * [`receiver`] — cumulative + delayed ACKs (`b`), reordering buffer,
//!   duplicate-payload accounting (spurious-timeout ground truth);
//! * [`connection`] — one-call wiring of a full measurement rig
//!   (sender ↔ cellular path ↔ receiver, optional 300 km/h mobility);
//! * [`mptcp`] — duplex-mode aggregation and backup-mode redundant
//!   retransmission (paper §V-B);
//! * [`metrics`] — endpoint-internal ground truth (cwnd logs, timeout
//!   times) used to validate the trace analyses.
//!
//! ```
//! use hsm_tcp::prelude::*;
//!
//! let cfg = ConnectionConfig {
//!     sender: SenderConfig { max_segments: Some(50), ..Default::default() },
//!     ..Default::default()
//! };
//! let out = run_connection(1, &PathSpec::default(), None, &cfg);
//! assert_eq!(out.receiver.next_expected, 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod connection;
pub mod cwnd;
pub mod demux;
pub mod metrics;
pub mod mptcp;
pub mod newreno;
pub mod receiver;
pub mod recovery;
pub mod reno;
pub mod rtt;
pub mod veno;

/// Convenient glob-import surface: `use hsm_tcp::prelude::*;`.
pub mod prelude {
    pub use crate::cc::{Bbr, Compound, CongestionControl, Cubic};
    pub use crate::connection::{
        run_connection, try_run_connection, try_run_connection_with, ConnectionConfig,
        ConnectionOutcome, ConnectionScratch, LossSpec, MobilityScenario, PathSpec,
    };
    pub use crate::cwnd::{Algorithm, Cwnd, Phase};
    pub use crate::demux::Demux;
    pub use crate::metrics::{CwndSample, ReceiverMetrics, SenderMetrics};
    pub use crate::mptcp::{
        run_mptcp_duplex, run_mptcp_shared_radio, run_with_backup_path, MptcpOutcome,
    };
    pub use crate::newreno::new_reno_sender;
    pub use crate::receiver::{AdaptiveDelAck, Receiver, ReceiverConfig};
    pub use crate::recovery::{AckDisposition, LossRecovery, Recovery, TimeoutPlan};
    pub use crate::reno::{RenoSender, SenderConfig};
    pub use crate::rtt::{Backoff, RttEstimator};
    pub use crate::veno::{veno_config, veno_sender};
}
