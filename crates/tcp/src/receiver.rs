//! The TCP receiver: cumulative ACKs, delayed ACKs, reordering buffer and
//! duplicate-payload accounting.
//!
//! The receiver implements the behaviours the paper's analysis leans on:
//!
//! * **Cumulative acknowledgment** — one surviving ACK covers every ACK
//!   lost before it (Fig. 11), which is why only an *ACK burst loss* can
//!   trigger a spurious timeout.
//! * **Delayed ACKs** (RFC 1122) — one ACK per `b` in-order segments, with
//!   a deadline timer; §V-A discusses how larger `b` shrinks the number of
//!   ACKs per round and raises `P_a`.
//! * **Immediate ACKs on out-of-order / duplicate data** (RFC 5681), which
//!   produce the duplicate ACKs fast retransmit needs.
//! * **Duplicate-payload counting** — a segment received twice is the
//!   receiver-side witness of a spurious retransmission.

use crate::metrics::ReceiverMetrics;
use hsm_simnet::engine::Ctx;
use hsm_simnet::event::EventId;
use hsm_simnet::link::LinkId;
use hsm_simnet::packet::{FlowId, Packet, PacketKind, SeqNo};
use hsm_simnet::prelude::Agent;
use hsm_simnet::time::SimDuration;
use std::collections::BTreeSet;

/// TCP-DCA-style adaptive delayed-ACK policy (Chen et al., cited in §V-A;
/// the paper leaves its high-speed evaluation as future work — the
/// `ext_delack` experiment provides it).
///
/// The delayed window grows while the stream is healthy and collapses to
/// `b_min` on any disorder signal (out-of-order or duplicate payloads —
/// the receiver-visible footprints of loss and spurious timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDelAck {
    /// Smallest delayed window (used right after any disturbance).
    pub b_min: u32,
    /// Largest delayed window the policy will reach.
    pub b_max: u32,
    /// Consecutive undisturbed in-order segments required per increment.
    pub grow_after: u32,
}

impl Default for AdaptiveDelAck {
    /// Conservative defaults: the §V-A analysis shows that large delayed
    /// windows amplify ACK-burst loss, so the default never grows past
    /// the standard `b = 2`.
    fn default() -> Self {
        AdaptiveDelAck {
            b_min: 1,
            b_max: 2,
            grow_after: 64,
        }
    }
}

/// Receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverConfig {
    /// Delayed-ACK factor `b`: ACK every `b` in-order segments (1 disables
    /// delaying). Ignored when `adaptive` is set.
    pub b: u32,
    /// Deadline after which a pending delayed ACK is sent anyway.
    pub delack_timeout: SimDuration,
    /// Optional TCP-DCA-style adaptive delayed window.
    pub adaptive: Option<AdaptiveDelAck>,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        // The paper's traces show delayed ACKs in use; b = 2 with the
        // usual 100 ms deadline hold.
        ReceiverConfig {
            b: 2,
            delack_timeout: SimDuration::from_millis(100),
            adaptive: None,
        }
    }
}

const TAG_DELACK: u64 = 100;

/// The receiver agent. Wire its `uplink` to the sender after both agents
/// are registered (see `connection`).
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    /// The link carrying ACKs back to the sender. Set by the wiring code.
    pub uplink: LinkId,
    /// Optional backup uplink (MPTCP backup mode, §V-B). ACKs elicited by
    /// retransmitted data are mirrored over it: the backup path duplicates
    /// the whole recovery exchange, not just the data direction — otherwise
    /// a redundantly delivered retransmission still stalls for a full
    /// backoff rung whenever its ACK dies on the impaired primary uplink.
    pub backup_uplink: Option<LinkId>,
    cfg: ReceiverConfig,
    next_expected: SeqNo,
    ooo: BTreeSet<u64>,
    received_ever_max: u64,
    received_set: BTreeSet<u64>,
    pending_acks: u32,
    delack_timer: Option<EventId>,
    current_b: u32,
    healthy_streak: u32,
    /// Ground-truth counters.
    pub metrics: ReceiverMetrics,
}

impl Receiver {
    /// Creates a receiver for `flow`; `uplink` may be a placeholder fixed
    /// up by wiring code before the simulation starts.
    pub fn new(flow: FlowId, uplink: LinkId, cfg: ReceiverConfig) -> Receiver {
        assert!(cfg.b >= 1, "delayed-ACK factor must be at least 1");
        if let Some(a) = cfg.adaptive {
            assert!(
                a.b_min >= 1 && a.b_max >= a.b_min,
                "invalid adaptive delack bounds"
            );
            assert!(a.grow_after >= 1, "grow_after must be positive");
        }
        let current_b = cfg.adaptive.map(|a| a.b_min).unwrap_or(cfg.b);
        Receiver {
            flow,
            uplink,
            backup_uplink: None,
            cfg,
            next_expected: SeqNo::ZERO,
            ooo: BTreeSet::new(),
            received_ever_max: 0,
            received_set: BTreeSet::new(),
            pending_acks: 0,
            delack_timer: None,
            current_b,
            healthy_streak: 0,
            metrics: ReceiverMetrics::default(),
        }
    }

    /// Next expected in-order sequence number.
    pub fn next_expected(&self) -> SeqNo {
        self.next_expected
    }

    /// The delayed-ACK window currently in force (constant `b` unless the
    /// adaptive policy is active).
    pub fn current_b(&self) -> u32 {
        self.current_b
    }

    fn on_disorder(&mut self) {
        if let Some(a) = self.cfg.adaptive {
            self.current_b = a.b_min;
            self.healthy_streak = 0;
        }
    }

    fn on_healthy(&mut self, segments: u32) {
        if let Some(a) = self.cfg.adaptive {
            self.healthy_streak += segments;
            while self.healthy_streak >= a.grow_after && self.current_b < a.b_max {
                self.healthy_streak -= a.grow_after;
                self.current_b += 1;
            }
        }
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, acked_count: u32) {
        self.send_ack_inner(ctx, acked_count, false);
    }

    /// `mirror` — also send a copy over the backup uplink (recovery-phase
    /// ACKs in MPTCP backup mode).
    fn send_ack_inner(&mut self, ctx: &mut Ctx<'_>, acked_count: u32, mirror: bool) {
        let ack = Packet::ack(self.flow, self.next_expected, acked_count);
        if mirror {
            if let Some(backup) = self.backup_uplink {
                ctx.send(backup, ack.clone().with_tag(1));
                self.metrics.acks_sent += 1;
            }
        }
        ctx.send(self.uplink, ack);
        self.metrics.acks_sent += 1;
        self.pending_acks = 0;
        if let Some(t) = self.delack_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    /// True if the payload `seq` was already delivered before.
    fn seen_before(&self, seq: u64) -> bool {
        self.received_set.contains(&seq)
    }

    fn mark_seen(&mut self, seq: u64) {
        self.received_set.insert(seq);
        self.received_ever_max = self.received_ever_max.max(seq);
        // Compact: everything below next_expected is implicitly seen; keep
        // the set small by dropping covered entries.
        let cutoff = self.next_expected.as_u64();
        while let Some(&lo) = self.received_set.first() {
            if lo + 64 < cutoff {
                self.received_set.remove(&lo);
            } else {
                break;
            }
        }
    }
}

impl Agent for Receiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        let PacketKind::Data { seq, retransmit } = packet.kind else {
            return; // Receivers only consume data.
        };
        self.metrics.segments_received += 1;
        let s = seq.as_u64();
        let expected = self.next_expected.as_u64();

        if self.seen_before(s) || s < expected {
            // Duplicate payload: the original had arrived, so any timeout
            // that caused this retransmission was spurious.
            self.metrics.duplicate_payloads += 1;
            self.on_disorder();
            self.send_ack_inner(ctx, 0, retransmit);
            return;
        }
        self.mark_seen(s);

        if s == expected {
            // In-order: advance, draining any buffered continuation.
            let mut next = expected + 1;
            while self.ooo.remove(&next) {
                next += 1;
            }
            let advanced = (next - expected) as u32;
            self.next_expected = SeqNo(next);
            self.metrics.next_expected = next;
            self.pending_acks += advanced;
            self.on_healthy(advanced);
            if !self.ooo.is_empty() {
                // Still a hole above: ACK immediately (RFC 5681).
                let count = self.pending_acks;
                self.send_ack_inner(ctx, count, retransmit);
            } else if self.pending_acks >= self.current_b {
                let count = self.pending_acks;
                self.send_ack_inner(ctx, count, retransmit);
            } else if self.delack_timer.is_none() {
                self.delack_timer = Some(ctx.schedule_in(self.cfg.delack_timeout, TAG_DELACK));
            }
        } else {
            // Out of order: buffer and emit an immediate duplicate ACK.
            self.ooo.insert(s);
            self.on_disorder();
            self.send_ack_inner(ctx, 0, retransmit);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        debug_assert_eq!(tag, TAG_DELACK);
        self.delack_timer = None;
        if self.pending_acks > 0 {
            let count = self.pending_acks;
            self.send_ack(ctx, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_simnet::observer::{PacketEventKind, VecRecorder};
    use hsm_simnet::prelude::*;

    /// Drives a receiver by injecting data packets on a link towards it and
    /// recording the ACKs it sends on its uplink.
    struct Harness {
        eng: Engine,
        rx: AgentId,
        downlink: LinkId,
        rec: VecRecorder,
    }

    fn harness(cfg: ReceiverConfig) -> Harness {
        let mut eng = Engine::new(11);
        let sink = eng.add_agent(Box::new(NullAgent::new())); // stands in for the sender
        let uplink =
            eng.add_link(LinkSpec::new(sink, "uplink").prop_delay(SimDuration::from_millis(5)));
        let rx = eng.add_agent(Box::new(Receiver::new(FlowId(0), uplink, cfg)));
        let downlink =
            eng.add_link(LinkSpec::new(rx, "downlink").prop_delay(SimDuration::from_millis(5)));
        let rec = VecRecorder::new();
        eng.add_recorder(rec.clone());
        Harness {
            eng,
            rx,
            downlink,
            rec,
        }
    }

    fn acks_sent(rec: &VecRecorder) -> Vec<(u64, u32)> {
        rec.events()
            .iter()
            .filter(|e| e.kind == PacketEventKind::Sent && e.packet.kind.is_ack())
            .map(|e| match e.packet.kind {
                PacketKind::Ack { cum, acked_count } => (cum.as_u64(), acked_count),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let mut h = harness(ReceiverConfig::default());
        for seq in 0..4 {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until_idle();
        let acks = acks_sent(&h.rec);
        // b = 2: two ACKs, each covering two segments.
        assert_eq!(acks, vec![(2, 2), (4, 2)]);
        let rx = h.eng.agent_mut::<Receiver>(h.rx).unwrap();
        assert_eq!(rx.metrics.acks_sent, 2);
        assert_eq!(rx.next_expected(), SeqNo(4));
    }

    #[test]
    fn delack_deadline_flushes_odd_segment() {
        let mut h = harness(ReceiverConfig::default());
        h.eng
            .inject(h.downlink, Packet::data(FlowId(0), SeqNo(0), false));
        h.eng.run_until_idle();
        let acks = acks_sent(&h.rec);
        assert_eq!(acks, vec![(1, 1)], "flushed by the 100 ms delack timer");
        // The flush happened at delivery (+5ms) + 100 ms.
        assert!(h.eng.now() >= SimTime::from_millis(105));
    }

    #[test]
    fn out_of_order_triggers_immediate_dup_acks() {
        let mut h = harness(ReceiverConfig {
            b: 2,
            delack_timeout: SimDuration::from_millis(100),
            adaptive: None,
        });
        // seq 0 arrives, then 2, 3, 4 (1 missing): expect dup ACKs cum=1.
        for seq in [0u64, 2, 3, 4] {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until_idle();
        let acks = acks_sent(&h.rec);
        // First ACK may be delayed; the three OOO arrivals each force an
        // immediate ACK with cum = 1.
        let dups: Vec<_> = acks.iter().filter(|(cum, _)| *cum == 1).collect();
        assert_eq!(dups.len(), 3, "acks: {acks:?}");
    }

    #[test]
    fn hole_fill_acks_cumulatively() {
        let mut h = harness(ReceiverConfig {
            b: 2,
            delack_timeout: SimDuration::from_millis(100),
            adaptive: None,
        });
        for seq in [0u64, 2, 3] {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until(SimTime::from_millis(50));
        // Fill the hole.
        h.eng
            .inject(h.downlink, Packet::data(FlowId(0), SeqNo(1), false));
        h.eng.run_until_idle();
        let acks = acks_sent(&h.rec);
        assert_eq!(
            acks.last().unwrap().0,
            4,
            "cumulative ACK jumps over the filled hole"
        );
    }

    #[test]
    fn duplicate_payload_is_counted_and_acked() {
        let mut h = harness(ReceiverConfig {
            b: 1,
            delack_timeout: SimDuration::from_millis(100),
            adaptive: None,
        });
        h.eng
            .inject(h.downlink, Packet::data(FlowId(0), SeqNo(0), false));
        h.eng.run_until(SimTime::from_millis(50));
        h.eng
            .inject(h.downlink, Packet::data(FlowId(0), SeqNo(0), true)); // spurious retx
        h.eng.run_until_idle();
        let rx = h.eng.agent_mut::<Receiver>(h.rx).unwrap();
        assert_eq!(rx.metrics.duplicate_payloads, 1);
        let acks = acks_sent(&h.rec);
        assert_eq!(acks.len(), 2);
        assert_eq!(acks[1].0, 1, "duplicate re-ACKed at the cumulative point");
    }

    #[test]
    fn b_equals_one_acks_every_segment() {
        let mut h = harness(ReceiverConfig {
            b: 1,
            delack_timeout: SimDuration::from_millis(100),
            adaptive: None,
        });
        for seq in 0..5 {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until_idle();
        assert_eq!(acks_sent(&h.rec).len(), 5);
    }

    #[test]
    fn adaptive_delack_grows_on_healthy_stream() {
        let cfg = ReceiverConfig {
            adaptive: Some(AdaptiveDelAck {
                b_min: 1,
                b_max: 4,
                grow_after: 8,
            }),
            ..Default::default()
        };
        let mut h = harness(cfg);
        for seq in 0..40 {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until_idle();
        let rx = h.eng.agent_mut::<Receiver>(h.rx).unwrap();
        assert_eq!(
            rx.current_b(),
            4,
            "40 clean segments at grow_after=8 saturate b_max"
        );
        assert_eq!(rx.next_expected(), SeqNo(40));
    }

    #[test]
    fn adaptive_delack_collapses_on_disorder() {
        let cfg = ReceiverConfig {
            adaptive: Some(AdaptiveDelAck {
                b_min: 1,
                b_max: 4,
                grow_after: 4,
            }),
            ..Default::default()
        };
        let mut h = harness(cfg);
        for seq in 0..16 {
            h.eng
                .inject(h.downlink, Packet::data(FlowId(0), SeqNo(seq), false));
        }
        h.eng.run_until(SimTime::from_secs(2));
        assert!(h.eng.agent_mut::<Receiver>(h.rx).unwrap().current_b() > 1);
        // A gap (seq 17 before 16... inject 18 to create disorder).
        h.eng
            .inject(h.downlink, Packet::data(FlowId(0), SeqNo(18), false));
        h.eng.run_until_idle();
        let rx = h.eng.agent_mut::<Receiver>(h.rx).unwrap();
        assert_eq!(rx.current_b(), 1, "disorder resets the delayed window");
    }

    #[test]
    fn fixed_b_receiver_reports_constant_current_b() {
        let h = harness(ReceiverConfig::default());
        let mut h = h;
        let rx = h.eng.agent_mut::<Receiver>(h.rx).unwrap();
        assert_eq!(rx.current_b(), 2);
    }
}
