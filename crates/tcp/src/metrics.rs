//! Endpoint-internal metrics.
//!
//! The trace analyses (hsm-trace) infer everything from packet captures,
//! as the paper had to. The TCP implementation additionally exports its
//! *internal* ground truth — actual timeout events, cwnd evolution, phase
//! changes — which the integration tests use to validate the trace-based
//! inference, and which the Fig. 7–9 window-evolution plots are drawn
//! from.

use crate::cwnd::Phase;
use hsm_simnet::time::SimTime;
use serde::{Deserialize, Serialize};

/// One point of the congestion-window evolution (Figs. 7–9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CwndSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Congestion window, fractional segments.
    pub cwnd: f64,
    /// Effective send window (min(cwnd, W_m)), whole segments.
    pub window: u64,
    /// Phase at the time.
    pub phase: Phase,
}

/// Sender-side ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SenderMetrics {
    /// Window samples, one per change.
    pub cwnd_log: Vec<CwndSample>,
    /// Times at which the retransmission timer expired.
    pub timeouts: Vec<SimTime>,
    /// The (backed-off) timer value that expired, seconds, parallel to
    /// `timeouts`.
    pub rto_at_timeout: Vec<f64>,
    /// Times of fast retransmissions.
    pub fast_retransmits: Vec<SimTime>,
    /// Data segments sent, including retransmissions.
    pub segments_sent: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Highest sequence number sent so far.
    pub max_seq_sent: u64,
    /// ACK packets received.
    pub acks_received: u64,
    /// Duplicate ACKs received.
    pub dup_acks_received: u64,
    /// Timeouts detected as spurious and undone (the legacy
    /// `spurious_rto_undo` flag or the F-RTO recovery strategy).
    pub spurious_rto_undone: u64,
    /// New-data probe segments sent by the F-RTO state machine
    /// (RFC 5682 step 2b; at most two per timeout).
    pub frto_probes: u64,
    /// Timeouts whose exponential backoff was withheld by the
    /// ACK-loss-robust strategy pending a corroborating silent RTO.
    pub backoff_skipped: u64,
}

impl SenderMetrics {
    /// Records a window sample.
    pub fn log_cwnd(&mut self, at: SimTime, cwnd: f64, window: u64, phase: Phase) {
        self.cwnd_log.push(CwndSample {
            at,
            cwnd,
            window,
            phase,
        });
    }

    /// Number of timeout events.
    pub fn timeout_count(&self) -> usize {
        self.timeouts.len()
    }

    /// Checks the cross-counter invariants of the metrics ledger:
    /// retransmissions are a subset of sends, duplicate ACKs a subset of
    /// ACKs, spurious (undone) timeouts a subset of timeouts, and the
    /// timeout/RTO logs move in lockstep. The sender re-checks after every
    /// ACK and timeout in debug/test builds.
    ///
    /// # Panics
    ///
    /// Panics when the ledger is inconsistent.
    #[cfg(any(debug_assertions, test))]
    pub fn assert_invariants(&self) {
        assert!(
            self.retransmissions <= self.segments_sent,
            "metrics invariant violated: {} retransmissions > {} segments sent",
            self.retransmissions,
            self.segments_sent,
        );
        assert!(
            self.dup_acks_received <= self.acks_received,
            "metrics invariant violated: {} dup ACKs > {} ACKs received",
            self.dup_acks_received,
            self.acks_received,
        );
        assert!(
            self.spurious_rto_undone <= self.timeouts.len() as u64,
            "metrics invariant violated: {} spurious timeouts > {} timeouts",
            self.spurious_rto_undone,
            self.timeouts.len(),
        );
        assert_eq!(
            self.timeouts.len(),
            self.rto_at_timeout.len(),
            "metrics invariant violated: timeout and RTO logs out of lockstep",
        );
        assert!(
            self.frto_probes <= 2 * self.timeouts.len() as u64,
            "metrics invariant violated: {} F-RTO probes > 2 × {} timeouts",
            self.frto_probes,
            self.timeouts.len(),
        );
        assert!(
            self.backoff_skipped <= self.timeouts.len() as u64,
            "metrics invariant violated: {} skipped backoffs > {} timeouts",
            self.backoff_skipped,
            self.timeouts.len(),
        );
    }
}

/// Receiver-side ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ReceiverMetrics {
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Segments whose payload had already been received — the receiver-side
    /// witness of a *spurious* retransmission (paper §III-B-2).
    pub duplicate_payloads: u64,
    /// ACKs sent.
    pub acks_sent: u64,
    /// Highest in-order sequence number received (next expected − 1).
    pub next_expected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_count() {
        let mut m = SenderMetrics::default();
        m.log_cwnd(SimTime::ZERO, 1.0, 1, Phase::SlowStart);
        m.log_cwnd(SimTime::from_millis(10), 2.0, 2, Phase::SlowStart);
        m.timeouts.push(SimTime::from_secs(1));
        assert_eq!(m.cwnd_log.len(), 2);
        assert_eq!(m.timeout_count(), 1);
        assert_eq!(m.cwnd_log[1].window, 2);
    }

    #[test]
    #[should_panic(expected = "spurious timeouts")]
    fn spurious_exceeding_timeouts_trips_the_invariant() {
        // Violation injection: claim a spurious timeout that never
        // happened. The ledger check must refuse it.
        let m = SenderMetrics {
            spurious_rto_undone: 1,
            ..Default::default()
        };
        m.assert_invariants();
    }

    #[test]
    fn consistent_ledger_passes_the_invariant() {
        let mut m = SenderMetrics {
            segments_sent: 10,
            retransmissions: 2,
            acks_received: 8,
            dup_acks_received: 3,
            ..Default::default()
        };
        m.timeouts.push(SimTime::from_secs(1));
        m.rto_at_timeout.push(1.0);
        m.spurious_rto_undone = 1;
        m.assert_invariants();
    }

    #[test]
    fn receiver_metrics_default_zero() {
        let r = ReceiverMetrics::default();
        assert_eq!(r.segments_received, 0);
        assert_eq!(r.duplicate_payloads, 0);
    }
}
