//! Flow demultiplexing for shared-bottleneck wirings.
//!
//! The paper's measurements run multiple TCP flows through *one* phone —
//! one radio, one bottleneck. To model that, several connections share a
//! single radio link whose exit point is a [`Demux`] agent forwarding each
//! packet to its flow's endpoint over a zero-delay `internal.*` link.
//! Trace capture ignores those auxiliary hops
//! (see [`traces_from_events_filtered`](hsm_trace::capture::traces_from_events_filtered)).

use hsm_simnet::engine::Ctx;
use hsm_simnet::link::LinkId;
use hsm_simnet::packet::Packet;
use hsm_simnet::prelude::Agent;
use std::collections::HashMap;

/// Forwards packets to per-flow internal links by flow id.
#[derive(Debug, Default)]
pub struct Demux {
    routes: HashMap<u32, LinkId>,
    /// Packets whose flow had no route (dropped silently but counted).
    pub unrouted: u64,
}

impl Demux {
    /// Creates an empty demux; add routes with [`Demux::add_route`].
    pub fn new() -> Demux {
        Demux::default()
    }

    /// Routes `flow` to `link`.
    pub fn add_route(&mut self, flow: u32, link: LinkId) {
        self.routes.insert(flow, link);
    }
}

impl Agent for Demux {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        match self.routes.get(&packet.flow.0) {
            Some(&link) => {
                ctx.send(link, packet);
            }
            None => self.unrouted += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsm_simnet::prelude::*;

    #[test]
    fn routes_by_flow_id() {
        let mut eng = Engine::new(1);
        let sink_a = eng.add_agent(Box::new(NullAgent::new()));
        let sink_b = eng.add_agent(Box::new(NullAgent::new()));
        let demux_id = eng.add_agent(Box::new(Demux::new()));
        let shared = eng.add_link(LinkSpec::new(demux_id, "shared"));
        let to_a = eng
            .add_link(LinkSpec::new(sink_a, "internal.a").prop_delay(SimDuration::from_micros(1)));
        let to_b = eng
            .add_link(LinkSpec::new(sink_b, "internal.b").prop_delay(SimDuration::from_micros(1)));
        {
            let demux = eng.agent_mut::<Demux>(demux_id).unwrap();
            demux.add_route(0, to_a);
            demux.add_route(1, to_b);
        }
        for (flow, seq) in [(0u32, 0u64), (1, 0), (0, 1), (2, 0)] {
            eng.inject(shared, Packet::data(FlowId(flow), SeqNo(seq), false));
        }
        eng.run_until_idle();
        assert_eq!(eng.agent_mut::<NullAgent>(sink_a).unwrap().received, 2);
        assert_eq!(eng.agent_mut::<NullAgent>(sink_b).unwrap().received, 1);
        assert_eq!(eng.agent_mut::<Demux>(demux_id).unwrap().unrouted, 1);
    }
}
