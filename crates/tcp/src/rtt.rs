//! RTT estimation (Jacobson/Karn) and base-RTO computation.
//!
//! Implements the standard smoothed-RTT estimator of RFC 6298:
//! `SRTT = 7/8·SRTT + 1/8·R'`, `RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R'|`,
//! `RTO = SRTT + 4·RTTVAR`, clamped to `[min_rto, max_rto]`. Karn's rule
//! (never sample a retransmitted segment) is enforced by the sender, which
//! only feeds unambiguous samples.

use hsm_simnet::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Jacobson RTT estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: f64,
    max_rto: f64,
    initial_rto: f64,
    samples: u64,
}

impl RttEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or non-positive.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        let (init, min, max) = (
            initial_rto.as_secs_f64(),
            min_rto.as_secs_f64(),
            max_rto.as_secs_f64(),
        );
        assert!(min > 0.0 && max >= min, "invalid RTO bounds");
        assert!(init > 0.0, "invalid initial RTO");
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto: min,
            max_rto: max,
            initial_rto: init,
            samples: 0,
        }
    }

    /// RFC 6298 defaults: initial RTO 1 s, bounds [200 ms, 60 s] (Linux's
    /// 200 ms lower bound rather than the RFC's conservative 1 s).
    pub fn standard() -> Self {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    /// Feeds one RTT sample (from a never-retransmitted segment).
    ///
    /// Audited against RFC 6298 §2.2–§2.3: the first measurement `R`
    /// sets `SRTT = R` and `RTTVAR = R/2`; every later measurement `R'`
    /// updates `RTTVAR` *before* `SRTT` (the variance term must use the
    /// previous smoothed value) with the standard gains `β = 1/4` and
    /// `α = 1/8`. So the first sample's base RTO is `R + 4·(R/2) = 3R`,
    /// pre-clamp — pinned by a unit test.
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        self.samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// The smoothed RTT, if at least one sample arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The current base retransmission timeout (before backoff).
    pub fn rto(&self) -> SimDuration {
        let raw = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => srtt + 4.0 * self.rttvar,
        };
        SimDuration::from_secs_f64(raw.clamp(self.min_rto, self.max_rto))
    }
}

/// The retransmission timer with exponential backoff.
///
/// After each consecutive timeout the timer doubles; the paper notes the
/// doubling continues until the timer reaches `64·T` (RFC 6298's cap
/// behaviour), after which it stays there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Backoff {
    /// Consecutive timeouts since the last reset. Tracked separately from
    /// the factor cap: the multiplier saturates at 64× but ladder lengths
    /// (the paper's Table-III-style `R` statistics) must keep counting.
    count: u32,
}

impl Backoff {
    /// Maximum backoff multiplier (`64·T`).
    pub const MAX_FACTOR: u64 = 64;

    /// Fresh, un-backed-off state.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// The current multiplier (1, 2, 4, …, 64).
    pub fn factor(&self) -> u64 {
        1u64 << self.count.min(6)
    }

    /// Applies the backoff to a base RTO.
    pub fn apply(&self, base: SimDuration) -> SimDuration {
        base * self.factor()
    }

    /// Doubles the timer (the factor saturates at 64×; the count does
    /// not).
    pub fn on_timeout(&mut self) {
        self.count = self.count.saturating_add(1);
    }

    /// Resets after an ACK for new data.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Consecutive timeouts so far — unbounded, unlike the factor.
    pub fn consecutive_timeouts(&self) -> u32 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 6298 §2.2: the first measurement `R` must set `SRTT = R`,
    /// `RTTVAR = R/2`, hence base RTO `= R + 4·(R/2) = 3R` — not the
    /// `R + 4·0` a zero-initialized RTTVAR would give, which fires
    /// spurious timeouts on the very first jitter of a flow.
    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::standard();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = SRTT + 4·RTTVAR = 100 + 4·50 = 300 ms = 3R.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
        assert_eq!(e.samples(), 1);
        // The 3R shape must hold across magnitudes (within the clamp).
        for r_ms in [80u64, 250, 1000, 5000] {
            let mut e = RttEstimator::standard();
            e.sample(SimDuration::from_millis(r_ms));
            assert_eq!(
                e.rto(),
                SimDuration::from_millis(3 * r_ms),
                "first-sample RTO must be 3R for R = {r_ms} ms"
            );
        }
    }

    /// RFC 6298 §2.3 ordering: the second sample's RTTVAR must be
    /// computed from the *previous* SRTT. Updating SRTT first would give
    /// rttvar = 0.75·50 + 0.25·|112.5 − 200| = 59.375 ms instead.
    #[test]
    fn second_sample_updates_rttvar_before_srtt() {
        let mut e = RttEstimator::standard();
        e.sample(SimDuration::from_millis(100));
        e.sample(SimDuration::from_millis(200));
        // rttvar = 0.75·50 + 0.25·|100 − 200| = 62.5 ms
        // srtt   = 0.875·100 + 0.125·200     = 112.5 ms
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.1125).abs() < 1e-12);
        let rto = e.rto().as_secs_f64();
        assert!((rto - (0.1125 + 4.0 * 0.0625)).abs() < 1e-12);
    }

    #[test]
    fn smoothing_converges_to_stable_rtt() {
        let mut e = RttEstimator::standard();
        for _ in 0..200 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.080).abs() < 1e-6);
        // Variance decays toward zero, so RTO approaches the min bound.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = RttEstimator::standard();
        e.sample(SimDuration::from_secs(100));
        assert_eq!(e.rto(), SimDuration::from_secs(60));
        let mut fast = RttEstimator::standard();
        fast.sample(SimDuration::from_micros(10));
        assert_eq!(fast.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = RttEstimator::standard();
        e.sample(SimDuration::from_millis(50));
        e.sample(SimDuration::from_millis(250));
        // srtt = 0.875*50 + 0.125*250 = 75 ms; rttvar = 0.75*25 + 0.25*200 = 68.75 ms.
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.075).abs() < 1e-9);
        let rto = e.rto().as_secs_f64();
        assert!((rto - (0.075 + 4.0 * 0.06875)).abs() < 1e-9);
    }

    #[test]
    fn backoff_doubles_to_64x_cap() {
        let mut b = Backoff::new();
        let base = SimDuration::from_millis(500);
        let mut factors = Vec::new();
        for _ in 0..9 {
            factors.push(b.factor());
            b.on_timeout();
        }
        assert_eq!(factors, vec![1, 2, 4, 8, 16, 32, 64, 64, 64]);
        assert_eq!(b.apply(base), SimDuration::from_secs(32));
        // The count keeps going past the factor cap (ladder length > 6).
        assert_eq!(b.consecutive_timeouts(), 9);
        b.reset();
        assert_eq!(b.factor(), 1);
        assert_eq!(b.consecutive_timeouts(), 0);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_rejected() {
        let _ = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
    }
}
