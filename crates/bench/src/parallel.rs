//! Parallel repetition helper.
//!
//! Repetition-based experiments (Fig. 12, the extension ablations) average
//! over many independent simulated rides; this fans the rides out over CPU
//! cores, preserving determinism (each ride is a pure function of its
//! index).

/// Maps `f` over `0..n` in parallel, returning results in index order.
pub fn par_map<T: Send>(n: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(4)
        .min(n.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let next = &next;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(i))).expect("parallel map channel closed");
            });
        }
        drop(tx);
    })
    .expect("parallel map worker panicked");
    let mut results: Vec<(u64, T)> = rx.into_iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, v)| v).collect()
}

/// Parallel mean of `f` over `0..n`; 0.0 when `n == 0`.
pub fn par_mean(n: u64, f: impl Fn(u64) -> f64 + Sync) -> f64 {
    if n == 0 {
        return 0.0;
    }
    par_map(n, f).iter().sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn mean_of_constants() {
        assert!((par_mean(64, |_| 2.5) - 2.5).abs() < 1e-12);
        assert_eq!(par_mean(0, |_| 1.0), 0.0);
    }
}
