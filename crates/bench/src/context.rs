//! Shared experiment context: scale presets and lazily generated, cached
//! datasets (several figures consume the same 255-flow dataset; generate
//! it once per process).
//!
//! Dataset generation runs through the `hsm-runtime` campaign engine
//! (sharded workers + telemetry); the resulting [`CampaignReport`]s are
//! kept so `repro` can fold them into `BENCH_campaign.json`.

use hsm_runtime::engine::{run_dataset, run_stationary_baseline, CampaignReport};
use hsm_scenario::dataset::{DatasetConfig, DatasetFlow};
use hsm_simnet::time::SimDuration;
use std::cell::OnceCell;

/// How much work an experiment run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// A handful of short flows — used by unit benches and CI.
    Smoke,
    /// ~30 flows of 120 s — statistics become meaningful (default).
    #[default]
    Standard,
    /// The full 255-flow Table-I dataset at 120 s per flow.
    Full,
    /// ~2,000 very short flows — a campaign-overhead stress load for the
    /// scheduler/cache benchmarks, not for statistics.
    Stress,
}

impl Scale {
    /// Dataset generation parameters for this scale.
    pub fn dataset_config(&self) -> DatasetConfig {
        match self {
            Scale::Smoke => DatasetConfig {
                scale: 0.02,
                flow_duration: SimDuration::from_secs(25),
                ..Default::default()
            },
            Scale::Standard => DatasetConfig {
                scale: 0.12,
                flow_duration: SimDuration::from_secs(120),
                ..Default::default()
            },
            Scale::Full => DatasetConfig {
                scale: 1.0,
                flow_duration: SimDuration::from_secs(120),
                ..Default::default()
            },
            // 8 × the Table-I flow counts (2,040 flows) but only 2 s
            // each: per-flow work shrinks until scheduling, cache and
            // result-collection overhead dominate — which is exactly
            // what this scale exists to measure.
            Scale::Stress => DatasetConfig {
                scale: 8.0,
                flow_duration: SimDuration::from_secs(2),
                ..Default::default()
            },
        }
    }

    /// Number of stationary baseline flows.
    pub fn stationary_flows(&self) -> u32 {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 12,
            Scale::Full => 40,
            Scale::Stress => 40,
        }
    }

    /// Seeds per data point in per-provider repetition experiments.
    pub fn repetitions(&self) -> u64 {
        match self {
            Scale::Smoke => 2,
            Scale::Standard => 8,
            Scale::Full | Scale::Stress => 20,
        }
    }

    /// Duration of individual (non-dataset) scenario runs.
    pub fn flow_duration(&self) -> SimDuration {
        match self {
            Scale::Smoke => SimDuration::from_secs(25),
            Scale::Standard | Scale::Full => SimDuration::from_secs(120),
            Scale::Stress => SimDuration::from_secs(2),
        }
    }
}

/// Lazily built shared state for one harness invocation.
#[derive(Debug, Default)]
pub struct Ctx {
    /// The scale everything runs at.
    pub scale: Scale,
    high_speed: OnceCell<(Vec<DatasetFlow>, CampaignReport)>,
    stationary: OnceCell<(Vec<DatasetFlow>, CampaignReport)>,
}

impl Ctx {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Ctx {
        Ctx {
            scale,
            ..Default::default()
        }
    }

    fn high_speed_cell(&self) -> &(Vec<DatasetFlow>, CampaignReport) {
        self.high_speed.get_or_init(|| {
            run_dataset(&self.scale.dataset_config()).expect("dataset campaign runs")
        })
    }

    fn stationary_cell(&self) -> &(Vec<DatasetFlow>, CampaignReport) {
        self.stationary.get_or_init(|| {
            run_stationary_baseline(&self.scale.dataset_config(), self.scale.stationary_flows())
                .expect("stationary campaign runs")
        })
    }

    /// The high-speed dataset (generated on first use, cached after).
    pub fn high_speed(&self) -> &[DatasetFlow] {
        &self.high_speed_cell().0
    }

    /// The stationary baseline (generated on first use, cached after).
    pub fn stationary(&self) -> &[DatasetFlow] {
        &self.stationary_cell().0
    }

    /// Campaign telemetry of the high-speed dataset generation.
    pub fn high_speed_report(&self) -> &CampaignReport {
        &self.high_speed_cell().1
    }

    /// Campaign telemetry of the stationary baseline generation.
    pub fn stationary_report(&self) -> &CampaignReport {
        &self.stationary_cell().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let smoke = Scale::Smoke.dataset_config();
        let full = Scale::Full.dataset_config();
        assert!(smoke.scale < full.scale);
        assert!(smoke.flow_duration < full.flow_duration);
        assert!(Scale::Smoke.repetitions() < Scale::Full.repetitions());
    }

    #[test]
    fn stress_scale_plans_a_campaign_overhead_load() {
        let cfg = Scale::Stress.dataset_config();
        let flows = hsm_scenario::dataset::plan_dataset(&cfg).len();
        assert!(flows >= 2000, "stress scale must plan ≥2000 flows: {flows}");
        assert_eq!(cfg.flow_duration, SimDuration::from_secs(2));
    }

    #[test]
    fn ctx_caches_dataset_and_reports_telemetry() {
        let ctx = Ctx::new(Scale::Smoke);
        let a = ctx.high_speed().len();
        let b = ctx.high_speed().len();
        assert_eq!(a, b);
        assert!(a >= 4);
        let st = ctx.stationary();
        assert_eq!(st.len(), 3);
        let report = ctx.high_speed_report();
        assert_eq!(report.flows, a);
        assert_eq!(
            report.cache_hits, 0,
            "keep-outcomes campaigns never hit the cache"
        );
        assert!(report.events_processed > 0);
    }
}
