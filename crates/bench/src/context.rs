//! Shared experiment context: scale presets and lazily generated, cached
//! datasets (several figures consume the same 255-flow dataset; generate
//! it once per process).

use hsm_scenario::dataset::{
    generate_dataset, generate_stationary_baseline, DatasetConfig, DatasetFlow,
};
use hsm_simnet::time::SimDuration;
use std::cell::OnceCell;

/// How much work an experiment run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// A handful of short flows — used by unit benches and CI.
    Smoke,
    /// ~30 flows of 120 s — statistics become meaningful (default).
    #[default]
    Standard,
    /// The full 255-flow Table-I dataset at 120 s per flow.
    Full,
}

impl Scale {
    /// Dataset generation parameters for this scale.
    pub fn dataset_config(&self) -> DatasetConfig {
        match self {
            Scale::Smoke => DatasetConfig {
                scale: 0.02,
                flow_duration: SimDuration::from_secs(25),
                ..Default::default()
            },
            Scale::Standard => DatasetConfig {
                scale: 0.12,
                flow_duration: SimDuration::from_secs(120),
                ..Default::default()
            },
            Scale::Full => DatasetConfig { scale: 1.0, flow_duration: SimDuration::from_secs(120), ..Default::default() },
        }
    }

    /// Number of stationary baseline flows.
    pub fn stationary_flows(&self) -> u32 {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 12,
            Scale::Full => 40,
        }
    }

    /// Seeds per data point in per-provider repetition experiments.
    pub fn repetitions(&self) -> u64 {
        match self {
            Scale::Smoke => 2,
            Scale::Standard => 8,
            Scale::Full => 20,
        }
    }

    /// Duration of individual (non-dataset) scenario runs.
    pub fn flow_duration(&self) -> SimDuration {
        match self {
            Scale::Smoke => SimDuration::from_secs(25),
            Scale::Standard | Scale::Full => SimDuration::from_secs(120),
        }
    }
}

/// Lazily built shared state for one harness invocation.
#[derive(Debug, Default)]
pub struct Ctx {
    /// The scale everything runs at.
    pub scale: Scale,
    high_speed: OnceCell<Vec<DatasetFlow>>,
    stationary: OnceCell<Vec<DatasetFlow>>,
}

impl Ctx {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Ctx {
        Ctx { scale, ..Default::default() }
    }

    /// The high-speed dataset (generated on first use, cached after).
    pub fn high_speed(&self) -> &[DatasetFlow] {
        self.high_speed
            .get_or_init(|| generate_dataset(&self.scale.dataset_config()))
    }

    /// The stationary baseline (generated on first use, cached after).
    pub fn stationary(&self) -> &[DatasetFlow] {
        self.stationary.get_or_init(|| {
            generate_stationary_baseline(&self.scale.dataset_config(), self.scale.stationary_flows())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let smoke = Scale::Smoke.dataset_config();
        let full = Scale::Full.dataset_config();
        assert!(smoke.scale < full.scale);
        assert!(smoke.flow_duration < full.flow_duration);
        assert!(Scale::Smoke.repetitions() < Scale::Full.repetitions());
    }

    #[test]
    fn ctx_caches_dataset() {
        let ctx = Ctx::new(Scale::Smoke);
        let a = ctx.high_speed().len();
        let b = ctx.high_speed().len();
        assert_eq!(a, b);
        assert!(a >= 4);
        let st = ctx.stationary();
        assert_eq!(st.len(), 3);
    }
}
