//! `repro recovery-study` — measure the §V loss-recovery countermeasures
//! and check the model's predicted gains against simulation.
//!
//! Per provider the study runs two slices for every [`Recovery`] variant:
//!
//! * a **campaign** slice — high-speed Table-I-style flows through the
//!   campaign engine (shared cache, so the `recovery` cache-key axis is
//!   exercised end to end), evaluated with [`evaluate_labeled`] exactly
//!   like the cc-study;
//! * a **storm** slice — stationary flows under a periodic delay-flap
//!   storm (delayed-but-not-lost bursts, the timeout-dominated regime of
//!   Fig. 12). Each variant's throughput gain over `None` is the
//!   measured analogue of the paper's MPTCP 42 %/96 %/283 % template.
//!
//! The storm slice is then fitted: [`estimate_params`] on the baseline
//! (`None`) flows feeds [`hsm_core::recovery::predict`], and the
//! measured-vs-modeled gain per variant lands in [`VariantFit`]. The
//! whole report is written as `RECOVERY_report.json`.

use crate::context::Scale;
use hsm_core::estimate::{estimate_params, EstimateConfig};
use hsm_core::eval::{evaluate_labeled, LabeledAccuracy};
use hsm_core::recovery::{predict, STRATEGY_LABELS};
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::Campaign;
use hsm_scenario::provider::Provider;
use hsm_scenario::runner::{try_run_storm_scenario_with, Motion, ScenarioConfig, Scratch};
use hsm_simnet::chaos::{StormEpisode, StormKind, StormPlan};
use hsm_simnet::time::{SimDuration, SimTime};
use hsm_tcp::recovery::Recovery;
use hsm_trace::summary::FlowSummary;
use serde::Serialize;

/// Seed bases keep the two slices on disjoint deterministic streams.
const CAMPAIGN_SEED_BASE: u64 = 0x52_1000;
const STORM_SEED_BASE: u64 = 0x57_0a00;

/// One measured storm slice: a recovery variant under the delay-flap
/// storm, aggregated over its flows.
#[derive(Debug, Clone, Serialize)]
pub struct StormSlice {
    /// Recovery label (`Recovery::label`).
    pub label: String,
    /// Flows simulated in the slice.
    pub flows: usize,
    /// Mean measured throughput, segments/s.
    pub mean_throughput_sps: f64,
    /// Mean measured ACK-loss rate `P_a`.
    pub mean_p_a: f64,
    /// Mean measured spurious-timeout ratio `q̂`.
    pub mean_q_hat: f64,
    /// Total retransmission timeouts across the slice (sender ground
    /// truth — the storm must make this non-zero for `None`).
    pub timeouts: u64,
    /// Timeouts detected as spurious and undone (F-RTO).
    pub spurious_undone: u64,
    /// F-RTO new-data probes sent.
    pub frto_probes: u64,
    /// Backoffs withheld by the ACK-loss-robust strategy.
    pub backoff_skipped: u64,
    /// Throughput gain over the `None` slice, percent.
    pub gain_pct: f64,
}

/// Measured-vs-modeled gain for one variant on one provider's storm.
#[derive(Debug, Clone, Serialize)]
pub struct VariantFit {
    /// Recovery label.
    pub label: String,
    /// Measured storm-slice gain over `None`, percent.
    pub measured_gain_pct: f64,
    /// Model-predicted gain from the fitted baseline params, percent.
    pub predicted_gain_pct: f64,
    /// `|measured − predicted|`, percentage points.
    pub abs_error_pp: f64,
    /// Model-predicted recovery-failure probability `p'` under the
    /// variant (drives the predicted `q`-reduction).
    pub predicted_p_fail: f64,
}

/// Both slices plus the model fit for one provider.
#[derive(Debug, Clone, Serialize)]
pub struct ProviderStudy {
    /// Provider display name.
    pub provider: String,
    /// High-speed campaign-engine rows, one per recovery variant.
    pub campaign: Vec<LabeledAccuracy>,
    /// Storm-scenario rows, one per recovery variant (`None` first).
    pub storm: Vec<StormSlice>,
    /// Measured-vs-modeled gains, one per variant.
    pub fits: Vec<VariantFit>,
}

/// The full study report (`RECOVERY_report.json`).
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryStudyReport {
    /// Engine version that ran the campaigns.
    pub engine_version: String,
    /// Scale preset the study ran at.
    pub scale: String,
    /// Flows per (provider × recovery) campaign slice.
    pub campaign_flows_per_slice: usize,
    /// Flows per (provider × recovery) storm slice.
    pub storm_flows_per_slice: usize,
    /// Per-provider studies, in `Provider::ALL` order.
    pub providers: Vec<ProviderStudy>,
}

impl RecoveryStudyReport {
    /// True when every provider produced a full set of non-empty slices
    /// and the storm actually drove the baseline into timeouts.
    pub fn complete(&self) -> bool {
        self.providers.len() == Provider::ALL.len()
            && self.providers.iter().all(|p| {
                p.campaign.len() == Recovery::ALL.len()
                    && p.campaign.iter().all(|r| r.report.flows > 0)
                    && p.storm.len() == Recovery::ALL.len()
                    && p.storm.iter().all(|s| s.flows > 0)
                    && p.storm[0].timeouts > 0
                    && p.fits.len() == Recovery::ALL.len()
            })
    }

    /// Largest measured storm-slice gain of any countermeasure, percent
    /// — the headline "does any cure help in the timeout-dominated
    /// regime" number.
    pub fn best_storm_gain_pct(&self) -> f64 {
        self.providers
            .iter()
            .flat_map(|p| p.storm.iter().skip(1))
            .map(|s| s.gain_pct)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Per-scale knobs: (campaign seeds, campaign flow duration, storm
/// seeds, storm flow duration).
fn knobs(scale: Scale) -> (u64, SimDuration, u64, SimDuration) {
    match scale {
        Scale::Smoke => (2, SimDuration::from_secs(20), 2, SimDuration::from_secs(12)),
        Scale::Standard => (4, SimDuration::from_secs(60), 4, SimDuration::from_secs(30)),
        Scale::Full | Scale::Stress => (
            8,
            SimDuration::from_secs(120),
            6,
            SimDuration::from_secs(60),
        ),
    }
}

/// The recovery-study chaos storm: ~500 ms delay flaps every 2.5 s.
///
/// Each flap holds ACKs back for longer than the first-rung RTO
/// (~200–350 ms on the provider paths) without losing them — the
/// delayed-but-not-lost regime where the baseline times out spuriously.
/// The flap deliberately ends *before* the second backoff rung would
/// expire: a repeat RTO is RFC 5682's "the retransmission was lost too"
/// case and rightly cancels F-RTO, so a longer flap would never let the
/// countermeasure act (verified empirically — at 900 ms every flap
/// climbs the ladder and F-RTO never probes).
pub fn storm_plan(duration: SimDuration) -> StormPlan {
    let flap = SimDuration::from_millis(500);
    let period = SimDuration::from_millis(2500);
    let mut episodes = Vec::new();
    let mut at = SimTime::ZERO + SimDuration::from_millis(600);
    // Leave a flap-sized calm tail so every episode's fallout lands
    // inside the measured window.
    while at + period < SimTime::ZERO + duration {
        episodes.push(StormEpisode {
            at,
            duration: flap,
            kind: StormKind::Flap(flap),
        });
        at += period;
    }
    StormPlan { episodes }
}

fn mean_of(xs: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the study at a scale preset across all providers and variants.
///
/// # Errors
///
/// Returns a displayable message when a campaign fails to build or run.
pub fn run_recovery_study(
    scale: Scale,
    workers: Option<usize>,
) -> Result<RecoveryStudyReport, String> {
    let (camp_seeds, camp_duration, storm_seeds, storm_duration) = knobs(scale);
    // One cache across every (provider × recovery) campaign: keys embed
    // the recovery axis, so variants can never collide and reruns of the
    // same slice stay warm.
    let cache = FlowCache::new(CacheConfig::memory_only());
    let estimate = EstimateConfig::default();
    let plan = storm_plan(storm_duration);
    let mut scratch = Scratch::new();

    let mut campaign_flows = 0;
    let mut providers = Vec::new();
    for provider in Provider::ALL {
        // Campaign slice: high-speed flows through the engine.
        let mut campaign_rows = Vec::new();
        for recovery in Recovery::ALL {
            let configs = (0..camp_seeds).map(|i| ScenarioConfig {
                provider,
                motion: Motion::HighSpeed,
                seed: CAMPAIGN_SEED_BASE + i,
                duration: camp_duration,
                flow: i as u32,
                recovery,
                ..ScenarioConfig::default()
            });
            let mut builder = Campaign::builder()
                .configs(configs)
                .cache(CacheConfig::memory_only());
            if let Some(w) = workers {
                builder = builder.workers(w);
            }
            let campaign = builder.build().map_err(|e| e.to_string())?;
            let output = campaign.run_with_cache(&cache).map_err(|e| e.to_string())?;
            let summaries: Vec<_> = output.summaries().cloned().collect();
            campaign_flows = summaries.len();
            campaign_rows.push(evaluate_labeled(recovery.label(), &summaries, &estimate));
        }

        // Storm slice: stationary flows under the delay-flap storm.
        let mut storm_rows = Vec::new();
        let mut baseline_summaries: Vec<FlowSummary> = Vec::new();
        for recovery in Recovery::ALL {
            let mut summaries = Vec::new();
            let (mut timeouts, mut undone, mut probes, mut skipped) = (0u64, 0u64, 0u64, 0u64);
            for i in 0..storm_seeds {
                let config = ScenarioConfig {
                    provider,
                    motion: Motion::Stationary,
                    seed: STORM_SEED_BASE + i,
                    duration: storm_duration,
                    flow: i as u32,
                    recovery,
                    ..ScenarioConfig::default()
                };
                let out = try_run_storm_scenario_with(&mut scratch, &config, &plan)
                    .map_err(|e| e.to_string())?;
                timeouts += out.outcome.sender.timeouts.len() as u64;
                undone += out.outcome.sender.spurious_rto_undone;
                probes += out.outcome.sender.frto_probes;
                skipped += out.outcome.sender.backoff_skipped;
                summaries.push(out.analysis.summary);
            }
            storm_rows.push(StormSlice {
                label: recovery.label().to_owned(),
                flows: summaries.len(),
                mean_throughput_sps: mean_of(summaries.iter().map(|s| s.throughput_sps)),
                mean_p_a: mean_of(summaries.iter().map(|s| s.p_a)),
                mean_q_hat: mean_of(summaries.iter().map(|s| s.q_hat)),
                timeouts,
                spurious_undone: undone,
                frto_probes: probes,
                backoff_skipped: skipped,
                gain_pct: 0.0,
            });
            if recovery == Recovery::None {
                baseline_summaries = summaries;
            }
        }
        let baseline_sps = storm_rows[0].mean_throughput_sps;
        for row in &mut storm_rows {
            row.gain_pct = if baseline_sps > 0.0 {
                (row.mean_throughput_sps / baseline_sps - 1.0) * 100.0
            } else {
                0.0
            };
        }

        // Fit: baseline flows → ModelParams → predicted gains.
        let labels = STRATEGY_LABELS;
        let mut pred_gain = [0.0f64; 4];
        let mut pred_fail = [0.0f64; 4];
        let mut fitted = 0u32;
        for summary in &baseline_summaries {
            let mut params = estimate_params(summary, &estimate);
            // The delay storm's spurious timeouts are ACK-burst failures
            // the loss-based estimator cannot see (nothing is dropped):
            // a burst held past the RTO fails for timer purposes exactly
            // like a lost one. Fold the measured spurious-timeout rate
            // in as an effective per-round burst-failure floor on `P_a`.
            let rounds = (summary.duration_s / params.rtt_s.max(1e-6)).max(1.0);
            let p_a_storm = (f64::from(summary.spurious_timeouts) / rounds).clamp(0.0, 0.5);
            params.p_a_burst = params.p_a_burst.max(p_a_storm);
            if let Ok(predictions) = predict(&params) {
                for (k, p) in predictions.iter().enumerate() {
                    pred_gain[k] += p.gain_pct;
                    pred_fail[k] += p.p_fail;
                }
                fitted += 1;
            }
        }
        let fits = labels
            .iter()
            .enumerate()
            .map(|(k, label)| {
                let predicted = if fitted > 0 {
                    pred_gain[k] / f64::from(fitted)
                } else {
                    0.0
                };
                let measured = storm_rows[k].gain_pct;
                VariantFit {
                    label: (*label).to_owned(),
                    measured_gain_pct: measured,
                    predicted_gain_pct: predicted,
                    abs_error_pp: (measured - predicted).abs(),
                    predicted_p_fail: if fitted > 0 {
                        pred_fail[k] / f64::from(fitted)
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        providers.push(ProviderStudy {
            provider: provider.name().to_owned(),
            campaign: campaign_rows,
            storm: storm_rows,
            fits,
        });
    }

    Ok(RecoveryStudyReport {
        engine_version: hsm_runtime::cache::ENGINE_VERSION.to_owned(),
        scale: format!("{scale:?}"),
        campaign_flows_per_slice: campaign_flows,
        storm_flows_per_slice: storm_seeds as usize,
        providers,
    })
}

/// One printable line per storm slice (the `repro recovery-study`
/// stdout).
pub fn render_storm_row(provider: &str, row: &StormSlice) -> String {
    format!(
        "{:13} {:12} storm {:8.2} sps ({:+7.1} %)  P_a {:.4}  q {:.3}  to {:4}  undone {:3}  probes {:3}  no-backoff {:3}",
        provider,
        row.label,
        row.mean_throughput_sps,
        row.gain_pct,
        row.mean_p_a,
        row.mean_q_hat,
        row.timeouts,
        row.spurious_undone,
        row.frto_probes,
        row.backoff_skipped,
    )
}

/// One printable measured-vs-modeled line per variant.
pub fn render_fit_row(provider: &str, fit: &VariantFit) -> String {
    format!(
        "{:13} {:12} gain measured {:+7.1} %  modeled {:+7.1} %  |err| {:5.1} pp  p' {:.4}",
        provider,
        fit.label,
        fit.measured_gain_pct,
        fit.predicted_gain_pct,
        fit.abs_error_pp,
        fit.predicted_p_fail,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_plan_fits_inside_the_flow_and_is_periodic() {
        let plan = storm_plan(SimDuration::from_secs(12));
        assert!(plan.episodes.len() >= 4, "{:?}", plan.episodes.len());
        let end = SimTime::ZERO + SimDuration::from_secs(12);
        for ep in &plan.episodes {
            assert!(ep.at + ep.duration < end);
            assert_eq!(ep.kind, StormKind::Flap(SimDuration::from_millis(500)));
        }
        for pair in plan.episodes.windows(2) {
            assert_eq!(pair[1].at, pair[0].at + SimDuration::from_millis(2500));
        }
    }

    #[test]
    fn smoke_study_covers_every_provider_and_variant() {
        let report = run_recovery_study(Scale::Smoke, Some(2)).expect("study runs");
        assert!(report.complete(), "incomplete study: {report:?}");
        assert_eq!(report.providers.len(), Provider::ALL.len());
        for study in &report.providers {
            let labels: Vec<&str> = study.storm.iter().map(|s| s.label.as_str()).collect();
            assert_eq!(labels, ["None", "RedundantRto", "Frto", "AckRobust"]);
            // The storm must actually bite: the baseline times out, and
            // the strategy-specific counters fire only for their owners.
            assert!(study.storm[0].timeouts > 0, "{}", study.provider);
            assert_eq!(study.storm[0].spurious_undone, 0);
            assert_eq!(study.storm[0].frto_probes, 0);
            assert_eq!(study.storm[0].backoff_skipped, 0);
            assert!(
                study.storm[2].frto_probes > 0,
                "{} F-RTO never probed",
                study.provider
            );
            assert!(
                study.storm[3].backoff_skipped > 0,
                "{} AckRobust never withheld a backoff",
                study.provider
            );
            for fit in &study.fits {
                assert!(fit.predicted_p_fail >= 0.0 && fit.predicted_p_fail < 1.0);
            }
            // The storm-aware fit must see the flap-induced spurious
            // timeouts: with them folded into `P_a`, the model predicts
            // a strictly positive F-RTO gain.
            assert!(
                study.fits[2].predicted_gain_pct > 0.0,
                "{} modeled F-RTO gain not positive",
                study.provider
            );
            assert!(
                (study.fits[0].measured_gain_pct).abs() < 1e-9,
                "None must be its own baseline"
            );
        }
        // At least one countermeasure must show a meaningful measured
        // gain in the timeout-dominated regime (the Fig. 12 claim).
        assert!(
            report.best_storm_gain_pct() > 1.0,
            "no cure helped: best gain {:.2} %",
            report.best_storm_gain_pct()
        );
        let json = serde_json::to_string(&report).expect("report serializes");
        for label in STRATEGY_LABELS {
            assert!(json.contains(&format!("\"label\":\"{label}\"")), "{label}");
        }
    }
}
