//! # hsm-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper from the synthetic
//! substrate:
//!
//! * [`registry`] — id → experiment mapping (`table1`, `headline`,
//!   `fig1`–`fig12`, `table3`, `va_delack`, `vb_qsweep`);
//! * [`experiments`] — one module per regenerated artifact;
//! * [`context`] — scale presets (smoke / standard / full) and cached
//!   dataset generation;
//! * [`report`] — printable/CSV-exportable results.
//!
//! Run the `repro` binary to print paper-vs-measured for any experiment:
//!
//! ```text
//! repro fig10            # one experiment at standard scale
//! repro all --full       # everything at the full 255-flow scale
//! repro fig3 --csv out/  # also export the figure data as CSV
//! ```
//!
//! Criterion benches (`cargo bench`) time each experiment at smoke scale
//! plus the hot kernels (engine, models, analyses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc_study;
pub mod cli;
pub mod context;
pub mod experiments;
pub mod recovery_study;
pub mod registry;
pub mod report;
pub mod simnet_bench;

/// Parallel repetition helpers, promoted to `hsm-runtime`; re-exported
/// here so `hsm_bench::parallel::par_map` call sites keep working.
pub use hsm_runtime::parallel;

pub use cli::Opts;
pub use context::{Ctx, Scale};
pub use registry::{find, run_all, Experiment, EXPERIMENTS};
pub use report::ExperimentResult;
pub use simnet_bench::SimnetBench;
