//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                  # list experiments
//! repro all              # run everything (standard scale)
//! repro fig10 fig12      # run a subset
//! repro all --full       # full 255-flow scale (minutes)
//! repro all --smoke      # fastest sanity pass
//! repro fig3 --csv out/  # export each table as CSV too
//! ```

use hsm_bench::{Ctx, Scale, EXPERIMENTS};
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::{Campaign, CampaignReport};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// Cold-vs-warm engine telemetry written as `BENCH_campaign.json` so the
/// performance trajectory of the campaign engine accumulates over time.
#[derive(Debug, Serialize)]
struct CampaignBench {
    scale: String,
    cold: CampaignReport,
    warm: CampaignReport,
}

/// Runs the scale's dataset twice through the campaign engine against one
/// shared cache — the first pass simulates, the second must be served
/// entirely from memoized flows — and writes both reports.
fn write_campaign_bench(scale: Scale) -> Result<(), String> {
    let campaign = Campaign::builder()
        .dataset(&scale.dataset_config())
        .cache(CacheConfig::memory_only())
        .build()
        .map_err(|e| e.to_string())?;
    let cache = FlowCache::new(CacheConfig::memory_only());
    let cold = campaign.run_with_cache(&cache).map_err(|e| e.to_string())?;
    let warm = campaign.run_with_cache(&cache).map_err(|e| e.to_string())?;
    let bench = CampaignBench {
        scale: format!("{scale:?}"),
        cold: cold.report,
        warm: warm.report,
    };
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_campaign.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// Runs one cold campaign at `scale` and writes the simulator-throughput
/// sample as `BENCH_simnet.json` (the CI bench gate's input).
fn write_simnet_bench(scale: Scale) -> Result<(), String> {
    let bench = hsm_bench::simnet_bench::measure(scale)?;
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_simnet.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

fn usage() {
    println!("usage: repro [all | bench | <id>...] [--smoke | --full] [--csv DIR]\n");
    println!("experiments:");
    for e in EXPERIMENTS {
        println!("  {:10} {}", e.id, e.about);
    }
    println!("\n`repro bench` runs no experiments: it only regenerates the");
    println!("BENCH_campaign.json / BENCH_simnet.json telemetry files.");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Standard;
    let mut csv_dir: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::SUCCESS;
    }

    let bench_only = ids.iter().all(|i| i == "bench") && ids.iter().any(|i| i == "bench");
    let run_all = ids.iter().any(|i| i == "all");
    let selected: Vec<_> = if bench_only {
        Vec::new()
    } else if run_all {
        EXPERIMENTS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match hsm_bench::find(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{id}` (try --help)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let ctx = Ctx::new(scale);
    for e in selected {
        let result = (e.run)(&ctx);
        println!("{}", result.to_text());
        if let Some(dir) = &csv_dir {
            if let Err(err) = result.save_csv(dir) {
                eprintln!("failed to write CSVs for {}: {err}", result.id);
                return ExitCode::FAILURE;
            }
        }
    }
    match write_campaign_bench(scale) {
        Ok(()) => println!("wrote BENCH_campaign.json"),
        Err(err) => {
            eprintln!("failed to write BENCH_campaign.json: {err}");
            return ExitCode::FAILURE;
        }
    }
    match write_simnet_bench(scale) {
        Ok(()) => println!("wrote BENCH_simnet.json"),
        Err(err) => {
            eprintln!("failed to write BENCH_simnet.json: {err}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
