//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro                  # list experiments
//! repro all              # run everything (standard scale)
//! repro fig10 fig12      # run a subset
//! repro all --full       # full 255-flow scale (minutes)
//! repro all --smoke      # fastest sanity pass
//! repro fig3 --csv out/  # export each table as CSV too
//! ```

use hsm_bench::{Ctx, Scale, EXPERIMENTS};
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::{Campaign, CampaignReport};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// One worker count's cold/warm pair in the campaign bench matrix.
#[derive(Debug, Serialize)]
struct MatrixEntry {
    /// Worker threads used for this row.
    workers: usize,
    /// Cold-run simulator events per second of campaign wall-clock.
    cold_events_per_sec: f64,
    /// Mean fraction of the cold wall-clock each worker spent busy.
    cold_utilization: f64,
    /// Warm (fully memoized) rerun wall-clock, seconds.
    warm_wall_clock_s: f64,
    /// Full cold-run telemetry (per-worker flows and busy seconds).
    cold: CampaignReport,
    /// Full warm-run telemetry.
    warm: CampaignReport,
}

/// Multi-worker engine telemetry written as `BENCH_campaign.json` so the
/// performance trajectory of the campaign engine accumulates over time.
///
/// The flat fields up front exist for `tools/bench_gate.sh`, which parses
/// single-line JSON with grep — they must stay top-level, uniquely named,
/// and declared before `matrix`.
#[derive(Debug, Serialize)]
struct CampaignBench {
    scale: String,
    flows: usize,
    host_cores: usize,
    max_workers: usize,
    cold_eps_w1: f64,
    cold_eps_w2: f64,
    cold_eps_w4: f64,
    cold_eps_max: f64,
    speedup_w4: f64,
    speedup_max: f64,
    matrix: Vec<MatrixEntry>,
}

/// Runs the Stress dataset (≥ 2,000 two-second flows — campaign overhead
/// dominates, which is the point) through the campaign engine at each
/// worker count in {1, 2, 4, max}: per count, one cold pass against a
/// fresh cache, then a warm pass that must be served entirely from
/// memoized flows. Writes the full matrix plus gate-friendly flat fields.
fn write_campaign_bench() -> Result<(), String> {
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let scale = Scale::Stress;
    let dataset = scale.dataset_config();
    let mut counts = vec![1usize, 2, 4, host_cores];
    counts.sort_unstable();
    counts.dedup();

    let mut matrix = Vec::new();
    for &workers in &counts {
        let campaign = Campaign::builder()
            .dataset(&dataset)
            .workers(workers)
            .cache(CacheConfig::memory_only())
            .build()
            .map_err(|e| e.to_string())?;
        let cache = FlowCache::new(CacheConfig::memory_only());
        let cold = campaign
            .run_with_cache(&cache)
            .map_err(|e| e.to_string())?
            .report;
        let warm = campaign
            .run_with_cache(&cache)
            .map_err(|e| e.to_string())?
            .report;
        matrix.push(MatrixEntry {
            workers,
            cold_events_per_sec: cold.events_per_sec(),
            cold_utilization: cold.worker_utilization(),
            warm_wall_clock_s: warm.wall_clock_s,
            cold,
            warm,
        });
    }

    let eps = |w: usize| {
        matrix
            .iter()
            .find(|m| m.workers == w)
            .map_or(0.0, |m| m.cold_events_per_sec)
    };
    let speedup = |n: f64, d: f64| if d > 0.0 { n / d } else { 0.0 };
    let bench = CampaignBench {
        scale: format!("{scale:?}"),
        flows: matrix.first().map_or(0, |m| m.cold.flows),
        host_cores,
        max_workers: host_cores,
        cold_eps_w1: eps(1),
        cold_eps_w2: eps(2),
        cold_eps_w4: eps(4),
        cold_eps_max: eps(host_cores),
        speedup_w4: speedup(eps(4), eps(1)),
        speedup_max: speedup(eps(host_cores), eps(1)),
        matrix,
    };
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_campaign.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// Runs one cold campaign at `scale` and writes the simulator-throughput
/// sample as `BENCH_simnet.json` (the CI bench gate's input).
fn write_simnet_bench(scale: Scale) -> Result<(), String> {
    let bench = hsm_bench::simnet_bench::measure(scale)?;
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_simnet.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// `repro chaos --seed N --cases M [--workers W]`: the fault-injection
/// and differential-testing harness. Writes the full `ChaosReport` as
/// `CHAOS_report.json`; on any oracle violation or failed drill also
/// writes `chaos-failure.json` (violations with their shrunk minimal
/// configs — the artifact CI uploads) and exits non-zero.
fn run_chaos_cmd(args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = hsm_chaos::ChaosOptions::default();
    let mut iter = args;
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = iter.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        let parsed = match arg.as_str() {
            "--seed" => take("--seed")
                .and_then(|v| v.parse().ok())
                .map(|v| opts.seed = v),
            "--cases" => take("--cases")
                .and_then(|v| v.parse().ok())
                .map(|v| opts.cases = v),
            "--workers" => take("--workers")
                .and_then(|v| v.parse().ok())
                .map(|v| opts.workers = v),
            other => {
                eprintln!("unknown chaos option `{other}`");
                eprintln!("usage: repro chaos [--seed N] [--cases M] [--workers W]");
                return ExitCode::FAILURE;
            }
        };
        if parsed.is_none() {
            eprintln!("invalid value for {arg}");
            return ExitCode::FAILURE;
        }
    }

    // The worker-death drill kills workers with deliberate panics; keep
    // those out of stderr while letting genuine panics through.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("chaos:"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));

    let report = hsm_chaos::run_chaos(&opts);

    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to serialize chaos report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write("CHAOS_report.json", &json) {
        eprintln!("failed to write CHAOS_report.json: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos: seed {} cases {} workers {} -> {} violations, {}/{} drills passed, \
         region {} flows (mean D enhanced {:.4} vs padhye {:.4}), {:.1}s",
        report.seed,
        report.cases,
        report.workers,
        report.violations.len(),
        report.drills.iter().filter(|d| d.passed).count(),
        report.drills.len(),
        report.aggregate.region_flows,
        report.aggregate.mean_d_enhanced,
        report.aggregate.mean_d_padhye,
        report.wall_s,
    );
    if report.ok() {
        println!("chaos: all oracles held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!(
                "violation [case {} | {}]: {}\n  reproduce: seed {} case {}\n  shrunk: {:?}",
                v.case, v.check, v.detail, report.seed, v.case, v.shrunk
            );
        }
        for d in report.drills.iter().filter(|d| !d.passed) {
            eprintln!("drill failed [{}]: {}", d.name, d.detail);
        }
        if !report.aggregate.skipped && !report.aggregate.within_envelope {
            eprintln!(
                "aggregate oracle failed: mean D enhanced {:.4} (envelope {:.4}) vs padhye {:.4}",
                report.aggregate.mean_d_enhanced,
                report.aggregate.envelope,
                report.aggregate.mean_d_padhye
            );
        }
        if let Err(e) = std::fs::write("chaos-failure.json", &json) {
            eprintln!("failed to write chaos-failure.json: {e}");
        }
        ExitCode::FAILURE
    }
}

/// `repro cc-study [--smoke | --full] [--workers W]`: runs the Table-I
/// campaign once per congestion-control zoo member and evaluates the
/// enhanced/Padhye models against each. Writes `CC_STUDY.json`; exits
/// non-zero when any controller's slice comes back empty.
fn run_cc_study_cmd(args: impl Iterator<Item = String>) -> ExitCode {
    let mut scale = Scale::Standard;
    let mut workers = None;
    let mut iter = args;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(w) => workers = Some(w),
                None => {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown cc-study option `{other}`");
                eprintln!("usage: repro cc-study [--smoke | --full] [--workers W]");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match hsm_bench::cc_study::run_cc_study(scale, workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cc-study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to serialize cc-study report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write("CC_STUDY.json", &json) {
        eprintln!("failed to write CC_STUDY.json: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "cc-study: {} controllers x {} flows at {} scale",
        report.rows.len(),
        report.flows_per_cc,
        report.scale
    );
    for row in &report.rows {
        println!("{}", hsm_bench::cc_study::render_row(row));
    }
    println!("wrote CC_STUDY.json");
    if report.complete() {
        ExitCode::SUCCESS
    } else {
        eprintln!("cc-study incomplete: a controller produced no evaluable flows");
        ExitCode::FAILURE
    }
}

fn usage() {
    println!("usage: repro [all | bench | <id>...] [--smoke | --full] [--csv DIR]");
    println!("       repro chaos [--seed N] [--cases M] [--workers W]");
    println!("       repro cc-study [--smoke | --full] [--workers W]\n");
    println!("experiments:");
    for e in EXPERIMENTS {
        println!("  {:10} {}", e.id, e.about);
    }
    println!("\n`repro bench` runs no experiments: it only regenerates the");
    println!("BENCH_campaign.json / BENCH_simnet.json telemetry files.");
    println!("`repro chaos` runs the seeded fault-injection harness and");
    println!("writes CHAOS_report.json (plus chaos-failure.json and a");
    println!("non-zero exit on any oracle violation).");
    println!("`repro cc-study` sweeps the congestion-control zoo through");
    println!("the campaign engine, evaluates the enhanced/Padhye models");
    println!("against each controller, and writes CC_STUDY.json.");
    println!("BENCH_campaign.json always records the Stress-scale worker");
    println!("matrix (cold/warm x workers in {{1, 2, 4, max}}), regardless");
    println!("of the --smoke/--full flags.");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "chaos") {
        return run_chaos_cmd(args.into_iter().skip(1));
    }
    if args.first().is_some_and(|a| a == "cc-study") {
        return run_cc_study_cmd(args.into_iter().skip(1));
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Standard;
    let mut csv_dir: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--full" => scale = Scale::Full,
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::SUCCESS;
    }

    let bench_only = ids.iter().all(|i| i == "bench") && ids.iter().any(|i| i == "bench");
    let run_all = ids.iter().any(|i| i == "all");
    let selected: Vec<_> = if bench_only {
        Vec::new()
    } else if run_all {
        EXPERIMENTS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match hsm_bench::find(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{id}` (try --help)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let ctx = Ctx::new(scale);
    for e in selected {
        let result = (e.run)(&ctx);
        println!("{}", result.to_text());
        if let Some(dir) = &csv_dir {
            if let Err(err) = result.save_csv(dir) {
                eprintln!("failed to write CSVs for {}: {err}", result.id);
                return ExitCode::FAILURE;
            }
        }
    }
    match write_campaign_bench() {
        Ok(()) => println!("wrote BENCH_campaign.json"),
        Err(err) => {
            eprintln!("failed to write BENCH_campaign.json: {err}");
            return ExitCode::FAILURE;
        }
    }
    match write_simnet_bench(scale) {
        Ok(()) => println!("wrote BENCH_simnet.json"),
        Err(err) => {
            eprintln!("failed to write BENCH_simnet.json: {err}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
