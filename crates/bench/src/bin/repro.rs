//! `repro` — regenerate the paper's tables and figures, and drive
//! declarative campaigns.
//!
//! ```text
//! repro                             # list experiments
//! repro all                         # run everything (standard scale)
//! repro fig10 fig12                 # run a subset
//! repro all --full                  # full 255-flow scale (minutes)
//! repro fig3 --csv out/             # export each table as CSV too
//! repro run --spec FILE --shards 4  # sharded declarative campaign
//! repro bench [--spec FILE]         # regenerate BENCH_*.json telemetry
//! repro cc-study [--spec FILE]      # congestion-control model study
//! repro chaos [--spec FILE]         # fault-injection harness
//! ```
//!
//! Every subcommand shares one parsed-options type (`hsm_bench::cli`);
//! `--spec FILE` loads a declarative `CampaignSpec` everywhere it makes
//! sense: `run` executes it (optionally across OS processes), `bench`
//! times it, `cc-study` sweeps the zoo over it, `chaos` round-trip
//! checks it before the harness runs.

use hsm_bench::cli::{self, Opts};
use hsm_bench::{Ctx, Scale, EXPERIMENTS};
use hsm_runtime::cache::{CacheConfig, FlowCache};
use hsm_runtime::engine::{Campaign, CampaignReport};
use hsm_runtime::shard::{
    merge_shards, read_shard_report, run_shard, shard_file_name, write_shard_report, ShardReport,
};
use hsm_scenario::spec::{expansion_digest, load_spec, CampaignSpec};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One worker count's cold/warm pair in the campaign bench matrix.
#[derive(Debug, Serialize)]
struct MatrixEntry {
    /// Worker threads used for this row.
    workers: usize,
    /// Cold-run simulator events per second of campaign wall-clock.
    cold_events_per_sec: f64,
    /// Mean fraction of the cold wall-clock each worker spent busy.
    cold_utilization: f64,
    /// Warm (fully memoized) rerun wall-clock, seconds.
    warm_wall_clock_s: f64,
    /// Full cold-run telemetry (per-worker flows and busy seconds).
    cold: CampaignReport,
    /// Full warm-run telemetry.
    warm: CampaignReport,
}

/// Multi-worker engine telemetry written as `BENCH_campaign.json` so the
/// performance trajectory of the campaign engine accumulates over time.
///
/// The flat fields up front exist for `tools/bench_gate.sh`, which parses
/// single-line JSON with grep — they must stay top-level, uniquely named,
/// and declared before `matrix`.
#[derive(Debug, Serialize)]
struct CampaignBench {
    scale: String,
    flows: usize,
    host_cores: usize,
    max_workers: usize,
    cold_eps_w1: f64,
    cold_eps_w2: f64,
    cold_eps_w4: f64,
    cold_eps_max: f64,
    speedup_w4: f64,
    speedup_max: f64,
    /// Wall-clock of a fully disk-served warm replay (fresh memory tier,
    /// every flow decoded from the binary disk format), seconds.
    warm_disk_wall_s: f64,
    /// Flows per second of the same warm-disk replay.
    warm_disk_flows_per_s: f64,
    /// Full telemetry of the warm-disk replay.
    warm_disk: CampaignReport,
    matrix: Vec<MatrixEntry>,
}

/// Cold/warm telemetry of one spec-driven campaign, written as
/// `BENCH_spec.json` by `repro bench --spec FILE`. Deliberately a
/// separate file from the gate-parsed `BENCH_campaign.json`.
#[derive(Debug, Serialize)]
struct SpecBench {
    spec_name: String,
    spec_digest: u64,
    flows: usize,
    cold_events_per_sec: f64,
    warm_wall_clock_s: f64,
    cold: CampaignReport,
    warm: CampaignReport,
}

/// Runs the Stress dataset (≥ 2,000 two-second flows — campaign overhead
/// dominates, which is the point) through the campaign engine at each
/// worker count in {1, 2, 4, max}: per count, one cold pass against a
/// fresh cache, then a warm pass that must be served entirely from
/// memoized flows. Writes the full matrix plus gate-friendly flat fields.
fn write_campaign_bench() -> Result<(), String> {
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let scale = Scale::Stress;
    let dataset = scale.dataset_config();
    let mut counts = vec![1usize, 2, 4, host_cores];
    counts.sort_unstable();
    counts.dedup();

    let mut matrix = Vec::new();
    for &workers in &counts {
        let campaign = Campaign::builder()
            .dataset(&dataset)
            .workers(workers)
            .cache(CacheConfig::memory_only())
            .build()
            .map_err(|e| e.to_string())?;
        let cache = FlowCache::new(CacheConfig::memory_only());
        let cold = campaign
            .run_with_cache(&cache)
            .map_err(|e| e.to_string())?
            .report;
        let warm = campaign
            .run_with_cache(&cache)
            .map_err(|e| e.to_string())?
            .report;
        matrix.push(MatrixEntry {
            workers,
            cold_events_per_sec: cold.events_per_sec(),
            cold_utilization: cold.worker_utilization(),
            warm_wall_clock_s: warm.wall_clock_s,
            cold,
            warm,
        });
    }

    // Warm-disk replay: populate a disk-only tier once, then time a
    // replay that decodes every flow from the binary on-disk format with
    // a cold memory tier — the number the CI gate holds to its baseline.
    let disk_dir = std::env::temp_dir().join(format!("hsm_bench_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let disk_cfg = CacheConfig {
        memory_entries: 0,
        disk_dir: Some(disk_dir.clone()),
        shards: 0,
    };
    let campaign = Campaign::builder()
        .dataset(&dataset)
        .workers(host_cores)
        .cache(CacheConfig::memory_only())
        .build()
        .map_err(|e| e.to_string())?;
    campaign
        .run_with_cache(&FlowCache::new(disk_cfg.clone()))
        .map_err(|e| e.to_string())?;
    let warm_disk = campaign
        .run_with_cache(&FlowCache::new(disk_cfg))
        .map_err(|e| e.to_string())?
        .report;
    let _ = std::fs::remove_dir_all(&disk_dir);
    if warm_disk.disk_hits != warm_disk.flows as u64 {
        return Err(format!(
            "warm-disk replay was not fully disk-served: {} hits of {} flows",
            warm_disk.disk_hits, warm_disk.flows
        ));
    }

    let eps = |w: usize| {
        matrix
            .iter()
            .find(|m| m.workers == w)
            .map_or(0.0, |m| m.cold_events_per_sec)
    };
    let speedup = |n: f64, d: f64| if d > 0.0 { n / d } else { 0.0 };
    let bench = CampaignBench {
        scale: format!("{scale:?}"),
        flows: matrix.first().map_or(0, |m| m.cold.flows),
        host_cores,
        max_workers: host_cores,
        cold_eps_w1: eps(1),
        cold_eps_w2: eps(2),
        cold_eps_w4: eps(4),
        cold_eps_max: eps(host_cores),
        speedup_w4: speedup(eps(4), eps(1)),
        speedup_max: speedup(eps(host_cores), eps(1)),
        warm_disk_wall_s: warm_disk.wall_clock_s,
        warm_disk_flows_per_s: if warm_disk.wall_clock_s > 0.0 {
            warm_disk.flows as f64 / warm_disk.wall_clock_s
        } else {
            0.0
        },
        warm_disk,
        matrix,
    };
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_campaign.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// Runs one cold campaign at `scale` and writes the simulator-throughput
/// sample as `BENCH_simnet.json` (the CI bench gate's input).
fn write_simnet_bench(scale: Scale) -> Result<(), String> {
    let bench = hsm_bench::simnet_bench::measure(scale)?;
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_simnet.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// Times one spec-driven campaign cold and warm and writes the pair as
/// `BENCH_spec.json`.
fn write_spec_bench(path: &Path, workers: Option<usize>) -> Result<(), String> {
    let spec = load_spec(path).map_err(|e| e.to_string())?;
    let configs = spec.expand().map_err(|e| e.to_string())?;
    let digest = expansion_digest(&configs);
    let mut builder = Campaign::builder()
        .configs(configs)
        .cache(CacheConfig::memory_only());
    if let Some(w) = workers {
        builder = builder.workers(w);
    }
    let campaign = builder.build().map_err(|e| e.to_string())?;
    let cache = FlowCache::new(CacheConfig::memory_only());
    let cold = campaign
        .run_with_cache(&cache)
        .map_err(|e| e.to_string())?
        .report;
    let warm = campaign
        .run_with_cache(&cache)
        .map_err(|e| e.to_string())?
        .report;
    let bench = SpecBench {
        spec_name: spec.name.clone(),
        spec_digest: digest,
        flows: cold.flows,
        cold_events_per_sec: cold.events_per_sec(),
        warm_wall_clock_s: warm.wall_clock_s,
        cold,
        warm,
    };
    let json = serde_json::to_string(&bench).map_err(|e| e.to_string())?;
    std::fs::write("BENCH_spec.json", json).map_err(|e| e.to_string())?;
    Ok(())
}

/// Loads a spec and verifies it is self-consistent: the TOML writer
/// round-trips it exactly and two expansions agree. Returns the spec and
/// its expansion digest.
fn check_spec(path: &Path) -> Result<(CampaignSpec, u64), String> {
    let spec = load_spec(path).map_err(|e| e.to_string())?;
    let text = spec.to_toml();
    let back = CampaignSpec::from_toml(&text)
        .map_err(|e| format!("spec `{}` does not re-parse: {e}", spec.name))?;
    if back != spec {
        return Err(format!(
            "spec `{}` drifts through a TOML round-trip",
            spec.name
        ));
    }
    let a = spec.expand().map_err(|e| e.to_string())?;
    let b = back.expand().map_err(|e| e.to_string())?;
    if a != b {
        return Err(format!(
            "spec `{}` expands non-deterministically",
            spec.name
        ));
    }
    Ok((spec, expansion_digest(&a)))
}

/// `repro run --spec FILE [--shards N | --shard K/N]`: execute a
/// declarative campaign, optionally partitioned across OS processes, and
/// fold the shard reports into one deterministic `merged.json`.
fn run_cmd(args: Vec<String>) -> ExitCode {
    let opts = match cli::parse(
        "run",
        args,
        &[
            "--spec",
            "--shards",
            "--shard",
            "--workers",
            "--out",
            "--cache-dir",
        ],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    match run_campaign(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(format!("run: {e}")),
    }
}

fn run_campaign(opts: &Opts) -> Result<(), String> {
    let Some(spec_path) = &opts.spec else {
        return Err("--spec FILE is required (see examples/specs/)".into());
    };
    let spec = load_spec(spec_path).map_err(|e| e.to_string())?;
    let configs = spec.expand().map_err(|e| e.to_string())?;
    let digest = expansion_digest(&configs);
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("campaign-{}", spec.name)));
    let cache_dir = opts.cache_dir.clone().unwrap_or_else(|| out.join("cache"));

    // Slice mode: this process is one shard of an N-way partition —
    // either a child spawned below or a slice launched on a remote host.
    if let Some((k, n)) = opts.shard {
        let cache = FlowCache::new(CacheConfig::with_disk(&cache_dir));
        let report = run_shard(&spec.name, digest, &configs, k, n, opts.workers, &cache)
            .map_err(|e| e.to_string())?;
        let path = write_shard_report(&out, &report).map_err(|e| e.to_string())?;
        println!(
            "run: shard {k}/{n} of `{}` -> {} flows, wrote {}",
            spec.name,
            report.summaries.len(),
            path.display()
        );
        return Ok(());
    }

    let shards = opts.shards.unwrap_or(1);
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    if shards == 1 {
        // Single-process run through the exact same shard/merge path the
        // multi-process mode uses, so merged.json is trivially comparable.
        let cache = FlowCache::new(CacheConfig::with_disk(&cache_dir));
        let report = run_shard(&spec.name, digest, &configs, 0, 1, opts.workers, &cache)
            .map_err(|e| e.to_string())?;
        write_shard_report(&out, &report).map_err(|e| e.to_string())?;
    } else {
        spawn_shards(spec_path, shards, opts, &out, &cache_dir)?;
    }

    let reports: Vec<ShardReport> = (0..shards)
        .map(|k| read_shard_report(&out.join(shard_file_name(k, shards))))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let merged = merge_shards(&reports).map_err(|e| e.to_string())?;
    let json = serde_json::to_string(&merged).map_err(|e| e.to_string())?;
    let merged_path = out.join("merged.json");
    std::fs::write(&merged_path, &json)
        .map_err(|e| format!("cannot write {}: {e}", merged_path.display()))?;
    println!(
        "run: `{}` -> {} flows across {shards} shard(s), digest {digest:016x}",
        spec.name, merged.flows
    );
    println!("wrote {}", merged_path.display());
    Ok(())
}

/// Spawns one OS process per shard (`repro run --spec F --shard K/N`),
/// all sharing `cache_dir`, and waits for every one to succeed.
fn spawn_shards(
    spec_path: &Path,
    shards: usize,
    opts: &Opts,
    out: &Path,
    cache_dir: &Path,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let mut children = Vec::new();
    for k in 0..shards {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg("--spec")
            .arg(spec_path)
            .arg("--shard")
            .arg(format!("{k}/{shards}"))
            .arg("--out")
            .arg(out)
            .arg("--cache-dir")
            .arg(cache_dir);
        if let Some(w) = opts.workers {
            cmd.arg("--workers").arg(w.to_string());
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn shard {k}/{shards}: {e}"))?;
        children.push((k, child));
    }
    let mut failed = Vec::new();
    for (k, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failed.push(format!("shard {k}/{shards} exited with {status}")),
            Err(e) => failed.push(format!("shard {k}/{shards} could not be awaited: {e}")),
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(failed.join("; "))
    }
}

/// `repro cache migrate --cache-dir DIR`: rewrite every legacy JSON
/// disk-cache entry as a binary entry, in place and atomically. Safe to
/// run while campaigns share the directory; corrupt entries are counted
/// and left for the cache to re-simulate past.
fn cache_cmd(args: Vec<String>) -> ExitCode {
    let usage = "usage: repro cache migrate --cache-dir DIR";
    match args.first().map(String::as_str) {
        Some("migrate") => {}
        _ => return fail(usage),
    }
    let opts = match cli::parse("cache migrate", args[1..].to_vec(), &["--cache-dir"]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let Some(dir) = &opts.cache_dir else {
        return fail(usage);
    };
    match hsm_runtime::cache::migrate_disk_tier(dir) {
        Ok(stats) => {
            println!(
                "cache migrate: {} -> {} migrated, {} already binary, {} corrupt (skipped)",
                dir.display(),
                stats.migrated,
                stats.already_binary,
                stats.corrupt
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("cache migrate: {e}")),
    }
}

/// `repro bench [--smoke | --full] [--spec FILE]`: regenerate the
/// `BENCH_*.json` telemetry files (plus `BENCH_spec.json` with a spec).
fn bench_cmd(args: Vec<String>) -> ExitCode {
    let opts = match cli::parse("bench", args, &["--smoke", "--full", "--workers", "--spec"]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    if let Some(spec) = &opts.spec {
        match write_spec_bench(spec, opts.workers) {
            Ok(()) => println!("wrote BENCH_spec.json"),
            Err(e) => return fail(format!("failed to write BENCH_spec.json: {e}")),
        }
    }
    match write_campaign_bench() {
        Ok(()) => println!("wrote BENCH_campaign.json"),
        Err(e) => return fail(format!("failed to write BENCH_campaign.json: {e}")),
    }
    match write_simnet_bench(opts.scale) {
        Ok(()) => println!("wrote BENCH_simnet.json"),
        Err(e) => return fail(format!("failed to write BENCH_simnet.json: {e}")),
    }
    ExitCode::SUCCESS
}

/// `repro chaos [--seed N] [--cases M] [--workers W] [--spec FILE]`: the
/// fault-injection and differential-testing harness. Writes the full
/// `ChaosReport` as `CHAOS_report.json`; on any oracle violation or
/// failed drill also writes `chaos-failure.json` (violations with their
/// shrunk minimal configs — the artifact CI uploads) and exits non-zero.
/// With `--spec`, the spec is round-trip checked first.
fn chaos_cmd(args: Vec<String>) -> ExitCode {
    let parsed = match cli::parse("chaos", args, &["--seed", "--cases", "--workers", "--spec"]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    if let Some(spec) = &parsed.spec {
        match check_spec(spec) {
            Ok((spec, digest)) => println!(
                "chaos: spec `{}` round-trips ({} scenario grids, digest {digest:016x})",
                spec.name,
                spec.scenarios.len()
            ),
            Err(e) => return fail(format!("chaos: spec check failed: {e}")),
        }
    }
    let mut opts = hsm_chaos::ChaosOptions::default();
    if let Some(seed) = parsed.seed {
        opts.seed = seed;
    }
    if let Some(cases) = parsed.cases {
        opts.cases = cases;
    }
    if let Some(workers) = parsed.workers {
        opts.workers = workers;
    }

    // The worker-death drill kills workers with deliberate panics; keep
    // those out of stderr while letting genuine panics through.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("chaos:"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));

    let report = hsm_chaos::run_chaos(&opts);

    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => return fail(format!("failed to serialize chaos report: {e}")),
    };
    if let Err(e) = std::fs::write("CHAOS_report.json", &json) {
        return fail(format!("failed to write CHAOS_report.json: {e}"));
    }
    println!(
        "chaos: seed {} cases {} workers {} -> {} violations, {}/{} drills passed, \
         region {} flows (mean D enhanced {:.4} vs padhye {:.4}), {:.1}s",
        report.seed,
        report.cases,
        report.workers,
        report.violations.len(),
        report.drills.iter().filter(|d| d.passed).count(),
        report.drills.len(),
        report.aggregate.region_flows,
        report.aggregate.mean_d_enhanced,
        report.aggregate.mean_d_padhye,
        report.wall_s,
    );
    if report.ok() {
        println!("chaos: all oracles held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!(
                "violation [case {} | {}]: {}\n  reproduce: seed {} case {}\n  shrunk: {:?}",
                v.case, v.check, v.detail, report.seed, v.case, v.shrunk
            );
        }
        for d in report.drills.iter().filter(|d| !d.passed) {
            eprintln!("drill failed [{}]: {}", d.name, d.detail);
        }
        if !report.aggregate.skipped && !report.aggregate.within_envelope {
            eprintln!(
                "aggregate oracle failed: mean D enhanced {:.4} (envelope {:.4}) vs padhye {:.4}",
                report.aggregate.mean_d_enhanced,
                report.aggregate.envelope,
                report.aggregate.mean_d_padhye
            );
        }
        if !report.aggregate.batch_parity {
            eprintln!("batched model re-evaluation diverged from the scalar per-case predictions");
        }
        if let Err(e) = std::fs::write("chaos-failure.json", &json) {
            eprintln!("failed to write chaos-failure.json: {e}");
        }
        ExitCode::FAILURE
    }
}

/// `repro cc-study [--smoke | --full] [--workers W] [--spec FILE]`: runs
/// a campaign once per congestion-control zoo member — the Table-I grid
/// by default, a spec expansion with `--spec` — and evaluates the
/// enhanced/Padhye models against each. Writes `CC_STUDY.json`; exits
/// non-zero when any controller's slice comes back empty.
fn cc_study_cmd(args: Vec<String>) -> ExitCode {
    let opts = match cli::parse(
        "cc-study",
        args,
        &["--smoke", "--full", "--workers", "--spec"],
    ) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let report = match &opts.spec {
        Some(path) => load_spec(path).map_err(|e| e.to_string()).and_then(|spec| {
            let configs = spec.expand().map_err(|e| e.to_string())?;
            hsm_bench::cc_study::run_cc_study_over(
                &configs,
                &format!("spec:{}", spec.name),
                opts.workers,
            )
        }),
        None => hsm_bench::cc_study::run_cc_study(opts.scale, opts.workers),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return fail(format!("cc-study failed: {e}")),
    };
    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => return fail(format!("failed to serialize cc-study report: {e}")),
    };
    if let Err(e) = std::fs::write("CC_STUDY.json", &json) {
        return fail(format!("failed to write CC_STUDY.json: {e}"));
    }
    println!(
        "cc-study: {} controllers x {} flows at {} scale",
        report.rows.len(),
        report.flows_per_cc,
        report.scale
    );
    for row in &report.rows {
        println!("{}", hsm_bench::cc_study::render_row(row));
    }
    println!("wrote CC_STUDY.json");
    if report.complete() {
        ExitCode::SUCCESS
    } else {
        fail("cc-study incomplete: a controller produced no evaluable flows")
    }
}

/// `repro recovery-study [--smoke | --full] [--workers W]`: measures the
/// §V loss-recovery countermeasures per provider — a high-speed campaign
/// slice plus a chaos-storm (delayed-but-not-lost ACK flap) slice per
/// variant — and fits the model's predicted gains against the measured
/// ones. Writes `RECOVERY_report.json`; exits non-zero when any slice
/// comes back empty or the storm never drove the baseline into timeouts.
fn recovery_study_cmd(args: Vec<String>) -> ExitCode {
    let opts = match cli::parse("recovery-study", args, &["--smoke", "--full", "--workers"]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let report = match hsm_bench::recovery_study::run_recovery_study(opts.scale, opts.workers) {
        Ok(r) => r,
        Err(e) => return fail(format!("recovery-study failed: {e}")),
    };
    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => return fail(format!("failed to serialize recovery-study report: {e}")),
    };
    if let Err(e) = std::fs::write("RECOVERY_report.json", &json) {
        return fail(format!("failed to write RECOVERY_report.json: {e}"));
    }
    println!(
        "recovery-study: {} providers x {} variants ({} campaign + {} storm flows each) at {} scale",
        report.providers.len(),
        report.providers.first().map_or(0, |p| p.storm.len()),
        report.campaign_flows_per_slice,
        report.storm_flows_per_slice,
        report.scale
    );
    for study in &report.providers {
        for row in &study.storm {
            println!(
                "{}",
                hsm_bench::recovery_study::render_storm_row(&study.provider, row)
            );
        }
        for fit in &study.fits {
            println!(
                "{}",
                hsm_bench::recovery_study::render_fit_row(&study.provider, fit)
            );
        }
    }
    println!("best storm gain: {:+.1} %", report.best_storm_gain_pct());
    println!("wrote RECOVERY_report.json");
    if report.complete() {
        ExitCode::SUCCESS
    } else {
        fail("recovery-study incomplete: an empty slice or a storm that never bit")
    }
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn usage() {
    println!("usage: repro [all | bench | <id>...] [--smoke | --full] [--csv DIR]");
    println!("       repro run --spec FILE [--shards N | --shard K/N] [--workers W]");
    println!("                 [--out DIR] [--cache-dir DIR]");
    println!("       repro bench [--smoke | --full] [--spec FILE] [--workers W]");
    println!("       repro cache migrate --cache-dir DIR");
    println!("       repro chaos [--seed N] [--cases M] [--workers W] [--spec FILE]");
    println!("       repro cc-study [--smoke | --full] [--workers W] [--spec FILE]");
    println!("       repro recovery-study [--smoke | --full] [--workers W]\n");
    println!("experiments:");
    for e in EXPERIMENTS {
        println!("  {:10} {}", e.id, e.about);
    }
    println!("\n`repro run` executes a declarative campaign spec: `--shards N`");
    println!("spawns N OS processes sharing one disk cache, `--shard K/N`");
    println!("runs a single slice (e.g. on a remote host), and the merged");
    println!("merged.json is bit-identical for every shard count.");
    println!("`repro bench` runs no experiments: it only regenerates the");
    println!("BENCH_campaign.json / BENCH_simnet.json telemetry files");
    println!("(plus BENCH_spec.json when given --spec).");
    println!("`repro chaos` runs the seeded fault-injection harness and");
    println!("writes CHAOS_report.json (plus chaos-failure.json and a");
    println!("non-zero exit on any oracle violation).");
    println!("`repro cc-study` sweeps the congestion-control zoo through");
    println!("the campaign engine, evaluates the enhanced/Padhye models");
    println!("against each controller, and writes CC_STUDY.json.");
    println!("`repro recovery-study` measures the loss-recovery zoo per");
    println!("provider under a delayed-ACK chaos storm, fits the model's");
    println!("predicted gains, and writes RECOVERY_report.json.");
    println!("BENCH_campaign.json always records the Stress-scale worker");
    println!("matrix (cold/warm x workers in {{1, 2, 4, max}}), regardless");
    println!("of the --smoke/--full flags.");
}

/// The default (experiment-runner) command: `repro [<id>...] [flags]`.
fn experiments_cmd(args: Vec<String>) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    let opts = match cli::parse("repro", args, &["--smoke", "--full", "--csv", "ID"]) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    if opts.ids.is_empty() {
        usage();
        return ExitCode::SUCCESS;
    }

    let run_all = opts.ids.iter().any(|i| i == "all");
    let selected: Vec<_> = if run_all {
        EXPERIMENTS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &opts.ids {
            match hsm_bench::find(id) {
                Some(e) => sel.push(e),
                None => return fail(format!("unknown experiment `{id}` (try --help)")),
            }
        }
        sel
    };

    let ctx = Ctx::new(opts.scale);
    for e in selected {
        let result = (e.run)(&ctx);
        println!("{}", result.to_text());
        if let Some(dir) = &opts.csv {
            if let Err(err) = result.save_csv(dir) {
                return fail(format!("failed to write CSVs for {}: {err}", result.id));
            }
        }
    }
    match write_campaign_bench() {
        Ok(()) => println!("wrote BENCH_campaign.json"),
        Err(err) => return fail(format!("failed to write BENCH_campaign.json: {err}")),
    }
    match write_simnet_bench(opts.scale) {
        Ok(()) => println!("wrote BENCH_simnet.json"),
        Err(err) => return fail(format!("failed to write BENCH_simnet.json: {err}")),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = |a: &[String]| a[1..].to_vec();
    match args.first().map(String::as_str) {
        Some("run") => run_cmd(rest(&args)),
        Some("cache") => cache_cmd(rest(&args)),
        Some("bench") => bench_cmd(rest(&args)),
        Some("chaos") => chaos_cmd(rest(&args)),
        Some("cc-study") => cc_study_cmd(rest(&args)),
        Some("recovery-study") => recovery_study_cmd(rest(&args)),
        _ => experiments_cmd(args),
    }
}
