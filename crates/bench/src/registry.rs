//! The experiment registry: id → runner, in paper order.

use crate::context::Ctx;
use crate::experiments as ex;
use crate::report::ExperimentResult;

/// A registered experiment.
pub struct Experiment {
    /// Stable id used on the command line (`repro fig10`).
    pub id: &'static str,
    /// Short description.
    pub about: &'static str,
    /// The runner.
    pub run: fn(&Ctx) -> ExperimentResult,
}

/// All experiments, in the paper's order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "table1",
        about: "Table I — the dataset",
        run: ex::table1::run,
    },
    Experiment {
        id: "headline",
        about: "§III headline statistics (calibration)",
        run: ex::headline::run,
    },
    Experiment {
        id: "fig1",
        about: "Fig. 1 — one-way delay scatter",
        run: ex::fig01_arrival::run,
    },
    Experiment {
        id: "fig2",
        about: "Fig. 2 — timeout recovery detail",
        run: ex::fig02_recovery::run,
    },
    Experiment {
        id: "fig3",
        about: "Fig. 3 — loss-rate CDFs",
        run: ex::fig03_loss_cdf::run,
    },
    Experiment {
        id: "fig4",
        about: "Fig. 4 — ACK loss vs timeouts",
        run: ex::fig04_ack_timeout::run,
    },
    Experiment {
        id: "fig5",
        about: "Fig. 5 — ACK-burst timeout cases",
        run: ex::fig05_burst_cases::run,
    },
    Experiment {
        id: "fig6",
        about: "Fig. 6 — ACK-loss CDFs",
        run: ex::fig06_ack_cdf::run,
    },
    Experiment {
        id: "fig7",
        about: "Fig. 7 — window evolution in CA phases",
        run: ex::window_evolution::run_fig7,
    },
    Experiment {
        id: "fig8",
        about: "Fig. 8 — CA/timeout cycles",
        run: ex::window_evolution::run_fig8,
    },
    Experiment {
        id: "fig9",
        about: "Fig. 9 — window limitation",
        run: ex::window_evolution::run_fig9,
    },
    Experiment {
        id: "table3",
        about: "Table III — CA-phase round distribution",
        run: ex::table3::run,
    },
    Experiment {
        id: "fig10",
        about: "Fig. 10 — model accuracy",
        run: ex::fig10_accuracy::run,
    },
    Experiment {
        id: "fig11",
        about: "Fig. 11 — one surviving ACK",
        run: ex::fig11_single_ack::run,
    },
    Experiment {
        id: "fig12",
        about: "Fig. 12 — MPTCP vs TCP",
        run: ex::fig12_mptcp::run,
    },
    Experiment {
        id: "va_delack",
        about: "§V-A — delayed-ACK analysis",
        run: ex::va_delack::run,
    },
    Experiment {
        id: "vb_qsweep",
        about: "§V-B — reliable retransmission",
        run: ex::vb_qsweep::run,
    },
    Experiment {
        id: "ext_cc",
        about: "extension — Reno/NewReno/Veno ablation",
        run: ex::extensions::run_cc,
    },
    Experiment {
        id: "ext_delack",
        about: "extension — adaptive delayed ACKs (TCP-DCA)",
        run: ex::extensions::run_delack,
    },
    Experiment {
        id: "ext_undo",
        about: "extension — Eifel-style spurious-RTO undo",
        run: ex::extensions::run_undo,
    },
    Experiment {
        id: "ext_mptcp",
        about: "extension — shared-radio vs disjoint MPTCP",
        run: ex::extensions::run_mptcp_variants,
    },
];

/// Finds an experiment by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

/// Runs every experiment in order.
pub fn run_all(ctx: &Ctx) -> Vec<ExperimentResult> {
    EXPERIMENTS.iter().map(|e| (e.run)(ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert!(EXPERIMENTS.len() >= 17);
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        assert!(find("fig10").is_some());
        assert!(find("nope").is_none());
    }
}
