//! Shared option parsing for the `repro` subcommands.
//!
//! `bench`, `cc-study`, `chaos` and the experiment runner each used to
//! hand-roll their own flag loop with diverging error messages. This
//! module collapses them into one parsed-options type ([`Opts`]) and one
//! driver ([`parse`]): a subcommand declares which flags it accepts, and
//! everything else — value parsing, `K/N` shard syntax, unknown-flag
//! rejection that names the subcommand — is shared.

use crate::context::Scale;
use std::path::PathBuf;

/// Every option any `repro` subcommand can take. A subcommand only
/// receives values for the flags it listed in its `allowed` set; the
/// rest stay at their defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Opts {
    /// Scale preset (`--smoke` / `--full`, default Standard).
    pub scale: Scale,
    /// `--workers W`: explicit campaign worker count.
    pub workers: Option<usize>,
    /// `--seed N`: RNG seed (chaos harness).
    pub seed: Option<u64>,
    /// `--cases M`: randomized case count (chaos harness).
    pub cases: Option<u64>,
    /// `--spec FILE`: declarative campaign spec to load.
    pub spec: Option<PathBuf>,
    /// `--shards N`: shard count for multi-process execution.
    pub shards: Option<usize>,
    /// `--shard K/N`: run only slice `K` of an `N`-way partition.
    pub shard: Option<(usize, usize)>,
    /// `--out DIR`: output directory for campaign artifacts.
    pub out: Option<PathBuf>,
    /// `--cache-dir DIR`: shared disk-cache directory.
    pub cache_dir: Option<PathBuf>,
    /// `--csv DIR`: also export experiment tables as CSV.
    pub csv: Option<PathBuf>,
    /// Positional arguments (experiment ids), accepted only when the
    /// subcommand allows `"ID"`.
    pub ids: Vec<String>,
}

/// Parses `args` for subcommand `cmd`, accepting only the flags named in
/// `allowed` (plus `"ID"` to permit positional arguments).
///
/// # Errors
///
/// Returns a printable message naming the subcommand and the offending
/// flag or value.
pub fn parse(
    cmd: &str,
    args: impl IntoIterator<Item = String>,
    allowed: &[&str],
) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut iter = args.into_iter();
    let allow = |flag: &str| allowed.contains(&flag);
    let reject = |flag: &str| {
        Err(format!(
            "unknown `{cmd}` option `{flag}` (accepted: {})",
            allowed.join(" ")
        ))
    };
    while let Some(arg) = iter.next() {
        let flag = arg.as_str();
        match flag {
            "--smoke" | "--full" if allow(flag) => {
                opts.scale = if flag == "--smoke" {
                    Scale::Smoke
                } else {
                    Scale::Full
                };
            }
            "--workers" | "--seed" | "--cases" | "--spec" | "--shards" | "--shard" | "--out"
            | "--cache-dir" | "--csv"
                if allow(flag) =>
            {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("`{cmd}` option `{flag}` needs a value"))?;
                assign(&mut opts, cmd, flag, &value)?;
            }
            _ if flag.starts_with('-') => return reject(flag),
            _ if allow("ID") => opts.ids.push(arg),
            _ => return reject(flag),
        }
    }
    Ok(opts)
}

fn assign(opts: &mut Opts, cmd: &str, flag: &str, value: &str) -> Result<(), String> {
    let bad = |expected: &str| {
        Err(format!(
            "invalid value `{value}` for `{cmd}` option `{flag}` (expected {expected})"
        ))
    };
    match flag {
        "--workers" => match value.parse() {
            Ok(w) if w >= 1 => opts.workers = Some(w),
            _ => return bad("a positive integer"),
        },
        "--seed" => match value.parse() {
            Ok(s) => opts.seed = Some(s),
            Err(_) => return bad("an unsigned integer"),
        },
        "--cases" => match value.parse() {
            Ok(c) => opts.cases = Some(c),
            Err(_) => return bad("an unsigned integer"),
        },
        "--shards" => match value.parse() {
            Ok(n) if n >= 1 => opts.shards = Some(n),
            _ => return bad("a positive integer"),
        },
        "--shard" => {
            let parsed = value.split_once('/').and_then(|(k, n)| {
                let k: usize = k.parse().ok()?;
                let n: usize = n.parse().ok()?;
                (n >= 1 && k < n).then_some((k, n))
            });
            match parsed {
                Some(pair) => opts.shard = Some(pair),
                None => return bad("K/N with K < N"),
            }
        }
        "--spec" => opts.spec = Some(PathBuf::from(value)),
        "--out" => opts.out = Some(PathBuf::from(value)),
        "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value)),
        "--csv" => opts.csv = Some(PathBuf::from(value)),
        other => unreachable!("unhandled valued flag {other}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_the_full_run_surface() {
        let opts = parse(
            "run",
            strings(&[
                "--spec",
                "examples/specs/smoke.toml",
                "--shards",
                "4",
                "--workers",
                "2",
                "--out",
                "campaign-out",
                "--cache-dir",
                "campaign-out/cache",
            ]),
            &[
                "--spec",
                "--shards",
                "--shard",
                "--workers",
                "--out",
                "--cache-dir",
            ],
        )
        .unwrap();
        assert_eq!(
            opts.spec.as_deref().unwrap().to_str().unwrap(),
            "examples/specs/smoke.toml"
        );
        assert_eq!(opts.shards, Some(4));
        assert_eq!(opts.workers, Some(2));
        assert_eq!(opts.shard, None);
        assert_eq!(
            opts.out.as_deref().unwrap().to_str().unwrap(),
            "campaign-out"
        );
    }

    #[test]
    fn shard_syntax_is_k_slash_n() {
        let allowed: &[&str] = &["--shard"];
        let opts = parse("run", strings(&["--shard", "2/4"]), allowed).unwrap();
        assert_eq!(opts.shard, Some((2, 4)));
        for bad in ["4/4", "5/4", "2", "a/b", "1/0", "/"] {
            let err = parse("run", strings(&["--shard", bad]), allowed).unwrap_err();
            assert!(err.contains("K/N"), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_flags_name_the_subcommand() {
        let err = parse("chaos", strings(&["--csv", "x"]), &["--seed", "--cases"]).unwrap_err();
        assert!(err.contains("`chaos`"), "{err}");
        assert!(err.contains("--csv"), "{err}");
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn positionals_need_explicit_permission() {
        let ok = parse("repro", strings(&["fig10", "--smoke"]), &["--smoke", "ID"]).unwrap();
        assert_eq!(ok.ids, vec!["fig10"]);
        assert_eq!(ok.scale, Scale::Smoke);
        let err = parse("bench", strings(&["fig10"]), &["--smoke"]).unwrap_err();
        assert!(err.contains("fig10"), "{err}");
    }

    #[test]
    fn missing_and_invalid_values_are_reported() {
        let err = parse("chaos", strings(&["--seed"]), &["--seed"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = parse("chaos", strings(&["--workers", "0"]), &["--workers"]).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse("chaos", strings(&["--seed", "x"]), &["--seed"]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }
}
