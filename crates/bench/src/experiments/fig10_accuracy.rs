//! Fig. 10 — model accuracy: the enhanced model vs the Padhye baseline,
//! per provider and aggregate, plus an estimator-choice ablation.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_core::estimate::{EstimateConfig, PdSource, QSource};
use hsm_core::eval::{evaluate_dataset, FlowEval};
use hsm_trace::export::{fnum, fpct, Table};
use hsm_trace::summary::FlowSummary;

fn provider_means(evals: &[FlowEval]) -> Table {
    let mut t = Table::new(
        "Fig. 10 — mean deviation D per provider",
        &["Provider", "flows", "D(enhanced)", "D(Padhye)"],
    );
    let providers: Vec<String> = {
        let mut ps: Vec<String> = evals.iter().map(|e| e.provider.clone()).collect();
        ps.sort();
        ps.dedup();
        ps
    };
    for p in providers {
        let of_p: Vec<&FlowEval> = evals.iter().filter(|e| e.provider == p).collect();
        let n = of_p.len() as f64;
        let de = of_p.iter().map(|e| e.d_enhanced).sum::<f64>() / n;
        let dp = of_p.iter().map(|e| e.d_padhye).sum::<f64>() / n;
        t.push_row(vec![p, of_p.len().to_string(), fpct(de), fpct(dp)]);
    }
    t
}

/// Regenerates Fig. 10 with the paper's parameterization, and an ablation
/// over estimator choices (`p_d` and `q` sources).
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let summaries: Vec<FlowSummary> = ctx
        .high_speed()
        .iter()
        .map(|f| f.outcome.summary().clone())
        .collect();
    let (evals, report) = evaluate_dataset(&summaries, &EstimateConfig::default());

    let mut per_flow = Table::new(
        "Per-flow deviations (one point per flow, as in Fig. 10)",
        &[
            "flow",
            "provider",
            "measured_sps",
            "enhanced_sps",
            "padhye_sps",
            "D_enhanced",
            "D_padhye",
        ],
    );
    for e in &evals {
        per_flow.push_row(vec![
            e.flow.to_string(),
            e.provider.clone(),
            fnum(e.measured_sps),
            fnum(e.enhanced_sps),
            fnum(e.padhye_sps),
            fnum(e.d_enhanced),
            fnum(e.d_padhye),
        ]);
    }

    let mut ablation = Table::new(
        "Ablation — estimator choices",
        &[
            "p_d source",
            "q source",
            "D(enhanced)",
            "D(Padhye)",
            "improvement (pp)",
        ],
    );
    for (pd_name, pd) in [
        ("lifetime", PdSource::Lifetime),
        ("loss-events", PdSource::LossEvents),
        ("loss-indications", PdSource::LossIndications),
    ] {
        for (q_name, q) in [
            ("measured", QSource::MeasuredOrDefault),
            ("recommended-default", QSource::RecommendedDefault),
            ("sequence-length", QSource::SequenceLength),
            ("recovery-duration", QSource::RecoveryDuration),
        ] {
            let cfg = EstimateConfig {
                pd_source: pd,
                q_source: q,
                ..Default::default()
            };
            let (_, r) = evaluate_dataset(&summaries, &cfg);
            ablation.push_row(vec![
                pd_name.to_owned(),
                q_name.to_owned(),
                fpct(r.mean_d_enhanced),
                fpct(r.mean_d_padhye),
                fnum(r.improvement_pp()),
            ]);
        }
    }

    ExperimentResult::new("fig10", "Model accuracy: enhanced vs Padhye (Fig. 10)")
        .with_table(provider_means(&evals))
        .with_table(ablation)
        .with_table(per_flow)
        .note(format!(
            "aggregate: D(enhanced) = {} vs D(Padhye) = {} over {} flows (paper: 5.66% vs 21.96%)",
            fpct(report.mean_d_enhanced),
            fpct(report.mean_d_padhye),
            report.flows
        ))
        .note(format!(
            "improvement: {:.1} pp (paper: 16.3 pp); shape target: enhanced < Padhye, Padhye overestimating",
            report.improvement_pp()
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn produces_all_tables() {
        let r = run(&Ctx::new(Scale::Smoke));
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[1].rows.len(), 12, "3 pd sources x 4 q sources");
        assert!(!r.tables[2].is_empty());
    }
}
