//! Fig. 3 — CDFs of the two loss rates: retransmission loss inside
//! timeout recovery phases vs lifetime data loss.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_trace::export::{fnum, fpct, Table};
use hsm_trace::stats::Cdf;

/// Regenerates Fig. 3 from the high-speed dataset.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let flows = ctx.high_speed();
    let recovery: Vec<f64> = flows
        .iter()
        .filter(|f| f.outcome.summary().timeout_sequences > 0)
        .map(|f| f.outcome.summary().q_hat)
        .collect();
    let lifetime: Vec<f64> = flows.iter().map(|f| f.outcome.summary().p_d).collect();
    let cdf_rec = Cdf::from_samples(recovery.iter().copied());
    let cdf_life = Cdf::from_samples(lifetime.iter().copied());

    let mut t = Table::new(
        "Fig. 3 — CDF of loss rates (per flow)",
        &["loss_rate", "P(recovery<=x)", "P(lifetime<=x)"],
    );
    for i in 0..=40 {
        let x = i as f64 * 0.02; // 0 .. 0.8
        t.push_row(vec![fnum(x), fnum(cdf_rec.at(x)), fnum(cdf_life.at(x))]);
    }

    let mean_rec = cdf_rec.mean().unwrap_or(0.0);
    let mean_life = cdf_life.mean().unwrap_or(0.0);
    ExperimentResult::new("fig3", "CDF of recovery-phase vs lifetime loss rates (Fig. 3)")
        .with_table(t)
        .note(format!(
            "mean recovery-phase loss: paper 27.26%, ours {}; mean lifetime loss: paper 0.7526%, ours {}",
            fpct(mean_rec),
            fpct(mean_life)
        ))
        .note("shape target: the two distributions are separated by more than an order of magnitude")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn recovery_losses_dwarf_lifetime_losses() {
        let ctx = Ctx::new(Scale::Smoke);
        let r = run(&ctx);
        let flows = ctx.high_speed();
        let mean_rec: f64 = {
            let v: Vec<f64> = flows
                .iter()
                .filter(|f| f.outcome.summary().timeout_sequences > 0)
                .map(|f| f.outcome.summary().q_hat)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let mean_life: f64 =
            flows.iter().map(|f| f.outcome.summary().p_d).sum::<f64>() / flows.len() as f64;
        assert!(
            mean_rec > 5.0 * mean_life,
            "recovery {mean_rec} vs lifetime {mean_life}"
        );
        assert_eq!(r.tables[0].rows.len(), 41);
    }
}
