//! One module per regenerated table/figure. The [`registry`](crate::registry)
//! maps experiment ids to these entry points.

pub mod extensions;
pub mod fig01_arrival;
pub mod fig02_recovery;
pub mod fig03_loss_cdf;
pub mod fig04_ack_timeout;
pub mod fig05_burst_cases;
pub mod fig06_ack_cdf;
pub mod fig10_accuracy;
pub mod fig11_single_ack;
pub mod fig12_mptcp;
pub mod headline;
pub mod table1;
pub mod table3;
pub mod va_delack;
pub mod vb_qsweep;
pub mod window_evolution;
