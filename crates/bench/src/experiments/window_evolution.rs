//! Figs. 7–9 — congestion-window evolution:
//!
//! * Fig. 7: a CA phase ended by data loss vs one cut short by ACK burst
//!   loss,
//! * Fig. 8: the cycle structure — CA sequences separated by timeout
//!   sequences,
//! * Fig. 9: evolution under a binding `W_m` limitation.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_scenario::runner::{run_scenario, Motion, ScenarioConfig};
use hsm_tcp::cwnd::Phase;
use hsm_tcp::metrics::CwndSample;
use hsm_trace::export::{fnum, Table};

fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::SlowStart => "slow-start",
        Phase::CongestionAvoidance => "congestion-avoidance",
        Phase::FastRecovery => "fast-recovery",
    }
}

fn window_table(title: &str, log: &[CwndSample], max_rows: usize) -> Table {
    let mut t = Table::new(title, &["t_s", "cwnd", "window", "phase"]);
    let step = (log.len() / max_rows.max(1)).max(1);
    for s in log.iter().step_by(step) {
        t.push_row(vec![
            fnum(s.at.as_secs_f64()),
            fnum(s.cwnd),
            s.window.to_string(),
            phase_name(s.phase).to_owned(),
        ]);
    }
    t
}

/// Fig. 7 — window evolution across CA phases (the sawtooth, including
/// phases cut short by ACK burst loss).
pub fn run_fig7(ctx: &Ctx) -> ExperimentResult {
    let out = run_scenario(&ScenarioConfig {
        seed: 2201,
        duration: ctx.scale.flow_duration(),
        ..Default::default()
    });
    let log = &out.outcome.sender.metrics_cwnd();
    let spurious = out
        .analysis
        .timeouts
        .sequences
        .iter()
        .filter(|s| s.started_spurious())
        .count();
    ExperimentResult::new("fig7", "Window evolution in CA phases (Fig. 7)")
        .with_table(window_table("Fig. 7 — cwnd over time", log, 60))
        .note(format!(
            "{} timeout sequences; {} of them started by ACK burst loss (spurious) — the Fig. 7(b) case",
            out.analysis.timeouts.sequences.len(),
            spurious
        ))
}

/// Fig. 8 — the cycle structure: CA sequences separated by timeout
/// sequences.
pub fn run_fig8(ctx: &Ctx) -> ExperimentResult {
    let out = run_scenario(&ScenarioConfig {
        seed: 2202,
        duration: ctx.scale.flow_duration(),
        ..Default::default()
    });
    let mut cycles = Table::new(
        "Fig. 8 — cycles: timeout sequences delimiting CA sequences",
        &[
            "sequence#",
            "ca_end_s",
            "recovery_end_s",
            "timeouts",
            "spurious_start",
        ],
    );
    for (i, s) in out.analysis.timeouts.sequences.iter().enumerate() {
        cycles.push_row(vec![
            (i + 1).to_string(),
            fnum(s.ca_end.as_secs_f64()),
            fnum(s.recovery_end.as_secs_f64()),
            s.timeouts().to_string(),
            s.started_spurious().to_string(),
        ]);
    }
    ExperimentResult::new("fig8", "CA/timeout cycle structure (Fig. 8)")
        .with_table(window_table(
            "cwnd over time",
            out.outcome.sender.metrics_cwnd(),
            60,
        ))
        .with_table(cycles)
        .note("the model's Eq. (8) averages throughput over exactly these cycles")
}

/// Fig. 9 — window evolution under a binding advertised-window limit.
pub fn run_fig9(ctx: &Ctx) -> ExperimentResult {
    let out = run_scenario(&ScenarioConfig {
        seed: 2203,
        w_m: 8,
        motion: Motion::Stationary,
        duration: ctx.scale.flow_duration(),
        ..Default::default()
    });
    let log = out.outcome.sender.metrics_cwnd();
    let capped = log.iter().filter(|s| s.window == 8).count();
    ExperimentResult::new("fig9", "Window evolution under W_m limitation (Fig. 9)")
        .with_table(window_table("Fig. 9 — cwnd with W_m = 8", log, 60))
        .note(format!(
            "{} of {} samples sit at the W_m cap — the Section IV-D regime",
            capped,
            log.len()
        ))
}

/// Convenience accessor so the tables read naturally.
trait MetricsCwnd {
    fn metrics_cwnd(&self) -> &[CwndSample];
}

impl MetricsCwnd for hsm_tcp::metrics::SenderMetrics {
    fn metrics_cwnd(&self) -> &[CwndSample] {
        &self.cwnd_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn fig7_has_a_sawtooth() {
        let r = run_fig7(&Ctx::new(Scale::Smoke));
        let t = &r.tables[0];
        assert!(t.rows.len() > 10);
        // The window must both grow and shrink over the flow.
        let windows: Vec<f64> = t.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        let grew = windows.windows(2).any(|w| w[1] > w[0]);
        let shrank = windows.windows(2).any(|w| w[1] < w[0]);
        assert!(grew && shrank, "no sawtooth: {windows:?}");
    }

    #[test]
    fn fig9_respects_the_cap() {
        let r = run_fig9(&Ctx::new(Scale::Smoke));
        let t = &r.tables[0];
        for row in &t.rows {
            let window: u64 = row[2].parse().unwrap();
            assert!(window <= 8, "window above W_m: {row:?}");
        }
        // The cap actually binds for a stationary low-W_m flow.
        assert!(t.rows.iter().any(|row| row[2] == "8"));
    }

    #[test]
    fn fig8_reports_cycles() {
        let r = run_fig8(&Ctx::new(Scale::Smoke));
        assert_eq!(r.tables.len(), 2);
    }
}
