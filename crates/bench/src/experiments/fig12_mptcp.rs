//! Fig. 12 — MPTCP vs TCP throughput per provider.
//!
//! Follows the paper's methodology (§V-B): the total throughput of two
//! concurrent small flows is compared against one ordinary TCP flow riding
//! the same train. The paper's flows come from *one handset per provider*,
//! so the two subflows share the radio — modelled here with the
//! shared-radio duplex wiring. That wiring is what produces the paper's
//! *graded* gains: on a shared pipe the second flow only adds throughput
//! by filling the first flow's timeout dead-time, which grows with channel
//! badness (disjoint carriers, by contrast, pin every provider's expected
//! gain at +100% — see the `ext_mptcp` ablation). Throughputs are averaged
//! over many rides before taking the ratio (single-flow HSR throughput is
//! heavy-tailed, so a mean of ratios would explode).

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_scenario::calibrate::PAPER;
use hsm_scenario::provider::Provider;
use hsm_scenario::runner::{run_scenario, ScenarioConfig};
use hsm_simnet::time::SimDuration;
use hsm_tcp::mptcp::run_mptcp_shared_radio;
use hsm_trace::export::{fnum, fpct, Table};

fn scenario(provider: Provider, seed: u64, duration: SimDuration) -> ScenarioConfig {
    ScenarioConfig {
        provider,
        seed,
        duration,
        ..Default::default()
    }
}

/// Regenerates Fig. 12.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    // Single-flow HSR throughput is heavy-tailed: use three times the
    // usual repetition budget (rides run in parallel across cores).
    let reps = ctx.scale.repetitions() * 3;
    let duration = ctx.scale.flow_duration();
    let mut t = Table::new(
        "Fig. 12 — MPTCP vs TCP throughput per provider",
        &[
            "Provider",
            "TCP (seg/s)",
            "MPTCP (seg/s)",
            "gain",
            "paper gain",
        ],
    );
    for (i, provider) in Provider::ALL.iter().enumerate() {
        // Paired rides: the same seed drives the single-flow and the
        // MPTCP run of each repetition, reducing ride-to-ride variance.
        let pairs = crate::parallel::par_map(reps, |rep| {
            let sc = scenario(*provider, 300 + rep, duration);
            let single = run_scenario(&sc).summary().throughput_sps;
            let path = sc.path();
            let mptcp =
                run_mptcp_shared_radio(sc.seed, &path, sc.mobility().as_ref(), &sc.connection())
                    .aggregate_throughput_sps();
            (single, mptcp)
        });
        let s_mean = pairs.iter().map(|p| p.0).sum::<f64>() / reps as f64;
        let m_mean = pairs.iter().map(|p| p.1).sum::<f64>() / reps as f64;
        let gain = if s_mean > 0.0 {
            m_mean / s_mean - 1.0
        } else {
            0.0
        };
        t.push_row(vec![
            provider.name().to_owned(),
            fnum(s_mean),
            fnum(m_mean),
            fpct(gain),
            fpct(PAPER.mptcp_gains[i]),
        ]);
    }
    ExperimentResult::new("fig12", "MPTCP vs TCP throughput (Fig. 12)")
        .with_table(t)
        .note("paper gains: +42.15% / +95.64% / +283.33%; shape target: all positive and increasing from China Mobile to China Telecom")
        .note("subflows share the handset radio, so the gain measures recovered dead-time; see ext_mptcp for the disjoint-carrier wiring where every provider's expected gain is pinned near +100%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn mptcp_always_gains() {
        let r = run(&Ctx::new(Scale::Smoke));
        let rows = &r.tables[0].rows;
        assert_eq!(rows.len(), 3);
        let gain = |row: &Vec<String>| row[3].trim_end_matches('%').parse::<f64>().unwrap();
        for row in rows {
            assert!(gain(row) > 0.0, "MPTCP must gain: {row:?}");
        }
    }
}
