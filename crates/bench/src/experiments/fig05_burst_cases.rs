//! Fig. 5 — scripted micro-scenarios showing how ACK loss triggers
//! timeouts: (a) every ACK of a round is lost → spurious retransmission;
//! (b) with a one-packet window, the loss of that round's single ACK is
//! already a burst loss → timeout.
//!
//! Both cases run with **zero data loss**; any retransmission observed is
//! spurious by construction, witnessed by the receiver's duplicate-payload
//! counter.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_simnet::loss::Outage;
use hsm_simnet::prelude::*;
use hsm_tcp::prelude::*;
use hsm_trace::export::Table;

/// Outcome of one scripted case.
struct CaseOutcome {
    timeouts: usize,
    duplicate_payloads: u64,
    data_lost: bool,
    delivered: u64,
}

/// Runs a lossless flow whose *uplink* suffers one scripted total outage.
fn run_case(w_m: u32, outage_ms: (u64, u64), segments: u64) -> CaseOutcome {
    let mut eng = Engine::new(5);
    let placeholder = LinkId::from_raw(u32::MAX);
    let scfg = SenderConfig {
        w_m,
        max_segments: Some(segments),
        ..Default::default()
    };
    let rcfg = ReceiverConfig {
        b: 1,
        delack_timeout: SimDuration::from_millis(100),
        adaptive: None,
    };
    let tx = eng.add_agent(Box::new(RenoSender::new(FlowId(0), placeholder, scfg)));
    let rx = eng.add_agent(Box::new(Receiver::new(FlowId(0), placeholder, rcfg)));
    let down = eng.add_link(
        LinkSpec::new(rx, "downlink")
            .bandwidth_bps(40_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    let up = eng.add_link(
        LinkSpec::new(tx, "uplink")
            .bandwidth_bps(15_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    eng.agent_mut::<RenoSender>(tx).expect("sender").data_link = down;
    eng.agent_mut::<Receiver>(rx).expect("receiver").uplink = up;
    eng.link_mut(up).loss.set_outage(Some(Outage::new(
        SimTime::from_millis(outage_ms.0),
        SimTime::from_millis(outage_ms.1),
        1.0,
    )));
    let rec = VecRecorder::new();
    eng.add_recorder(rec.clone());
    eng.run_until(SimTime::from_secs(60));
    let timeouts = eng
        .agent_mut::<RenoSender>(tx)
        .expect("sender")
        .metrics
        .timeouts
        .len();
    let rx_agent = eng.agent_mut::<Receiver>(rx).expect("receiver");
    let duplicate_payloads = rx_agent.metrics.duplicate_payloads;
    let delivered = rx_agent.next_expected().as_u64();
    let data_lost = rec
        .events()
        .iter()
        .any(|e| matches!(e.kind, PacketEventKind::Dropped(_)) && e.packet.kind.is_data());
    CaseOutcome {
        timeouts,
        duplicate_payloads,
        data_lost,
        delivered,
    }
}

/// Regenerates both Fig. 5 cases.
pub fn run(_ctx: &Ctx) -> ExperimentResult {
    // Case (a): a window-wide uplink blackout kills every ACK of several
    // rounds — the sender must time out spuriously.
    let a = run_case(16, (1_000, 2_500), 2_000);
    // Case (b): window of 1 — each round has exactly one ACK, so a brief
    // blackout over one ACK is already an "ACK burst loss".
    let b = run_case(1, (1_000, 1_060), 200);

    let mut t = Table::new(
        "Fig. 5 — ACK burst loss triggers timeouts without any data loss",
        &[
            "case",
            "data_lost",
            "timeouts",
            "duplicate_payloads",
            "delivered",
        ],
    );
    for (name, c) in [
        ("(a) all ACKs of a round lost", &a),
        ("(b) single-ACK round lost", &b),
    ] {
        t.push_row(vec![
            name.to_owned(),
            c.data_lost.to_string(),
            c.timeouts.to_string(),
            c.duplicate_payloads.to_string(),
            c.delivered.to_string(),
        ]);
    }

    ExperimentResult::new("fig5", "ACK-burst-loss timeout cases (Fig. 5)")
        .with_table(t)
        .note("both cases lose zero data packets; every retransmission the receiver sees is a duplicate payload — the operational definition of a spurious timeout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn both_cases_show_spurious_timeouts() {
        let r = run(&Ctx::new(Scale::Smoke));
        let rows = &r.tables[0].rows;
        for row in rows {
            assert_eq!(row[1], "false", "no data loss allowed: {row:?}");
            assert!(
                row[2].parse::<u32>().unwrap() >= 1,
                "case must time out: {row:?}"
            );
            assert!(
                row[3].parse::<u32>().unwrap() >= 1,
                "receiver must see duplicates: {row:?}"
            );
        }
        // Flows still complete.
        assert_eq!(rows[0][4], "2000");
        assert_eq!(rows[1][4], "200");
    }
}
