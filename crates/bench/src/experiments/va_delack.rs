//! §V-A — the delayed-ACK double edge: fewer ACKs per round raise the
//! ACK-burst probability `P_a` and with it spurious timeouts. Model sweep
//! plus a simulation cross-check.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_core::params::ModelParams;
use hsm_core::sensitivity::delayed_ack_analysis;
use hsm_scenario::runner::{run_scenario, ScenarioConfig};
use hsm_trace::export::{fnum, fpct, Table};

/// Regenerates the §V-A analysis.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    // Model side: sweep b at a fixed working window under heavy per-ACK
    // loss (the high-speed regime where the effect matters).
    let base = ModelParams::high_speed_example();
    let points = delayed_ack_analysis(&base, 16.0, 0.10, &[1.0, 2.0, 4.0, 8.0]);
    let mut model_t = Table::new(
        "§V-A model sweep — delayed-ACK factor b at window 16, per-ACK loss 10%",
        &["b", "ACKs/round", "P_a", "TP (seg/s)"],
    );
    for p in &points {
        model_t.push_row(vec![
            fnum(p.b),
            fnum(p.acks_per_round),
            fnum(p.p_a_burst),
            fnum(p.throughput_sps),
        ]);
    }

    // Simulation side: the same flow with b = 1 vs b = 4.
    let reps = ctx.scale.repetitions();
    let duration = ctx.scale.flow_duration();
    let mut sim_t = Table::new(
        "§V-A simulation cross-check — spurious timeouts per b",
        &[
            "b",
            "mean TP (seg/s)",
            "mean timeouts",
            "mean spurious fraction",
        ],
    );
    for b in [1u32, 2, 4] {
        let results = crate::parallel::par_map(reps, |rep| {
            let out = run_scenario(&ScenarioConfig {
                seed: 4_000 + rep,
                b,
                duration,
                ..Default::default()
            });
            (
                out.summary().throughput_sps,
                f64::from(out.summary().timeouts),
                out.summary().spurious_fraction(),
            )
        });
        let tp: f64 = results.iter().map(|r| r.0).sum();
        let to: f64 = results.iter().map(|r| r.1).sum();
        let sf: f64 = results.iter().map(|r| r.2).sum();
        let n = reps as f64;
        sim_t.push_row(vec![
            b.to_string(),
            fnum(tp / n),
            fnum(to / n),
            fpct(sf / n),
        ]);
    }

    ExperimentResult::new("va_delack", "Delayed ACKs in high-speed mobility (§V-A)")
        .with_table(model_t)
        .with_table(sim_t)
        .note("model: P_a = p_a^(w/b) grows with b; beyond mild b the spurious-timeout cost outweighs the ACK savings")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn model_pa_grows_with_b() {
        let r = run(&Ctx::new(Scale::Smoke));
        let pa: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[2].parse().unwrap())
            .collect();
        assert!(pa.windows(2).all(|w| w[1] >= w[0]), "{pa:?}");
        // The model's throughput at b=8 must fall below b=1.
        let tp: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[3].parse().unwrap())
            .collect();
        assert!(tp[3] < tp[0], "{tp:?}");
    }
}
