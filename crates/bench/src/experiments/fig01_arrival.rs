//! Fig. 1 — one-way delays of every packet of one high-speed flow, with
//! lost packets plotted at −1 and the timeout events marked.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_scenario::runner::{run_scenario, ScenarioConfig};
use hsm_trace::analysis::latency::delay_scatter;
use hsm_trace::export::{fnum, Table};

/// Regenerates the Fig. 1 scatter for a single 300 km/h China Mobile flow.
/// The full point cloud goes to CSV; the printed table shows a sample plus
/// the timeout marks.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let cfg = ScenarioConfig {
        seed: 1706,
        duration: ctx.scale.flow_duration(),
        ..Default::default()
    };
    let out = run_scenario(&cfg);
    let points = delay_scatter(&out.outcome.trace);

    let mut scatter = Table::new(
        "Fig. 1 — packet send time vs one-way delay (lost = -1)",
        &["sent_s", "delay_s", "kind"],
    );
    for p in &points {
        scatter.push_row(vec![
            fnum(p.sent_s),
            fnum(p.delay_s),
            if p.is_ack {
                "ack".into()
            } else {
                "data".into()
            },
        ]);
    }

    let mut marks = Table::new("Timeout events (numbered as in Fig. 1)", &["#", "at_s"]);
    for (i, t) in out.outcome.sender.timeouts.iter().enumerate() {
        marks.push_row(vec![(i + 1).to_string(), fnum(t.as_secs_f64())]);
    }

    let delays: Vec<f64> = points
        .iter()
        .filter(|p| p.delay_s >= 0.0)
        .map(|p| p.delay_s)
        .collect();
    let typical = if delays.is_empty() {
        0.0
    } else {
        let mut d = delays.clone();
        d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        d[d.len() / 2]
    };
    let lost = points.iter().filter(|p| p.delay_s < 0.0).count();

    // Keep the printed scatter readable: thin it to ~40 rows (the CSV
    // export keeps everything).
    let mut thin = Table::new(scatter.title.clone(), &["sent_s", "delay_s", "kind"]);
    let step = (scatter.rows.len() / 40).max(1);
    for row in scatter.rows.iter().step_by(step) {
        thin.push_row(row.clone());
    }

    ExperimentResult::new(
        "fig1",
        "One-way delay scatter of one high-speed flow (Fig. 1)",
    )
    .with_table(thin)
    .with_table(marks)
    .with_table(scatter)
    .note(format!(
        "paper: most packets ≈ 30 ms one-way; ours: median {:.1} ms over {} packets ({} lost)",
        typical * 1e3,
        points.len(),
        lost
    ))
    .note(format!(
        "paper flow shows 10 timeout sequences; this flow has {} timeouts in {} sequences",
        out.outcome.sender.timeouts.len(),
        out.analysis.timeouts.sequences.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn scatter_has_both_directions_and_losses() {
        let r = run(&Ctx::new(Scale::Smoke));
        let full = &r.tables[2];
        assert!(full.rows.len() > 100);
        assert!(full.rows.iter().any(|row| row[2] == "ack"));
        assert!(full.rows.iter().any(|row| row[2] == "data"));
        assert!(
            full.rows.iter().any(|row| row[1] == "-1.000"),
            "lost packets at -1"
        );
    }
}
