//! Table III — the distribution of the number of rounds in a CA phase,
//! analytic vs Monte Carlo.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_core::enhanced::{e_x, round_distribution};
use hsm_core::padhye::x_p;
use hsm_simnet::rng::SimRng;
use hsm_trace::export::{fnum, Table};

/// Simulates the CA-phase round process: each round ends the phase with
/// probability `p_a` (ACK burst loss); reaching round `x_p + 1` ends it by
/// data loss.
fn monte_carlo(p_a: f64, xp: u32, trials: u32, rng: &mut SimRng) -> Vec<f64> {
    let mut counts = vec![0u32; xp as usize + 1];
    for _ in 0..trials {
        let mut rounds = xp + 1;
        for k in 1..=xp {
            if rng.chance(p_a) {
                rounds = k;
                break;
            }
        }
        counts[(rounds - 1) as usize] += 1;
    }
    counts
        .iter()
        .map(|&c| f64::from(c) / f64::from(trials))
        .collect()
}

/// Regenerates Table III for a representative high-speed parameterization
/// and cross-checks the analytic distribution against simulation.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let p_a = 0.05;
    let p_d = 0.0075;
    let b = 2.0;
    let xp = x_p(p_d, b);
    let dist = round_distribution(p_a, xp);
    let trials = match ctx.scale {
        crate::context::Scale::Smoke => 20_000,
        _ => 200_000,
    };
    let mut rng = SimRng::seed_from_u64(42);
    let mc = monte_carlo(p_a, xp.round() as u32, trials, &mut rng);

    let mut t = Table::new(
        format!("Table III — P(X = k), P_a = {p_a}, X_P = {:.1}", xp),
        &["k (rounds)", "analytic", "monte-carlo"],
    );
    let mut max_err = 0.0_f64;
    for (row, mc_p) in dist.iter().zip(&mc) {
        max_err = max_err.max((row.probability - mc_p).abs());
        t.push_row(vec![
            row.rounds.to_string(),
            fnum(row.probability),
            fnum(*mc_p),
        ]);
    }
    let analytic_mean = e_x(p_a, xp);
    let mc_mean: f64 = mc.iter().enumerate().map(|(i, p)| (i + 1) as f64 * p).sum();

    ExperimentResult::new("table3", "Rounds in a CA phase (Table III)")
        .with_table(t)
        .note(format!(
            "E[X]: analytic (Eq. 2) = {analytic_mean:.4}, monte-carlo = {mc_mean:.4}"
        ))
        .note(format!("max per-row deviation = {max_err:.4}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn analytic_matches_monte_carlo() {
        let r = run(&Ctx::new(Scale::Smoke));
        assert!(!r.tables[0].is_empty());
        // Parse the E[X] note and require close agreement.
        let note = &r.notes[0];
        let nums: Vec<f64> = note
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter_map(|s| s.parse().ok())
            .collect();
        let (analytic, mc) = (nums[1], nums[2]);
        assert!((analytic - mc).abs() / analytic < 0.05, "{note}");
    }
}
