//! Table I — the dataset.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_scenario::dataset::{table1_total_flows, TABLE1};
use hsm_trace::export::{fnum, Table};

/// Regenerates Table I: the campaign structure verbatim plus the number of
/// flows actually simulated at the current scale.
pub fn run(ctx: &Ctx) -> ExperimentResult {
    let mut spec = Table::new(
        "Table I — dataset (paper structure)",
        &["Date", "Trips", "Phone", "Provider", "Flows", "Trace (GB)"],
    );
    for c in TABLE1 {
        spec.push_row(vec![
            c.date.to_owned(),
            c.trips.to_string(),
            c.phone.to_owned(),
            c.provider.name().to_owned(),
            c.flows.to_string(),
            fnum(c.trace_gb),
        ]);
    }

    let flows = ctx.high_speed();
    let mut generated = Table::new(
        "Synthetic dataset generated at this scale",
        &["Campaign", "Provider", "Flows simulated", "Mean TP (seg/s)"],
    );
    for (idx, c) in TABLE1.iter().enumerate() {
        let in_campaign: Vec<_> = flows.iter().filter(|f| f.campaign == idx).collect();
        let mean_tp = if in_campaign.is_empty() {
            0.0
        } else {
            in_campaign
                .iter()
                .map(|f| f.outcome.summary().throughput_sps)
                .sum::<f64>()
                / in_campaign.len() as f64
        };
        generated.push_row(vec![
            idx.to_string(),
            c.provider.name().to_owned(),
            in_campaign.len().to_string(),
            fnum(mean_tp),
        ]);
    }

    ExperimentResult::new("table1", "Dataset (Table I)")
        .with_table(spec)
        .with_table(generated)
        .note(format!(
            "paper: {} flows / 40.47 GB captured; simulated here: {} flows",
            table1_total_flows(),
            flows.len()
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn regenerates_table1() {
        let ctx = Ctx::new(Scale::Smoke);
        let r = run(&ctx);
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].rows.len(), 4);
        assert!(r.to_text().contains("China Telecom"));
    }
}
