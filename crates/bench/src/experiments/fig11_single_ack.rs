//! Fig. 11 — a single surviving ACK prevents the spurious timeout, thanks
//! to TCP's cumulative acknowledgments.

use crate::context::Ctx;
use crate::report::ExperimentResult;
use hsm_simnet::loss::Outage;
use hsm_simnet::prelude::*;
use hsm_tcp::prelude::*;
use hsm_trace::export::Table;

struct CaseOutcome {
    timeouts: usize,
    duplicate_payloads: u64,
    delivered: u64,
}

/// Runs a lossless flow with a scripted uplink outage of probability `p`
/// over a round's worth of ACKs.
fn run_case(up_loss_during_window: f64) -> CaseOutcome {
    let mut eng = Engine::new(9);
    let placeholder = LinkId::from_raw(u32::MAX);
    let scfg = SenderConfig {
        w_m: 16,
        max_segments: Some(2_000),
        ..Default::default()
    };
    let rcfg = ReceiverConfig {
        b: 1,
        delack_timeout: SimDuration::from_millis(100),
        adaptive: None,
    };
    let tx = eng.add_agent(Box::new(RenoSender::new(FlowId(0), placeholder, scfg)));
    let rx = eng.add_agent(Box::new(Receiver::new(FlowId(0), placeholder, rcfg)));
    let down = eng.add_link(
        LinkSpec::new(rx, "downlink")
            .bandwidth_bps(40_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    let up = eng.add_link(
        LinkSpec::new(tx, "uplink")
            .bandwidth_bps(15_000_000)
            .prop_delay(SimDuration::from_millis(27)),
    );
    eng.agent_mut::<RenoSender>(tx).expect("sender").data_link = down;
    eng.agent_mut::<Receiver>(rx).expect("receiver").uplink = up;
    eng.link_mut(up).loss.set_outage(Some(Outage::new(
        SimTime::from_millis(1_000),
        SimTime::from_millis(2_500),
        up_loss_during_window,
    )));
    eng.run_until(SimTime::from_secs(60));
    let timeouts = eng
        .agent_mut::<RenoSender>(tx)
        .expect("sender")
        .metrics
        .timeouts
        .len();
    let rx_agent = eng.agent_mut::<Receiver>(rx).expect("receiver");
    CaseOutcome {
        timeouts,
        duplicate_payloads: rx_agent.metrics.duplicate_payloads,
        delivered: rx_agent.next_expected().as_u64(),
    }
}

/// Regenerates the Fig. 11 contrast: a total ACK blackout vs one where a
/// few ACKs slip through (cumulative ACKs then cover all the lost ones).
pub fn run(_ctx: &Ctx) -> ExperimentResult {
    let blackout = run_case(1.0);
    // 70% ACK loss over the same window: with ~16 ACKs per round the odds
    // that *every* ACK of a round dies are small — some ACK survives and
    // its cumulative coverage prevents the timeout.
    let leaky = run_case(0.70);

    let mut t = Table::new(
        "Fig. 11 — one surviving ACK prevents the spurious timeout",
        &[
            "uplink loss in window",
            "timeouts",
            "duplicate_payloads",
            "delivered",
        ],
    );
    t.push_row(vec![
        "100% (burst loss)".into(),
        blackout.timeouts.to_string(),
        blackout.duplicate_payloads.to_string(),
        blackout.delivered.to_string(),
    ]);
    t.push_row(vec![
        "70% (some ACKs survive)".into(),
        leaky.timeouts.to_string(),
        leaky.duplicate_payloads.to_string(),
        leaky.delivered.to_string(),
    ]);

    ExperimentResult::new("fig11", "Cumulative ACKs make single ACKs precious (Fig. 11)")
        .with_table(t)
        .note("paper: \"as long as one ACK in a round successfully arrives, the timeout event will not be triggered\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn surviving_acks_prevent_timeouts() {
        let r = run(&Ctx::new(Scale::Smoke));
        let rows = &r.tables[0].rows;
        let blackout_timeouts: u32 = rows[0][1].parse().unwrap();
        let leaky_timeouts: u32 = rows[1][1].parse().unwrap();
        assert!(blackout_timeouts >= 1, "total blackout must time out");
        assert!(
            leaky_timeouts < blackout_timeouts,
            "surviving ACKs must reduce timeouts ({leaky_timeouts} vs {blackout_timeouts})"
        );
    }
}
